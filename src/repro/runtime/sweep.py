"""Parameter-grid expansion for ``repro sweep``.

Turns CLI ``--param k=v1,v2`` specs into a validated list of parameter
dicts (the cartesian product of every axis), with values cast through the
experiment's :class:`~repro.harness.experiments.ParamSpec` schema.
"""

from __future__ import annotations

from itertools import product
from typing import Mapping, Sequence

from ..harness import Experiment

__all__ = ["expand_grid", "parse_param_specs"]


def parse_param_specs(
    experiment: Experiment, specs: Sequence[str]
) -> dict[str, list[object]]:
    """Parse ``k=v1,v2,...`` strings into a typed sweep grid.

    Raises ``ValueError`` for malformed specs, unknown parameter names, or
    values that do not cast to the schema type.
    """
    grid: dict[str, list[object]] = {}
    for spec in specs:
        name, sep, raw = spec.partition("=")
        name = name.strip()
        if not sep or not name or not raw.strip():
            raise ValueError(f"bad --param spec {spec!r}; expected k=v1,v2,...")
        if name not in experiment.params:
            raise ValueError(
                f"experiment {experiment.id!r} has no parameter {name!r};"
                f" schema: {sorted(experiment.params)}"
            )
        param = experiment.params[name]
        values = [param.cast(v.strip()) for v in raw.split(",") if v.strip()]
        if not values:
            raise ValueError(f"bad --param spec {spec!r}; no values")
        grid[name] = values
    return grid


def expand_grid(
    experiment: Experiment, grid: Mapping[str, Sequence[object]]
) -> list[dict[str, object]]:
    """Cartesian product of a sweep grid, in deterministic axis order.

    Every combination is validated against the experiment's schema, so an
    invalid axis fails before any work is scheduled.
    """
    if not grid:
        return [experiment.resolve_params({})]
    axes = sorted(grid)
    combos = []
    for values in product(*(grid[axis] for axis in axes)):
        overrides = dict(zip(axes, values))
        combos.append(experiment.resolve_params(overrides))
    return combos
