"""Parallel experiment executor with content-addressed result caching.

The :class:`ExperimentRunner` fans experiment requests out over a
``concurrent.futures`` process pool.  Cache probes happen in the parent
(cheap disk reads); only misses are submitted to workers.  Workers run an
experiment *by id* — they re-import the registry rather than pickling
callables — so every registered experiment, lambdas included, is
dispatchable.

Results are canonicalized (JSON round-trip) before caching and before
being written as artifacts, so a cached replay is byte-identical to a
fresh run.
"""

from __future__ import annotations

import importlib
import itertools
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .. import obs
from ..harness import EXPERIMENTS, get_experiment, registry_code_hash
from .artifacts import ArtifactStore, canonical_payload
from .cache import CacheEntry, ResultCache, cache_key, config_hash
from .sweep import expand_grid

__all__ = ["ExperimentRunner", "RunOutcome", "RunSummary", "ShardPool"]


@dataclass(frozen=True)
class RunOutcome:
    """One experiment execution: where the result came from and how long."""

    experiment: str
    params: dict
    status: str  # "ok" | "error"
    cache_hit: bool
    duration_s: float
    result: object | None
    error: str | None = None
    cache_key: str | None = None
    artifact_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class RunSummary:
    """Aggregate view of a batch run, as recorded in the manifest."""

    outcomes: tuple[RunOutcome, ...]
    jobs: int
    code_hash: str
    wall_time_s: float
    manifest_path: str | None = None

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def misses(self) -> int:
        return sum(1 for o in self.outcomes if not o.cache_hit and o.ok)

    @property
    def errors(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def hit_rate(self) -> float:
        return self.hits / len(self.outcomes) if self.outcomes else 0.0

    @property
    def ok(self) -> bool:
        return self.errors == 0

    def manifest(self) -> dict:
        return {
            "jobs": self.jobs,
            "code_hash": self.code_hash,
            "wall_time_s": self.wall_time_s,
            "cache": {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
            },
            "runs": [
                {
                    "experiment": o.experiment,
                    "params": o.params,
                    "status": o.status,
                    "cache_hit": o.cache_hit,
                    "duration_s": o.duration_s,
                    "cache_key": o.cache_key,
                    "artifact": o.artifact_path,
                    "error": o.error,
                }
                for o in self.outcomes
            ],
        }


def _manifest_alerts(summary: "RunSummary") -> dict:
    """The ``run-all --alerts`` manifest block.

    Three alert sources fold together: end-of-run metrics-registry
    health rules (:func:`repro.obs.registry_alerts`), one critical event
    per failed experiment, and a rollup of any alerts the experiments'
    own simulated runs recorded in their payloads.
    """
    events: list[obs.AlertEvent] = []
    if obs.registry.active and not obs.registry.is_empty():
        events.extend(obs.registry_alerts(obs.registry.to_dict()))
    for outcome in summary.outcomes:
        if not outcome.ok:
            events.append(obs.AlertEvent(
                rule=f"runtime.failed.{outcome.experiment}",
                kind="fired",
                severity="critical",
                message=(
                    f"experiment {outcome.experiment} failed:"
                    f" {(outcome.error or 'unknown error').splitlines()[-1]}"
                ),
                value=1.0,
                threshold=1.0,
            ))
            continue
        result = outcome.result if isinstance(outcome.result, dict) else {}
        fired = sum(
            1 for alert in result.get("alerts", ())
            if isinstance(alert, dict) and alert.get("kind") == "fired"
        )
        if fired:
            events.append(obs.AlertEvent(
                rule=f"runtime.alerts.{outcome.experiment}",
                kind="fired",
                severity="warning",
                message=(
                    f"{outcome.experiment}: {fired} alert(s) fired in the"
                    " simulated run (see its artifact)"
                ),
                value=float(fired),
                threshold=1.0,
            ))
    return {
        "alerts_fired": len(events),
        "rules": sorted({event.rule for event in events}),
        "events": [event.to_dict() for event in events],
    }


def _execute(name: str, params: dict) -> tuple[str, object, float]:
    """Worker entry point: run one experiment by registry id.

    Returns a ``(status, payload, duration)`` triple instead of raising so
    a failing experiment surfaces as a clean per-run outcome rather than a
    pickled traceback from the pool.
    """
    start = time.perf_counter()
    try:
        experiment = get_experiment(name)
        with obs.span("runtime.experiment", cat="runtime", experiment=name):
            result = canonical_payload(experiment.run(**params))
        return "ok", result, time.perf_counter() - start
    except Exception:
        return "error", traceback.format_exc(), time.perf_counter() - start


def _execute_traced(name: str, params: dict) -> tuple[str, object, float, object]:
    """Telemetry-shipping pool-worker entry point.

    Used instead of :func:`_execute` when the parent has telemetry on:
    the worker enables itself from the environment (set by
    ``obs.enable``), records into fresh buffers, and returns the
    telemetry snapshot as a fourth element for the parent to ingest.
    """
    obs.tracer.reset()
    obs.registry.reset()
    try:
        obs.enable_from_env()
    except ValueError as error:
        return "error", f"telemetry configuration: {error}", 0.0, None
    status, payload, duration = _execute(name, params)
    return status, payload, duration, obs.export_telemetry()


@dataclass
class _Request:
    index: int
    experiment: str
    params: dict
    config_hash: str
    key: str


class ExperimentRunner:
    """Run registry experiments in parallel with on-disk result caching.

    Parameters
    ----------
    artifacts_root:
        Directory for ``<id>.json`` artifacts, ``manifest.json``, and the
        result cache (``<root>/cache``).  ``None`` disables both artifact
        and cache persistence (results are still returned).
    jobs:
        Worker processes for cache misses.  ``1`` runs inline in the
        calling process (deterministic, easy to debug); ``0`` resolves to
        ``os.cpu_count()`` (one worker per core); results are identical
        either way because every experiment seeds its own RNG.
    force:
        Ignore (and overwrite) existing cache entries.
    """

    def __init__(
        self,
        artifacts_root: Path | str | None = "artifacts",
        jobs: int = 1,
        force: bool = False,
        cache: ResultCache | None = None,
    ):
        self.store = ArtifactStore(artifacts_root) if artifacts_root else None
        if cache is None and self.store is not None:
            cache = ResultCache(self.store.root / "cache")
        self.cache = cache
        jobs = int(jobs)
        if jobs == 0:
            jobs = os.cpu_count() or 1
        elif jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs
        self.force = force
        self._code_hash = registry_code_hash()

    # -- single-run convenience -------------------------------------------
    def run(self, name: str, params: Mapping[str, object] | None = None) -> RunOutcome:
        return self.run_many([(name, dict(params or {}))]).outcomes[0]

    # -- batch ------------------------------------------------------------
    def run_many(
        self,
        requests: Sequence[tuple[str, Mapping[str, object]]],
        write_artifacts: bool = True,
        store: ArtifactStore | None = None,
    ) -> RunSummary:
        """Run ``(experiment id, param overrides)`` pairs, cache-aware.

        Invalid ids or params raise immediately (before any work runs);
        runtime failures inside an experiment become ``status="error"``
        outcomes instead.
        """
        started = time.perf_counter()
        store = store or self.store
        resolved: list[_Request] = []
        for index, (name, overrides) in enumerate(requests):
            experiment = get_experiment(name)
            params = experiment.resolve_params(overrides)
            cfg_hash = config_hash(params)
            key = cache_key(name, self._code_hash, cfg_hash)
            resolved.append(_Request(index, name, params, cfg_hash, key))

        outcomes: dict[int, RunOutcome] = {}
        misses: list[_Request] = []
        for request in resolved:
            entry = None
            if self.cache is not None and not self.force:
                entry = self.cache.get(request.key, experiment_id=request.experiment)
            if entry is not None:
                outcomes[request.index] = self._finalize(
                    request, "ok", entry.result, 0.0, cache_hit=True,
                    store=store if write_artifacts else None,
                )
            else:
                misses.append(request)

        obs.set_gauge("runtime.queue_depth", len(misses))
        for request, (status, payload, duration, telemetry) in zip(
            misses, self._execute_all(misses)
        ):
            obs.ingest_telemetry(telemetry)
            obs.observe("runtime.experiment_s", duration)
            outcomes[request.index] = self._finalize(
                request, status, payload, duration, cache_hit=False,
                store=store if write_artifacts else None,
            )

        ordered = tuple(outcomes[i] for i in range(len(resolved)))
        return RunSummary(
            outcomes=ordered,
            jobs=self.jobs,
            code_hash=self._code_hash,
            wall_time_s=time.perf_counter() - started,
        )

    def run_all(
        self,
        only: Iterable[str] | None = None,
        smoke: bool = False,
        write_manifest: bool = True,
        alerts: bool = False,
    ) -> RunSummary:
        """Run every registered experiment (or the ``only`` subset).

        With ``smoke=True`` each experiment runs under its cheap
        ``smoke_params`` configuration instead of the paper-faithful
        defaults (used by CI); smoke artifacts and manifest land under
        ``<root>/smoke/`` so they never overwrite the paper results.
        With ``alerts=True`` the manifest gains an ``alerts`` summary:
        end-of-run registry health rules (dropped spans, corrupt cache
        entries) plus one event per failed experiment.
        """
        names = sorted(EXPERIMENTS) if only is None else list(only)
        requests = [
            (name, dict(get_experiment(name).smoke_params) if smoke else {})
            for name in names
        ]
        store = self.store
        if smoke and store is not None:
            store = ArtifactStore(store.root / "smoke")
        summary = self.run_many(requests, store=store)
        if write_manifest and store is not None:
            manifest = summary.manifest()
            # When metrics are on, the registry dump rides along in the
            # manifest so `repro metrics --manifest` can read it back.
            if obs.registry.active and not obs.registry.is_empty():
                manifest["metrics"] = obs.registry.to_dict()
            if alerts:
                manifest["alerts"] = _manifest_alerts(summary)
            path = store.write_manifest(manifest)
            summary = RunSummary(
                outcomes=summary.outcomes,
                jobs=summary.jobs,
                code_hash=summary.code_hash,
                wall_time_s=summary.wall_time_s,
                manifest_path=str(path),
            )
        return summary

    def sweep(
        self, name: str, grid: Mapping[str, Sequence[object]]
    ) -> RunSummary:
        """Cartesian-product parameter sweep of one experiment.

        Writes ``sweeps/<id>.json`` with one ``{params, result}`` record
        per grid point (errors keep their slot, carrying the traceback).
        """
        combos = expand_grid(get_experiment(name), grid)
        summary = self.run_many(
            [(name, combo) for combo in combos], write_artifacts=False
        )
        if self.store is not None:
            self.store.write_sweep(
                name,
                {
                    "experiment": name,
                    "grid": {k: list(v) for k, v in grid.items()},
                    "points": [
                        {
                            "params": o.params,
                            "status": o.status,
                            "result": o.result if o.ok else None,
                            "error": o.error,
                        }
                        for o in summary.outcomes
                    ],
                },
            )
        return summary

    # -- internals --------------------------------------------------------
    def _execute_all(
        self, misses: Sequence[_Request]
    ) -> list[tuple[str, object, float, object]]:
        """Execute cache misses; always yields 4-tuples ending in the
        worker telemetry snapshot (``None`` for inline runs, where spans
        and metrics land directly in the parent's buffers)."""
        if not misses:
            return []
        if self.jobs == 1 or len(misses) == 1:
            return [(*_execute(r.experiment, r.params), None) for r in misses]
        # Pool path: with telemetry on, workers ship their buffers back.
        entry_point = _execute_traced if obs.enabled() else _execute
        results: dict[int, tuple[str, object, float, object]] = {}
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(misses))) as pool:
            futures = {
                pool.submit(entry_point, r.experiment, r.params): i
                for i, r in enumerate(misses)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    outcome = future.result()
                    if len(outcome) == 3:
                        outcome = (*outcome, None)
                    results[futures[future]] = outcome
        return [results[i] for i in range(len(misses))]

    def _finalize(
        self,
        request: _Request,
        status: str,
        payload: object,
        duration: float,
        cache_hit: bool,
        store: ArtifactStore | None,
    ) -> RunOutcome:
        if status != "ok":
            return RunOutcome(
                experiment=request.experiment,
                params=request.params,
                status="error",
                cache_hit=False,
                duration_s=duration,
                result=None,
                error=str(payload),
                cache_key=request.key,
            )
        artifact_path = None
        if not cache_hit and self.cache is not None:
            self.cache.put(
                request.key,
                CacheEntry(
                    experiment=request.experiment,
                    params=request.params,
                    code_hash=self._code_hash,
                    config_hash=request.config_hash,
                    result=payload,
                ),
            )
        if store is not None:
            artifact_path = str(store.write(request.experiment, payload))
        return RunOutcome(
            experiment=request.experiment,
            params=request.params,
            status="ok",
            cache_hit=cache_hit,
            duration_s=duration,
            result=payload,
            cache_key=request.key,
            artifact_path=artifact_path,
        )


# ----------------------------------------------------------------------
# Stateful actor pool (sharded cluster simulation)
# ----------------------------------------------------------------------
# Worker-process registry of live actors, keyed by (pool tag, actor id).
# concurrent.futures gives no per-task worker pinning, so ShardPool runs
# one single-worker executor per job slot: an actor's calls always land
# in the same process, where its mutable state (a shard's engine, chips,
# queues) persists across calls.
_ACTOR_STATES: dict[tuple[str, int], object] = {}

_POOL_TAGS = itertools.count()


def _actor_call(
    tag: str, factory: str, actor_id: int, init: object,
    method: str, args: tuple,
) -> object:
    """Worker entry point: construct-on-first-use, then dispatch.

    ``factory`` is a ``"module:callable"`` path resolved in the worker —
    actors are never pickled, only their construction payload and the
    per-call arguments are.
    """
    key = (tag, actor_id)
    actor = _ACTOR_STATES.get(key)
    if actor is None:
        module_name, _, attr = factory.partition(":")
        actor = getattr(importlib.import_module(module_name), attr)(init)
        _ACTOR_STATES[key] = actor
    return getattr(actor, method)(*args)


class ShardPool:
    """Affinity-preserving pool of stateful actors over worker processes.

    The :class:`ExperimentRunner` pool above is stateless — any worker
    may run any experiment.  Sharded cluster simulation needs the
    opposite: each shard's simulator state must live in one process for
    the whole run, with the coordinator calling into it window after
    window.  ``ShardPool`` pins actor ``i`` to job slot ``i % jobs``
    (one single-worker process each), so calls to the same actor are
    ordered and state persists; distinct actors advance in parallel.

    ``jobs=1`` runs actors inline in the calling process — deterministic
    and debuggable, and the mode nested runs use (an experiment already
    executing inside an ``ExperimentRunner`` worker defaults to inline
    shards rather than nesting pools).
    """

    def __init__(self, jobs: int, factory: str):
        jobs = int(jobs)
        if jobs == 0:
            jobs = os.cpu_count() or 1
        elif jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if ":" not in factory:
            raise ValueError(
                f"factory must be a 'module:callable' path, got {factory!r}"
            )
        self.jobs = jobs
        self.factory = factory
        self._tag = f"pool{next(_POOL_TAGS)}"
        self._executors: list[ProcessPoolExecutor] = []
        self._started: set[int] = set()
        self._closed = False
        if jobs > 1:
            self._executors = [
                ProcessPoolExecutor(max_workers=1) for _ in range(jobs)
            ]

    @property
    def inline(self) -> bool:
        return not self._executors

    def submit(
        self, actor_id: int, init: object, method: str, *args: object
    ) -> Future:
        """Call ``method(*args)`` on actor ``actor_id``; returns a Future.

        ``init`` is the construction payload, used only on the actor's
        first call in its process.  Inline pools resolve the future
        immediately (exceptions are captured, matching pool semantics).
        """
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        if self.inline:
            future: Future = Future()
            try:
                future.set_result(_actor_call(
                    self._tag, self.factory, actor_id, init, method, args
                ))
            except BaseException as error:  # noqa: BLE001 - future contract
                future.set_exception(error)
            self._started.add(actor_id)
            return future
        executor = self._executors[actor_id % self.jobs]
        self._started.add(actor_id)
        return executor.submit(
            _actor_call, self._tag, self.factory, actor_id, init, method, args
        )

    def close(self) -> None:
        """Tear down worker processes (and any actor state they hold)."""
        if self._closed:
            return
        self._closed = True
        for actor_id in self._started:
            _ACTOR_STATES.pop((self._tag, actor_id), None)
        for executor in self._executors:
            executor.shutdown(wait=True)
        self._executors = []

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
