"""JSON artifact store: one canonical file per experiment plus a manifest.

Layout (under the store root, ``artifacts/`` by default)::

    artifacts/
      <experiment-id>.json     canonical JSON result of the experiment
      manifest.json            timings + cache hit/miss for the last run-all
      sweeps/<id>.json         parameter-sweep results (one file per sweep)
      cache/...                result cache (see :mod:`repro.runtime.cache`)

Artifacts are written through :func:`canonical_json` so a cached re-run
produces byte-identical files to a fresh run.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["ArtifactStore", "canonical_json", "canonical_payload"]


def canonical_json(payload: object) -> str:
    """Deterministic JSON text: sorted keys, 2-space indent, numpy-safe."""
    return json.dumps(payload, indent=2, sort_keys=True, default=float) + "\n"


def canonical_payload(payload: object) -> object:
    """Round-trip ``payload`` through JSON, coercing numpy scalars to floats.

    Executor results pass through this before caching so that a cache hit
    replays exactly the object a fresh run would have produced.
    """
    return json.loads(json.dumps(payload, default=float))


class ArtifactStore:
    """Writes experiment results and the run manifest under one root."""

    MANIFEST_NAME = "manifest.json"

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def path_for(self, experiment_id: str) -> Path:
        return self.root / f"{experiment_id}.json"

    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST_NAME

    def sweep_path(self, experiment_id: str) -> Path:
        return self.root / "sweeps" / f"{experiment_id}.json"

    def write(self, experiment_id: str, result: object) -> Path:
        path = self.path_for(experiment_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(canonical_json(result))
        return path

    def write_sweep(self, experiment_id: str, payload: object) -> Path:
        path = self.sweep_path(experiment_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(canonical_json(payload))
        return path

    def write_manifest(self, manifest: dict) -> Path:
        path = self.manifest_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(canonical_json(manifest))
        return path

    def read(self, experiment_id: str) -> object:
        return json.loads(self.path_for(experiment_id).read_text())
