"""Run provenance: who/what/where a measurement was taken.

``BENCH_*.json`` files accumulate into a perf trajectory; a wall-time
number is only attributable if the payload records what produced it.
:func:`provenance` captures the minimal reproducibility context —
UTC timestamp, interpreter and numpy versions, host shape, and the git
SHA when the working tree is a checkout — with every field best-effort
(a missing git binary must not fail a bench run).
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from datetime import datetime, timezone

__all__ = ["provenance", "format_provenance"]


def _git_sha() -> str | None:
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    sha = result.stdout.strip()
    return sha or None


def _numpy_version() -> str | None:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        return None
    return numpy.__version__


def provenance() -> dict:
    """A JSON-ready provenance block (every field present, maybe None)."""
    return {
        "generated_at_utc": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
        "argv": list(sys.argv),
    }


def format_provenance(block: dict | None, label: str = "") -> str:
    """One human line: ``[label] 2026-08-08T.. py3.12 numpy2.x 8cpu @abc123``."""
    if not block:
        return f"{label}(no provenance recorded)" if label else "(no provenance)"
    parts = []
    when = block.get("generated_at_utc")
    if when:
        parts.append(str(when))
    if block.get("python"):
        parts.append(f"py{block['python']}")
    if block.get("numpy"):
        parts.append(f"numpy{block['numpy']}")
    if block.get("cpu_count"):
        parts.append(f"{block['cpu_count']}cpu")
    if block.get("git_sha"):
        parts.append(f"@{block['git_sha']}")
    return (label + " ".join(parts)) if parts else f"{label}(empty provenance)"
