"""Content-addressed on-disk result cache for experiment runs.

A cache entry is keyed by ``(experiment id, registry code hash, config
hash)`` — the config hash covers the fully-resolved parameter dict, the
code hash covers every ``repro.harness`` source file — so a re-run of an
unchanged experiment is a near-free disk read, while any code or parameter
change misses cleanly.

Entries live at ``<root>/<key[:2]>/<key>.json``.  A corrupted or
truncated entry (interrupted write, disk fault) is treated as a miss and
deleted, so the next run repairs the cache automatically.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from .artifacts import canonical_json

__all__ = [
    "CacheEntry",
    "CacheEntryInfo",
    "GcResult",
    "ResultCache",
    "StoreStats",
    "cache_key",
    "config_hash",
]


def config_hash(params: dict) -> str:
    """SHA-256 of the canonical JSON encoding of a resolved param dict."""
    text = json.dumps(params, sort_keys=True, default=float)
    return hashlib.sha256(text.encode()).hexdigest()


def cache_key(experiment_id: str, code_hash: str, cfg_hash: str) -> str:
    digest = hashlib.sha256()
    for part in (experiment_id, code_hash, cfg_hash):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    experiment: str
    params: dict
    code_hash: str
    config_hash: str
    result: object

    def payload(self) -> dict:
        return {
            "experiment": self.experiment,
            "params": self.params,
            "code_hash": self.code_hash,
            "config_hash": self.config_hash,
            "result": self.result,
        }


class ResultCache:
    """Directory of content-addressed experiment results."""

    # A .tmp this old cannot be a write in flight; gc may reclaim it.
    TMP_ORPHAN_AGE_S = 60.0

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str, experiment_id: str | None = None) -> CacheEntry | None:
        """Load an entry, or ``None`` on miss *or* corruption (self-healing)."""
        path = self.path_for(key)
        try:
            raw = json.loads(path.read_text())
            entry = CacheEntry(
                experiment=raw["experiment"],
                params=raw["params"],
                code_hash=raw["code_hash"],
                config_hash=raw["config_hash"],
                result=raw["result"],
            )
        except FileNotFoundError:
            obs.inc("cache.result.miss")
            return None
        except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError):
            # Corrupted entry: drop it so the re-run rewrites a good one.
            path.unlink(missing_ok=True)
            obs.inc("cache.result.corrupt")
            obs.inc("cache.result.miss")
            return None
        if experiment_id is not None and entry.experiment != experiment_id:
            path.unlink(missing_ok=True)
            obs.inc("cache.result.miss")
            return None
        obs.inc("cache.result.hit")
        return entry

    def put(self, key: str, entry: CacheEntry) -> Path:
        obs.inc("cache.result.put")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(canonical_json(entry.payload()))
        tmp.replace(path)  # atomic: a crashed write never corrupts an entry
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def entry_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def _scan(self) -> list[tuple[Path, int, float]]:
        """(path, size, mtime) of every entry, newest first — stat only.

        Entries unlinked between glob and stat (a concurrent gc or sweep)
        are skipped; ties on mtime break by path for a deterministic order.
        """
        found = []
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            found.append((path, stat.st_size, stat.st_mtime))
        return sorted(found, key=lambda e: (-e[2], str(e[0])))

    def list_entries(self) -> list["CacheEntryInfo"]:
        """Metadata of every entry, newest first (for ``repro cache ls``).

        Corrupted entries are listed too, as experiment ``"<corrupt>"``
        (``get()`` self-heals them on access; ``gc`` removes them when
        they age out of the keep window like any other entry).
        """
        infos = []
        for path, size, mtime in self._scan():
            experiment, params = "<corrupt>", {}
            try:
                raw = json.loads(path.read_text())
                experiment = str(raw["experiment"])
                raw_params = raw.get("params")
                params = raw_params if isinstance(raw_params, dict) else {}
            except FileNotFoundError:
                continue  # unlinked since the scan (concurrent gc)
            except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError):
                pass
            infos.append(CacheEntryInfo(
                path=path,
                key=path.stem,
                experiment=experiment,
                params=params,
                size_bytes=size,
                mtime=mtime,
            ))
        return infos

    def gc(self, keep_latest: int) -> "GcResult":
        """Delete all but the ``keep_latest`` most recent entries.

        Long sweep campaigns write one entry per grid point, so the cache
        grows unboundedly without this.  Victims are picked from the
        stat-only scan (no payload parsing).  Empty shard directories left
        behind are pruned.  Returns kept/removed counts and freed bytes.
        """
        if keep_latest < 0:
            raise ValueError("keep_latest must be >= 0")
        entries = self._scan()
        doomed = entries[keep_latest:]
        freed = 0
        removed = len(doomed)
        for path, size, _ in doomed:
            freed += size
            path.unlink(missing_ok=True)
        # Orphaned .tmp files from a crashed put() never become entries;
        # collect them too, but only once stale — a fresh one may belong
        # to a write in flight.
        cutoff = time.time() - self.TMP_ORPHAN_AGE_S
        for tmp in self.root.glob("*/*.tmp"):
            try:
                stat = tmp.stat()
            except FileNotFoundError:
                continue
            if stat.st_mtime < cutoff:
                freed += stat.st_size
                removed += 1
                tmp.unlink(missing_ok=True)
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass  # non-empty, or a concurrent writer repopulated it
        obs.inc("cache.result.evict", removed)
        return GcResult(
            kept=len(entries) - len(doomed),
            removed=removed,
            freed_bytes=freed,
        )

    def stats(self) -> "StoreStats":
        """Entry count and total bytes (stat-only scan, no payload reads).

        Also publishes the numbers as gauges (``cache.result.entries`` /
        ``cache.result.bytes``) when metrics are on, so a registry dump
        records cache shape alongside the hit/miss counters.
        """
        entries = self._scan()
        stats = StoreStats(
            store="result",
            entries=len(entries),
            total_bytes=sum(size for _, size, _ in entries),
        )
        obs.set_gauge("cache.result.entries", stats.entries)
        obs.set_gauge("cache.result.bytes", stats.total_bytes)
        return stats


@dataclass(frozen=True)
class CacheEntryInfo:
    """Metadata of one on-disk cache entry (no result payload)."""

    path: Path
    key: str
    experiment: str
    params: dict
    size_bytes: int
    mtime: float


@dataclass(frozen=True)
class GcResult:
    """Outcome of one cache garbage collection."""

    kept: int
    removed: int
    freed_bytes: int


@dataclass(frozen=True)
class StoreStats:
    """Shape of one cache store (``repro cache ls --stats``)."""

    store: str
    entries: int
    total_bytes: int
