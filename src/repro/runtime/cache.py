"""Content-addressed on-disk result cache for experiment runs.

A cache entry is keyed by ``(experiment id, registry code hash, config
hash)`` — the config hash covers the fully-resolved parameter dict, the
code hash covers every ``repro.harness`` source file — so a re-run of an
unchanged experiment is a near-free disk read, while any code or parameter
change misses cleanly.

Entries live at ``<root>/<key[:2]>/<key>.json``.  A corrupted or
truncated entry (interrupted write, disk fault) is treated as a miss and
deleted, so the next run repairs the cache automatically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from .artifacts import canonical_json

__all__ = ["ResultCache", "CacheEntry", "cache_key", "config_hash"]


def config_hash(params: dict) -> str:
    """SHA-256 of the canonical JSON encoding of a resolved param dict."""
    text = json.dumps(params, sort_keys=True, default=float)
    return hashlib.sha256(text.encode()).hexdigest()


def cache_key(experiment_id: str, code_hash: str, cfg_hash: str) -> str:
    digest = hashlib.sha256()
    for part in (experiment_id, code_hash, cfg_hash):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    experiment: str
    params: dict
    code_hash: str
    config_hash: str
    result: object

    def payload(self) -> dict:
        return {
            "experiment": self.experiment,
            "params": self.params,
            "code_hash": self.code_hash,
            "config_hash": self.config_hash,
            "result": self.result,
        }


class ResultCache:
    """Directory of content-addressed experiment results."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str, experiment_id: str | None = None) -> CacheEntry | None:
        """Load an entry, or ``None`` on miss *or* corruption (self-healing)."""
        path = self.path_for(key)
        try:
            raw = json.loads(path.read_text())
            entry = CacheEntry(
                experiment=raw["experiment"],
                params=raw["params"],
                code_hash=raw["code_hash"],
                config_hash=raw["config_hash"],
                result=raw["result"],
            )
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError):
            # Corrupted entry: drop it so the re-run rewrites a good one.
            path.unlink(missing_ok=True)
            return None
        if experiment_id is not None and entry.experiment != experiment_id:
            path.unlink(missing_ok=True)
            return None
        return entry

    def put(self, key: str, entry: CacheEntry) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(canonical_json(entry.payload()))
        tmp.replace(path)  # atomic: a crashed write never corrupts an entry
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def entry_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
