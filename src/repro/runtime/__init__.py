"""Parallel experiment runtime: executor, result cache, artifact store.

``ExperimentRunner`` fans the experiment registry out over a process
pool with a content-addressed on-disk cache, so ``repro run-all`` re-runs
are near-free and every paper artifact lands under ``artifacts/`` with a
timing/cache manifest.  See docs/RUNTIME.md.
"""

from .artifacts import ArtifactStore, canonical_json, canonical_payload
from .cache import (
    CacheEntry,
    CacheEntryInfo,
    GcResult,
    ResultCache,
    StoreStats,
    cache_key,
    config_hash,
)
from .executor import ExperimentRunner, RunOutcome, RunSummary
from .provenance import format_provenance, provenance
from .sweep import expand_grid, parse_param_specs

__all__ = [
    "ArtifactStore",
    "CacheEntry",
    "CacheEntryInfo",
    "GcResult",
    "ExperimentRunner",
    "ResultCache",
    "RunOutcome",
    "RunSummary",
    "StoreStats",
    "cache_key",
    "canonical_json",
    "canonical_payload",
    "config_hash",
    "expand_grid",
    "format_provenance",
    "parse_param_specs",
    "provenance",
]
