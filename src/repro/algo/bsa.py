"""Bundle-Sparsity-Aware training (BSA) — paper Sec. 4.1, Eq. 9-10.

BSA adds a bundle-level sparsity loss over the spiking activations entering
every MLP / projection layer plus the attention Q and K tensors::

    L_bsp = Σ_layers Σ_bundles Z(bundle)          (Eq. 10)
    L_tot = L_CE + λ · L_bsp

The paper defines the tag ``Z`` as the L0 norm of the bundle's contents
(Eq. 9).  For binary spikes, summing L0 tags equals the global spike count —
a *spike*-level pressure.  To obtain the *bundle*-level behaviour the paper
reports (more fully-inactive TTBs, whole features going silent — Fig. 5), we
additionally provide a saturating tag ``Z = s/(s+α)``, whose gradient is
largest for nearly-empty bundles so optimization drains them completely, and
a straight-through indicator tag ``Z = min(s, 1)``.  ``tag="saturating"`` is
the default used by the trainer; see DESIGN.md "Interpretation choices".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor
from ..bundles import BundleSpec

__all__ = ["BundleSparsityLoss", "bundle_sums", "TAG_MODES"]

TAG_MODES = ("l0", "saturating", "indicator")


def bundle_sums(x: Tensor, spec: BundleSpec) -> Tensor:
    """Differentiable per-bundle spike counts.

    ``x`` has shape ``(T, B, N, D)``; the result has shape
    ``(n_bt, B, n_bn, D)``.  T and N are zero-padded to multiples of the
    bundle sizes (padding contributes nothing to any sum).
    """
    t, b, n, d = x.shape
    n_bt, n_bn = spec.grid_shape(t, n)
    pad_t = n_bt * spec.bs_t - t
    pad_n = n_bn * spec.bs_n - n
    if pad_t:
        zeros = Tensor(np.zeros((pad_t, b, n, d)))
        x = Tensor.concatenate([x, zeros], axis=0)
    if pad_n:
        zeros = Tensor(np.zeros((n_bt * spec.bs_t, b, pad_n, d)))
        x = Tensor.concatenate([x, zeros], axis=2)
    grouped = x.reshape(n_bt, spec.bs_t, b, n_bn, spec.bs_n, d)
    return grouped.sum(axis=4).sum(axis=1)


@dataclass
class BundleSparsityLoss:
    """Callable computing ``L_bsp`` over a list of tapped activations.

    Parameters
    ----------
    spec:
        TTB volume used for bundling (must match the accelerator's).
    tag:
        ``"l0"`` — Eq. 9 verbatim; ``"saturating"`` — ``s/(s+α)``;
        ``"indicator"`` — straight-through ``min(s, 1)``.
    alpha:
        Saturation constant for the saturating tag.
    normalize:
        Divide by the total number of bundles so λ has a scale-free meaning
        (the paper's per-dataset λ values assume an implementation-defined
        scale; normalization makes ours transferable across model sizes).
    """

    spec: BundleSpec
    tag: str = "saturating"
    alpha: float = 0.5
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.tag not in TAG_MODES:
            raise ValueError(f"unknown tag mode {self.tag!r}; options: {TAG_MODES}")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def tag_values(self, sums: Tensor) -> Tensor:
        """Apply the tag transform to per-bundle spike counts."""
        if self.tag == "l0":
            return sums
        if self.tag == "saturating":
            return sums / (sums + self.alpha)
        # Straight-through indicator: forward min(s, 1), identity backward.
        return sums.apply(
            lambda s: np.minimum(s, 1.0),
            lambda s, grad: grad,
        )

    def __call__(self, taps: list[tuple[str, Tensor]]) -> Tensor:
        """``taps``: named ``(T, B, N, D)`` spike tensors from a forward pass."""
        if not taps:
            raise ValueError("BSA loss needs at least one tapped activation")
        total: Tensor | None = None
        bundle_count = 0
        for _, activation in taps:
            sums = bundle_sums(activation, self.spec)
            tags = self.tag_values(sums)
            batch = activation.shape[1]
            bundle_count += tags.size // batch
            term = tags.sum() * (1.0 / batch)
            total = term if total is None else total + term
        if self.normalize:
            total = total * (1.0 / bundle_count)
        return total
