"""Error-Constrained TT-Bundle Pruning (ECP) — paper Sec. 5.1, Fig. 7.

ECP removes whole bundle-rows from the spiking queries and keys before the
attention product.  Because Q and K are binary, the attention scores obey a
hard bound that ANN attention lacks:

    For bundle-row (bt, bn) of Q, let n_ab = number of active bundles across
    all D features.  Every token-time point (t, i) inside the row has at
    most n_ab active features, so every score S[t, i, j] = Σ_d Q[t,i,d]·K[t,j,d]
    satisfies S[t, i, j] ≤ n_ab.

Pruning rows with ``n_ab < θ_p,Q`` therefore changes any score by strictly
less than ``θ_p,Q`` — the "error-constrained" guarantee (property-tested in
``tests/algo/test_ecp.py``).  The same argument applied to K bounds pruned
columns by ``θ_p,K``.  Pruning compounds (Fig. 7): removed K rows make the
matching V rows and S columns dead, and removed Q rows kill S rows and Y
writebacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bundles import BundleSpec, TTBGrid

__all__ = [
    "ECPConfig",
    "ECPReport",
    "bundle_row_keep_mask",
    "expand_row_mask",
    "ecp_prune_qk",
    "ECPAttentionPruner",
    "attach_ecp",
    "detach_ecp",
]


@dataclass(frozen=True)
class ECPConfig:
    """Pruning thresholds (paper: 6 for static models, 10 for DVS-Gesture)."""

    theta_q: float
    theta_k: float
    spec: BundleSpec

    def __post_init__(self) -> None:
        if self.theta_q < 0 or self.theta_k < 0:
            raise ValueError("pruning thresholds must be non-negative")


@dataclass(frozen=True)
class ECPReport:
    """Outcome of pruning one attention layer's Q/K tensors."""

    q_row_keep: np.ndarray        # (n_bt, n_bn) bool
    k_row_keep: np.ndarray        # (n_bt, n_bn) bool
    q_token_keep_fraction: float  # surviving token-time slots in Q
    k_token_keep_fraction: float
    theta_q: float
    theta_k: float

    @property
    def score_compute_fraction(self) -> float:
        """Surviving fraction of the S = Q·K^T computation (Fig. 7's
        compounding: kept rows × kept columns)."""
        return self.q_token_keep_fraction * self.k_token_keep_fraction

    @property
    def v_access_fraction(self) -> float:
        """V rows that must still be read (dead S columns skip their V rows)."""
        return self.k_token_keep_fraction

    @property
    def y_writeback_fraction(self) -> float:
        """Y rows still written back (pruned Q rows produce no output)."""
        return self.q_token_keep_fraction

    @property
    def error_bound(self) -> float:
        """Certified per-score error bound: every pruned score was strictly
        below the threshold that pruned it."""
        return max(self.theta_q, self.theta_k)


def bundle_row_keep_mask(
    spikes: np.ndarray, theta: float, spec: BundleSpec
) -> np.ndarray:
    """Keep mask over bundle rows ``(n_bt, n_bn)`` of a ``(T, N, D)`` tensor.

    A row is pruned when its active-bundle count across features is strictly
    below ``theta`` — guaranteeing all its attention scores are ``< theta``.
    """
    grid = TTBGrid(spikes, spec)
    return grid.active_per_bundle_row >= theta


def expand_row_mask(
    row_mask: np.ndarray, spec: BundleSpec, timesteps: int, tokens: int
) -> np.ndarray:
    """Expand a ``(n_bt, n_bn)`` bundle-row mask to token-time ``(T, N)``."""
    per_time = np.repeat(row_mask, spec.bs_t, axis=0)[:timesteps]
    return np.repeat(per_time, spec.bs_n, axis=1)[:, :tokens]


def ecp_prune_qk(
    q: np.ndarray, k: np.ndarray, config: ECPConfig
) -> tuple[np.ndarray, np.ndarray, ECPReport]:
    """Prune full-D binary Q and K tensors of shape ``(T, N, D)``.

    Returns pruned copies plus the :class:`ECPReport`.  Pruning zeroes all
    features of every token-time slot inside a pruned bundle row, which on
    the accelerator means the bundle is never fetched or scheduled.
    """
    if q.shape[:2] != k.shape[:2]:
        raise ValueError(f"Q/K token grids differ: {q.shape} vs {k.shape}")
    timesteps, tokens = q.shape[:2]
    q_rows = bundle_row_keep_mask(q, config.theta_q, config.spec)
    k_rows = bundle_row_keep_mask(k, config.theta_k, config.spec)
    q_mask = expand_row_mask(q_rows, config.spec, timesteps, tokens)
    k_mask = expand_row_mask(k_rows, config.spec, timesteps, tokens)
    report = ECPReport(
        q_row_keep=q_rows,
        k_row_keep=k_rows,
        q_token_keep_fraction=float(q_mask.mean()),
        k_token_keep_fraction=float(k_mask.mean()),
        theta_q=config.theta_q,
        theta_k=config.theta_k,
    )
    return q * q_mask[:, :, None], k * k_mask[:, :, None], report


class ECPAttentionPruner:
    """Stateful pruner attached to an SSA module (``ssa.ecp``).

    During forward it converts live batched Q/K tensors ``(T, B, N, D)`` into
    multiplicative token masks; it also remembers the last reports so
    harnesses can read pruning fractions after an inference.
    """

    def __init__(self, config: ECPConfig):
        self.config = config
        self.last_reports: list[ECPReport] = []

    def token_masks(
        self, q_data: np.ndarray, k_data: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Masks of shape ``(T, B, N)`` — 1 keeps, 0 prunes a token-time slot."""
        timesteps, batch, tokens, _ = q_data.shape
        mask_q = np.empty((timesteps, batch, tokens), dtype=np.float64)
        mask_k = np.empty_like(mask_q)
        self.last_reports = []
        for b in range(batch):
            q_rows = bundle_row_keep_mask(q_data[:, b], self.config.theta_q, self.config.spec)
            k_rows = bundle_row_keep_mask(k_data[:, b], self.config.theta_k, self.config.spec)
            mq = expand_row_mask(q_rows, self.config.spec, timesteps, tokens)
            mk = expand_row_mask(k_rows, self.config.spec, timesteps, tokens)
            mask_q[:, b] = mq
            mask_k[:, b] = mk
            self.last_reports.append(
                ECPReport(
                    q_row_keep=q_rows,
                    k_row_keep=k_rows,
                    q_token_keep_fraction=float(mq.mean()),
                    k_token_keep_fraction=float(mk.mean()),
                    theta_q=self.config.theta_q,
                    theta_k=self.config.theta_k,
                )
            )
        return mask_q, mask_k


def attach_ecp(model, config: ECPConfig) -> list[ECPAttentionPruner]:
    """Attach an :class:`ECPAttentionPruner` to every SSA block of ``model``.

    Used both for ECP-aware training (masks act as straight-through constants)
    and for inference-time pruning; returns the pruners for inspection.
    """
    pruners = []
    for ssa in model.attention_modules():
        pruner = ECPAttentionPruner(config)
        ssa.ecp = pruner
        pruners.append(pruner)
    return pruners


def detach_ecp(model) -> None:
    """Remove ECP pruning from every SSA block."""
    for ssa in model.attention_modules():
        ssa.ecp = None
