"""Bishop's HW/SW co-design algorithms (systems S6-S7): BSA and ECP."""

from .bsa import TAG_MODES, BundleSparsityLoss, bundle_sums
from .ecp import (
    ECPAttentionPruner,
    ECPConfig,
    ECPReport,
    attach_ecp,
    bundle_row_keep_mask,
    detach_ecp,
    ecp_prune_qk,
    expand_row_mask,
)

__all__ = [
    "BundleSparsityLoss",
    "bundle_sums",
    "TAG_MODES",
    "ECPConfig",
    "ECPReport",
    "ECPAttentionPruner",
    "attach_ecp",
    "detach_ecp",
    "ecp_prune_qk",
    "bundle_row_keep_mask",
    "expand_row_mask",
]
