"""Serving-level results: per-request records and aggregate statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.engine.timeline import EngineRun
from .sketch import LatencySketch

__all__ = [
    "LatencyStats",
    "ServedRequest",
    "ServingReport",
    "latency_stats",
    "slo_block",
]

PERCENTILES = (50, 90, 95, 99)


def slo_block(latencies_s, slo_ms: float) -> dict:
    """The canonical SLO summary block quoted in reports.

    Accepts raw samples or a :class:`~repro.serve.sketch.LatencySketch`
    (same seam as :func:`latency_stats`): attainment is the CDF at the
    objective, violations the complementary count.  An empty sample set
    reports zero attainment — "no data" must not read as "SLO met".
    """
    if isinstance(latencies_s, LatencySketch):
        count = latencies_s.count
        attainment = latencies_s.cdf(slo_ms * 1e-3) if count else 0.0
    else:
        samples = np.asarray(latencies_s, dtype=float)
        count = int(samples.size)
        attainment = (
            float((samples <= slo_ms * 1e-3).mean()) if count else 0.0
        )
    return {
        "slo_ms": float(slo_ms),
        "attainment": attainment,
        "violations": int(round((1.0 - attainment) * count)),
    }


@dataclass(frozen=True)
class LatencyStats:
    """Percentile summary of one latency sample set (seconds in, ms out).

    Shared by the single-chip :class:`ServingReport` and the cluster
    reports.  Degenerate inputs are well-defined rather than errors: an
    empty sample set reports all-zero statistics (a fully-shed stream is a
    legitimate simulation outcome), and a single sample reports that value
    at every percentile.
    """

    count: int
    mean_ms: float
    max_ms: float
    percentiles_ms: dict[str, float]


def latency_stats(
    latencies_s: "np.ndarray | list[float] | LatencySketch",
) -> LatencyStats:
    """Summarize a latency sample set; safe on empty and single samples.

    Accepts either raw samples (exact percentiles) or a streaming
    :class:`~repro.serve.sketch.LatencySketch` (bounded-error
    percentiles, exact count/mean/max) — the seam the sharded cluster
    simulation uses so fleet-scale runs never hold full latency lists.
    """
    if isinstance(latencies_s, LatencySketch):
        sketch = latencies_s
        if sketch.count == 0:
            return LatencyStats(
                count=0,
                mean_ms=0.0,
                max_ms=0.0,
                percentiles_ms={f"p{p}": 0.0 for p in PERCENTILES},
            )
        return LatencyStats(
            count=sketch.count,
            mean_ms=sketch.mean_s * 1e3,
            max_ms=sketch.max_s * 1e3,
            percentiles_ms={
                f"p{p}": sketch.percentile(p) * 1e3 for p in PERCENTILES
            },
        )
    samples = np.asarray(latencies_s, dtype=float)
    if samples.size == 0:
        return LatencyStats(
            count=0,
            mean_ms=0.0,
            max_ms=0.0,
            percentiles_ms={f"p{p}": 0.0 for p in PERCENTILES},
        )
    values = np.percentile(samples, PERCENTILES)
    return LatencyStats(
        count=int(samples.size),
        mean_ms=float(samples.mean()) * 1e3,
        max_ms=float(samples.max()) * 1e3,
        percentiles_ms={
            f"p{p}": float(v) * 1e3 for p, v in zip(PERCENTILES, values)
        },
    )


@dataclass(frozen=True)
class ServedRequest:
    """One request's life cycle through the serving simulator."""

    index: int
    model: str
    arrival_s: float
    start_s: float       # dispatch time (batch formed, chip slot granted)
    finish_s: float
    batch_size: int      # continuous mode: largest group the request ran in
    chip: str = ""       # serving chip (cluster runs; "" on a lone chip)
    tenant: str = ""     # owning tenant ("" for single-tenant streams)
    priority: int = 0    # scheduling tier
    preemptions: int = 0  # times displaced at a stage boundary (continuous)

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s


@dataclass
class ServingReport:
    """Aggregate view of one serving simulation."""

    num_requests: int
    offered_rps: float           # arrival rate of the generated stream
    horizon_s: float             # last completion time
    throughput_rps: float
    latency_percentiles_ms: dict[str, float]
    latency_mean_ms: float
    latency_max_ms: float
    queue_wait_mean_ms: float
    mean_batch_size: float
    utilization: dict[str, float]
    dynamic_energy_mj: float
    static_energy_mj: float
    policy: str
    max_batch: int
    max_inflight: int
    mode: str = "static"
    preemptions: int = 0         # continuous: priority displacements
    continuous_joins: int = 0    # continuous: merges into in-flight cohorts
    tenant_service_s: dict[str, float] = field(default_factory=dict)
    requests: tuple[ServedRequest, ...] = field(default_factory=tuple, repr=False)
    run: EngineRun | None = field(default=None, repr=False)

    @property
    def energy_per_request_mj(self) -> float:
        if not self.num_requests:
            return 0.0
        return (self.dynamic_energy_mj + self.static_energy_mj) / self.num_requests

    def to_dict(self) -> dict:
        """JSON-ready payload (drops the raw request list and timeline)."""
        payload = {
            "num_requests": self.num_requests,
            "offered_rps": self.offered_rps,
            "horizon_s": self.horizon_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "mean": self.latency_mean_ms,
                "max": self.latency_max_ms,
                **self.latency_percentiles_ms,
            },
            "queue_wait_mean_ms": self.queue_wait_mean_ms,
            "mean_batch_size": self.mean_batch_size,
            "utilization": dict(self.utilization),
            "energy_mj": {
                "dynamic": self.dynamic_energy_mj,
                "static": self.static_energy_mj,
                "per_request": self.energy_per_request_mj,
            },
            "scheduler": {
                "policy": self.policy,
                "max_batch": self.max_batch,
                "max_inflight": self.max_inflight,
                "mode": self.mode,
                "preemptions": self.preemptions,
                "continuous_joins": self.continuous_joins,
            },
        }
        if self.tenant_service_s:
            total = sum(self.tenant_service_s.values())
            payload["tenants"] = {
                tenant: {
                    "service_s": service,
                    "service_share": service / total if total > 0 else 0.0,
                }
                for tenant, service in sorted(self.tenant_service_s.items())
            }
        return payload


def build_report(
    served: list[ServedRequest],
    run: EngineRun,
    offered_rps: float,
    dynamic_energy_pj: float,
    static_energy_pj: float,
    policy: str,
    max_batch: int,
    max_inflight: int,
    mode: str = "static",
    preemptions: int = 0,
    continuous_joins: int = 0,
    tenant_service_s: dict[str, float] | None = None,
) -> ServingReport:
    served = sorted(served, key=lambda r: r.index)
    stats = latency_stats([r.latency_s for r in served])
    waits = np.array([r.queue_wait_s for r in served])
    horizon = max((r.finish_s for r in served), default=0.0)
    return ServingReport(
        num_requests=len(served),
        offered_rps=offered_rps,
        horizon_s=horizon,
        throughput_rps=len(served) / horizon if horizon else 0.0,
        latency_percentiles_ms=stats.percentiles_ms,
        latency_mean_ms=stats.mean_ms,
        latency_max_ms=stats.max_ms,
        queue_wait_mean_ms=float(waits.mean()) * 1e3 if served else 0.0,
        mean_batch_size=(
            float(np.mean([r.batch_size for r in served])) if served else 0.0
        ),
        utilization={k: float(v) for k, v in run.utilization().items()},
        dynamic_energy_mj=dynamic_energy_pj * 1e-9,
        static_energy_mj=static_energy_pj * 1e-9,
        policy=policy,
        max_batch=max_batch,
        max_inflight=max_inflight,
        mode=mode,
        preemptions=preemptions,
        continuous_joins=continuous_joins,
        tenant_service_s=dict(tenant_service_s or {}),
        requests=tuple(served),
        run=run,
    )
