"""Request workloads for the serving simulator.

Arrival processes
-----------------
``poisson_arrivals``
    Memoryless stream at a target rate — the classic open-loop load model.
``bursty_arrivals``
    Hyperexponential inter-arrival gaps: a fraction of gaps is drawn from a
    much faster exponential, producing request bursts while preserving the
    target mean rate (coefficient of variation > 1).

Model mixes
-----------
A mix string names the Table-2 models a stream draws from, with optional
weights: ``"model4"``, ``"model4:0.7+model2:0.3"``.  ``+`` separates
entries because ``,`` already delimits sweep-axis values on the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model import MODEL_ZOO

__all__ = [
    "Request",
    "bursty_arrivals",
    "parse_model_mix",
    "poisson_arrivals",
]


@dataclass(frozen=True)
class Request:
    """One inference request in an arrival stream."""

    index: int
    model: str
    arrival_s: float


def parse_model_mix(mix: str) -> dict[str, float]:
    """Parse ``"model4"`` / ``"model4:0.7+model2:0.3"`` into weights.

    Weights are normalized to sum to 1; entries without an explicit weight
    get weight 1 before normalization.
    """
    weights: dict[str, float] = {}
    for entry in mix.split("+"):
        entry = entry.strip()
        if not entry:
            continue
        name, sep, raw_weight = entry.partition(":")
        name = name.strip()
        if name not in MODEL_ZOO:
            raise ValueError(
                f"unknown model {name!r} in mix {mix!r}; options {sorted(MODEL_ZOO)}"
            )
        if name in weights:
            raise ValueError(f"duplicate model {name!r} in mix {mix!r}")
        weight = float(raw_weight) if sep else 1.0
        if weight <= 0:
            raise ValueError(f"model weight must be positive in {mix!r}")
        weights[name] = weight
    if not weights:
        raise ValueError(f"empty model mix {mix!r}")
    total = sum(weights.values())
    return {name: weight / total for name, weight in weights.items()}


def _materialize(
    gaps: np.ndarray, mix: dict[str, float], rng: np.random.Generator
) -> list[Request]:
    arrivals = np.cumsum(gaps)
    models = rng.choice(list(mix), size=len(gaps), p=list(mix.values()))
    return [
        Request(index=i, model=str(models[i]), arrival_s=float(arrivals[i]))
        for i in range(len(gaps))
    ]


def poisson_arrivals(
    num_requests: int,
    rate_rps: float,
    mix: str | dict[str, float] = "model4",
    seed: int = 0,
) -> list[Request]:
    """Poisson stream: exponential inter-arrival gaps at ``rate_rps``."""
    if num_requests < 1:
        raise ValueError("need at least one request")
    if rate_rps <= 0:
        raise ValueError("arrival rate must be positive")
    weights = parse_model_mix(mix) if isinstance(mix, str) else dict(mix)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
    return _materialize(gaps, weights, rng)


def bursty_arrivals(
    num_requests: int,
    rate_rps: float,
    mix: str | dict[str, float] = "model4",
    seed: int = 0,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.3,
) -> list[Request]:
    """Bursty stream with the same mean rate as the Poisson one.

    A ``burst_fraction`` share of gaps is exponential at
    ``burst_factor × rate_rps`` (requests arriving back-to-back); the rest
    is stretched so the overall mean gap stays ``1/rate_rps``.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if rate_rps <= 0:
        raise ValueError("arrival rate must be positive")
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must exceed 1")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in (0, 1)")
    weights = parse_model_mix(mix) if isinstance(mix, str) else dict(mix)
    rng = np.random.default_rng(seed)
    # Mean gap budget: burst gaps spend 1/(burst_factor·λ) each, the slow
    # phase absorbs the remainder so E[gap] = 1/λ exactly.
    fast_rate = burst_factor * rate_rps
    slow_mean = (1.0 / rate_rps - burst_fraction / fast_rate) / (1.0 - burst_fraction)
    in_burst = rng.random(num_requests) < burst_fraction
    gaps = np.where(
        in_burst,
        rng.exponential(1.0 / fast_rate, size=num_requests),
        rng.exponential(slow_mean, size=num_requests),
    )
    return _materialize(gaps, weights, rng)
