"""Queue and batch scheduling policies for the serving simulator.

The scheduler decides *what to dispatch next* when the chip has a free
inference slot; the engine then decides how the dispatched work contends
for cores.  Two axes:

``max_batch``
    Requests for the same model are merged into one batched inference:
    compute scales with batch size, but the layer's weights stream from
    DRAM only once (the classic batching bandwidth amortization).
    ``max_batch=1`` is plain FIFO.
``max_inflight``
    Concurrent inferences allowed on the chip.  More than one lets
    requests overlap on different cores (one request's attention phase
    under another's MLP), at the price of queueing on busy cores.
``mode``
    ``"static"`` (the default): batches are formed once at dispatch and
    run to completion (:func:`take_batch` + the layer-serial or
    scheduled inference process).  ``"continuous"``: execution groups
    are re-formed at every compiled-``Stage`` boundary by the
    :class:`~repro.serve.continuous.ContinuousBatchScheduler` —
    requests join and leave in-flight groups, higher priority tiers
    preempt at stage boundaries (``preempt``), and preempted requests
    resume from their checkpointed stage index without redoing work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .workload import Request

__all__ = ["SCHEDULER_MODES", "SchedulerConfig", "take_batch"]

SCHEDULER_MODES = ("static", "continuous")


@dataclass(frozen=True)
class SchedulerConfig:
    """Dispatch policy of the serving simulator."""

    max_batch: int = 1
    max_inflight: int = 1
    mode: str = "static"
    allow_join: bool = True   # continuous: may requests join in-flight groups?
    preempt: bool = True      # continuous: may priority displace at boundaries?

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.mode not in SCHEDULER_MODES:
            raise ValueError(
                f"unknown scheduler mode {self.mode!r};"
                f" options {sorted(SCHEDULER_MODES)}"
            )

    @property
    def continuous(self) -> bool:
        return self.mode == "continuous"

    @property
    def policy(self) -> str:
        if self.continuous:
            return "continuous"
        return "fifo" if self.max_batch == 1 else "batch"


def take_batch(pending: deque[Request], max_batch: int) -> list[Request]:
    """Pop the next batch: the head request plus up to ``max_batch - 1``
    later pending requests for the *same model* (they can share weight
    streams).  Requests for other models keep their queue positions.
    """
    if not pending:
        raise ValueError("no pending requests")
    head = pending.popleft()
    batch = [head]
    if max_batch > 1:
        keep: list[Request] = []
        while pending and len(batch) < max_batch:
            request = pending.popleft()
            if request.model == head.model:
                batch.append(request)
            else:
                keep.append(request)
        for request in reversed(keep):
            pending.appendleft(request)
    return batch
