"""Mergeable streaming percentile sketch for latency statistics.

Planet-scale runs cannot keep one ``ServedRequest`` per request in memory
— a million-request day of full latency lists is exactly what the sharded
cluster simulation must avoid shipping between processes.  A
:class:`LatencySketch` summarizes a latency sample set in a fixed-size
log-spaced histogram (HDR-histogram style) that supports the same role a
t-digest plays in serving telemetry: streaming inserts, bounded memory,
and **merge** — two shards' sketches combine into the fleet's sketch.

Log-spaced buckets are chosen over t-digest centroids deliberately: the
bucket edges are fixed up front, so merging is exact integer addition of
counts and therefore *associative and commutative* — the merged
percentiles are a pure function of the sample multiset, independent of
shard count, merge order, or worker scheduling.  (A t-digest's centroids
depend on insertion/merge order, which would make sharded runs
non-deterministic.)  The price is a fixed relative-error bound per
bucket: with the default ``rel_err=0.005`` every reported percentile is
within 0.5% of the exact sample value, comfortably inside the 1%
conformance budget the sharded cluster report is tested against.

Exact ``count`` / ``sum`` / ``min`` / ``max`` ride along, so the mean is
exact and degenerate sets (empty, single sample) reproduce
``latency_stats``'s contract bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["LatencySketch"]

# Default dynamic range: 0.1 µs .. 10,000 s covers every latency the
# simulator can produce (sub-layer timings through day-long backlogs).
_DEFAULT_LO = 1e-7
_DEFAULT_HI = 1e4
_DEFAULT_REL_ERR = 0.005


class LatencySketch:
    """Fixed-size mergeable histogram of latency samples (seconds).

    Samples below ``lo_s`` clamp into the first bucket and samples above
    ``hi_s`` into the last, so inserts never fail; the exact min/max
    bracket reported percentiles regardless.  Two sketches merge only if
    their bucket geometry matches (same ``lo_s`` / ``hi_s`` /
    ``rel_err``).
    """

    __slots__ = (
        "lo_s", "hi_s", "rel_err", "count", "sum_s", "min_s", "max_s",
        "_counts", "_log_lo", "_log_growth",
    )

    def __init__(
        self,
        lo_s: float = _DEFAULT_LO,
        hi_s: float = _DEFAULT_HI,
        rel_err: float = _DEFAULT_REL_ERR,
    ):
        if not 0.0 < lo_s < hi_s:
            raise ValueError("need 0 < lo_s < hi_s")
        if not 0.0 < rel_err < 1.0:
            raise ValueError("rel_err must be in (0, 1)")
        self.lo_s = float(lo_s)
        self.hi_s = float(hi_s)
        self.rel_err = float(rel_err)
        # Geometric buckets with midpoint relative error <= rel_err:
        # growth g = (1+e)/(1-e) makes sqrt(edge_k * edge_{k+1}) within
        # e of every sample in the bucket.
        growth = (1.0 + self.rel_err) / (1.0 - self.rel_err)
        self._log_lo = math.log(self.lo_s)
        self._log_growth = math.log(growth)
        num_bins = int(math.ceil(
            (math.log(self.hi_s) - self._log_lo) / self._log_growth
        ))
        self._counts = np.zeros(num_bins, dtype=np.int64)
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = -math.inf

    # -- geometry ----------------------------------------------------------
    @property
    def num_bins(self) -> int:
        return int(self._counts.size)

    def _bin_edges(self, indices: np.ndarray) -> np.ndarray:
        return np.exp(self._log_lo + indices * self._log_growth)

    def compatible(self, other: "LatencySketch") -> bool:
        return (
            self.lo_s == other.lo_s
            and self.hi_s == other.hi_s
            and self.rel_err == other.rel_err
        )

    # -- inserts -----------------------------------------------------------
    def add(self, value_s: float) -> None:
        """Insert one sample (scalar fast path: no array round-trip)."""
        value = float(value_s)
        if not math.isfinite(value):
            raise ValueError("latency samples must be finite")
        self.count += 1
        self.sum_s += value
        if value < self.min_s:
            self.min_s = value
        if value > self.max_s:
            self.max_s = value
        index = int(math.floor(
            (math.log(max(value, self.lo_s)) - self._log_lo) / self._log_growth
        ))
        self._counts[min(max(index, 0), self.num_bins - 1)] += 1

    def add_many(self, values_s) -> None:
        """Insert a batch of latency samples (vectorized)."""
        values = np.asarray(values_s, dtype=float).ravel()
        if values.size == 0:
            return
        if not np.all(np.isfinite(values)):
            raise ValueError("latency samples must be finite")
        self.count += int(values.size)
        self.sum_s += float(values.sum())
        self.min_s = min(self.min_s, float(values.min()))
        self.max_s = max(self.max_s, float(values.max()))
        clipped = np.maximum(values, self.lo_s)
        indices = np.clip(
            np.floor(
                (np.log(clipped) - self._log_lo) / self._log_growth
            ).astype(np.int64),
            0,
            self.num_bins - 1,
        )
        binned = np.bincount(indices, minlength=self.num_bins)
        self._counts += binned.astype(np.int64)

    # -- merge -------------------------------------------------------------
    def update(self, other: "LatencySketch") -> "LatencySketch":
        """Merge ``other`` into this sketch in place; returns ``self``.

        Merging is exact count addition, so it is associative and
        commutative: any merge tree over the same sketches reports
        identical statistics.
        """
        if not self.compatible(other):
            raise ValueError("cannot merge sketches with different geometry")
        self.count += other.count
        self.sum_s += other.sum_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)
        self._counts += other._counts
        return self

    def merged(self, other: "LatencySketch") -> "LatencySketch":
        """A new sketch holding both sample sets (non-destructive)."""
        return self.copy().update(other)

    def copy(self) -> "LatencySketch":
        clone = LatencySketch(self.lo_s, self.hi_s, self.rel_err)
        clone.count = self.count
        clone.sum_s = self.sum_s
        clone.min_s = self.min_s
        clone.max_s = self.max_s
        clone._counts = self._counts.copy()
        return clone

    # -- queries -----------------------------------------------------------
    @property
    def mean_s(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) in seconds; 0.0 when empty.

        Matches ``numpy.percentile``'s rank convention (linear
        interpolation over ranks) at bucket resolution; the returned
        value is the geometric bucket midpoint clamped to the exact
        observed [min, max], so single-sample and extreme queries are
        exact.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min_s
        if q == 100.0:
            return self.max_s
        # numpy's convention: rank (q/100)(n-1) linearly interpolates the
        # two straddling order statistics.  Each order statistic is read
        # as its bucket's geometric midpoint (within rel_err of the true
        # sample), so the interpolated result inherits the same bound.
        rank = (q / 100.0) * (self.count - 1)
        low_rank = math.floor(rank)
        cumulative = np.cumsum(self._counts)
        low = self._rank_value(cumulative, low_rank)
        if rank == low_rank:
            return low
        high = self._rank_value(cumulative, low_rank + 1)
        return low + (rank - low_rank) * (high - low)

    def _rank_value(self, cumulative: np.ndarray, rank: int) -> float:
        """The ``rank``-th (0-based) order statistic at bucket resolution."""
        index = int(np.searchsorted(cumulative, rank, side="right"))
        index = min(index, self.num_bins - 1)
        edges = self._bin_edges(np.array([index, index + 1]))
        midpoint = math.sqrt(edges[0] * edges[1])
        return min(max(midpoint, self.min_s), self.max_s)

    def percentiles(self, qs) -> list[float]:
        return [self.percentile(q) for q in qs]

    def cdf(self, value_s: float) -> float:
        """Fraction of samples <= ``value_s`` (SLO attainment); 0 if empty.

        Within the value's bucket the mass is interpolated on the log
        scale, so the estimate is monotone in ``value_s``.
        """
        if self.count == 0:
            return 0.0
        if value_s >= self.max_s:
            return 1.0
        if value_s < self.min_s:
            return 0.0
        log_v = math.log(max(value_s, self.lo_s))
        position = (log_v - self._log_lo) / self._log_growth
        index = min(max(int(math.floor(position)), 0), self.num_bins - 1)
        below = float(self._counts[:index].sum())
        fraction = min(max(position - index, 0.0), 1.0)
        partial = float(self._counts[index]) * fraction
        return min(1.0, (below + partial) / self.count)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload; sparse (only non-empty buckets)."""
        occupied = np.nonzero(self._counts)[0]
        return {
            "lo_s": self.lo_s,
            "hi_s": self.hi_s,
            "rel_err": self.rel_err,
            "count": int(self.count),
            "sum_s": self.sum_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s if self.count else None,
            "bins": {
                str(int(i)): int(self._counts[i]) for i in occupied
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencySketch":
        sketch = cls(
            lo_s=float(payload["lo_s"]),
            hi_s=float(payload["hi_s"]),
            rel_err=float(payload["rel_err"]),
        )
        sketch.count = int(payload["count"])
        sketch.sum_s = float(payload["sum_s"])
        if sketch.count:
            sketch.min_s = float(payload["min_s"])
            sketch.max_s = float(payload["max_s"])
        for raw_index, raw_count in payload["bins"].items():
            sketch._counts[int(raw_index)] = int(raw_count)
        return sketch

    # -- pickling (ndarray in __slots__ needs explicit state) --------------
    def __getstate__(self):
        return {
            "lo_s": self.lo_s, "hi_s": self.hi_s, "rel_err": self.rel_err,
            "count": self.count, "sum_s": self.sum_s,
            "min_s": self.min_s, "max_s": self.max_s,
            "counts": self._counts,
        }

    def __setstate__(self, state):
        self.__init__(state["lo_s"], state["hi_s"], state["rel_err"])
        self.count = state["count"]
        self.sum_s = state["sum_s"]
        self.min_s = state["min_s"]
        self.max_s = state["max_s"]
        self._counts = state["counts"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencySketch(count={self.count}, mean_s={self.mean_s:.6g},"
            f" bins={self.num_bins})"
        )
