"""Continuous batching: stage-boundary group forming, preemption, WFQ.

The static scheduler (``repro.serve.scheduler``) forms a batch once and
runs the whole layer chain; requests arriving mid-batch wait for the next
dispatch.  Production SNN serving — long-lived DVS event streams with
mixed urgency and per-tenant contracts — wants the opposite: the chip's
schedulable quantum is one compiled ``Stage``
(:func:`~repro.arch.engine.machine.stage_process`), and *between* stages
the scheduler re-decides what runs next.  That buys three mechanisms for
the price of one boundary:

**Join/leave.**  An execution group is re-formed at every stage boundary
from the requests positioned at the same ``(model, stage)``; new arrivals
enter service at the next boundary instead of waiting for the in-flight
batch to drain, finished requests leave while their peers continue.

**Preemption.**  With ``preempt`` on, a higher-priority request displaces
lower-priority in-flight work at a stage boundary.  The preempted request
checkpoints its completed-stage index (``StageEntry.completed``) and
resumes from exactly that stage later — no completed stage is ever
re-executed (property-tested).  Preemptions are counted per request and
fleet-wide, and surfaced through the obs layer (``serve.preemptions``
counter, ``serve.preempt`` spans).

**Weighted fair queuing.**  With tenants configured, the scheduler picks
the next tenant by minimum virtual service time (cumulative serial
stage-seconds served, divided by the tenant's weight) within the highest
ready priority tier — the classic WFQ rule at stage granularity.

Degenerate conformance: with a single tenant, one priority tier, and
``allow_join=False`` / ``preempt=False``, selection reduces exactly to
:func:`~repro.serve.scheduler.take_batch` order and groups stay pinned to
completion — the differential tests pin per-request latencies against
the static scheduler to float precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.engine.machine import LayerTiming
from .profiles import RequestProfile
from .scheduler import SchedulerConfig
from .workload import Request, TenantSpec

__all__ = ["ContinuousBatchScheduler", "StageEntry", "stage_serial_s"]


def stage_serial_s(timing: LayerTiming) -> float:
    """Uncontended makespan of one stage at batch 1 — the WFQ service unit
    (and the work-conservation measure: ``Σ stage_serial_s`` over executed
    stages is invariant under preemption and group re-forming)."""
    return max(timing.compute_s, timing.dram_s(1))


@dataclass(eq=False)
class StageEntry:
    """One admitted request's continuous-scheduling state.

    ``completed`` is the preemption checkpoint: the number of stages this
    request has finished.  A preempted entry re-enters the ready pool and
    resumes at stage ``completed``; ``executed`` records the stage indices
    actually run (each exactly once — the no-re-execution invariant the
    property suite checks).
    """

    request: Request
    total_stages: int
    order: int                       # admission sequence (FIFO tie-break)
    completed: int = 0
    cohort: int | None = None        # execution-group lineage
    started: bool = False            # first stage dispatched
    start_s: float | None = None     # first dispatch time
    finish_s: float | None = None
    preemptions: int = 0
    max_group: int = 0               # largest group this request ran in
    executed: list[int] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.completed >= self.total_stages


class ContinuousBatchScheduler:
    """Ready pool + stage-boundary selection for one chip.

    The owning :class:`~repro.serve.simulate.ChipServer` lane calls
    :meth:`select` at every stage boundary (handing back its previous
    group) and :meth:`stage_done` after executing the chosen stage; the
    scheduler owns all ordering decisions, the lane owns the engine
    processes.
    """

    def __init__(
        self,
        config: SchedulerConfig,
        profiles: dict[str, RequestProfile],
        tenants: tuple[TenantSpec, ...] = (),
    ):
        if not config.continuous:
            raise ValueError("ContinuousBatchScheduler needs mode='continuous'")
        self.config = config
        self.profiles = profiles
        self.weights = {t.name: t.weight for t in tenants}
        self.pool: list[StageEntry] = []
        self.service_s: dict[str, float] = {t.name: 0.0 for t in tenants}
        self.preemptions = 0
        self.joins = 0
        self._order = 0
        self._next_cohort = 0
        self._serial: dict[str, tuple[float, ...]] = {}

    # -- admission ---------------------------------------------------------
    def add(self, request: Request) -> StageEntry:
        entry = StageEntry(
            request=request,
            total_stages=len(self.profiles[request.model].timings),
            order=self._order,
        )
        self._order += 1
        self.pool.append(entry)
        return entry

    @property
    def queue_depth(self) -> int:
        """Admission-control depth: pooled requests not yet in service.

        Preempted (started) entries are in-flight work, not queue
        backlog — they don't count against a bounded pending queue."""
        return sum(1 for e in self.pool if not e.started)

    @property
    def empty(self) -> bool:
        return not self.pool

    # -- selection ---------------------------------------------------------
    def _serial_stages(self, model: str) -> tuple[float, ...]:
        cached = self._serial.get(model)
        if cached is None:
            cached = tuple(
                stage_serial_s(t) for t in self.profiles[model].timings
            )
            self._serial[model] = cached
        return cached

    def _entry_key(self, entry: StageEntry, carry: set):
        # Within a tier/tenant: continue in-flight work first (avoids
        # churn at equal priority), then the most-progressed entry (drain
        # WIP), then admission order (FIFO).
        return (0 if entry in carry else 1, -entry.completed, entry.order)

    def _pick_head(self, carry: set) -> StageEntry:
        candidates = self.pool
        if self.config.preempt or not carry:
            top = max(e.request.priority for e in candidates)
            candidates = [e for e in candidates if e.request.priority == top]
        else:
            # Preemption off: an in-flight group always continues; only
            # fresh dispatches (empty carry) see the full pool.
            candidates = [e for e in candidates if e in carry]
        tenants = {e.request.tenant for e in candidates}
        if len(tenants) > 1:
            # WFQ: least virtual service per weight wins the boundary.
            tenant = min(
                tenants,
                key=lambda t: (
                    self.service_s.get(t, 0.0) / self.weights.get(t, 1.0), t
                ),
            )
            candidates = [e for e in candidates if e.request.tenant == tenant]
        return min(candidates, key=lambda e: self._entry_key(e, carry))

    def select(
        self, prev: list[StageEntry]
    ) -> tuple[list[StageEntry], int, list[StageEntry], int]:
        """Re-form one lane's execution group at a stage boundary.

        ``prev`` is the lane's previous group (unfinished members return
        to the ready pool first, so the selection sees every runnable
        request).  Returns ``(group, stage, preempted, joined)``: the
        chosen group (empty when the pool is dry — the lane exits), the
        stage index to execute, the ``prev`` members displaced by strictly
        higher priority (their checkpoint is ``completed``), and how many
        members merged in from other in-flight cohorts.
        """
        carry = {e for e in prev if not e.done}
        for entry in carry:
            if entry not in self.pool:
                self.pool.append(entry)
        if not self.pool:
            return [], 0, [], 0
        head = self._pick_head(carry)
        stage = head.completed
        peers = self._peers(head, stage)
        group = [head] + peers[: self.config.max_batch - 1]

        preempted = [
            e for e in carry
            if e not in group and head.request.priority > e.request.priority
        ]
        for entry in preempted:
            entry.preemptions += 1
        self.preemptions += len(preempted)

        cohort = head.cohort
        if cohort is None:
            cohort = self._next_cohort
            self._next_cohort += 1
        joined = sum(
            1 for e in group[1:]
            if stage > 0 and e.cohort is not None and e.cohort != cohort
        )
        self.joins += joined
        for entry in group:
            entry.cohort = cohort
            entry.started = True
            self.pool.remove(entry)
        return group, stage, preempted, joined

    def _peers(self, head: StageEntry, stage: int) -> list[StageEntry]:
        if self.config.allow_join:
            peers = [
                e for e in self.pool
                if e is not head
                and e.request.model == head.request.model
                and e.completed == stage
            ]
        elif head.cohort is None:
            # Group formed once at stage 0 from never-started same-model
            # entries — take_batch semantics, pinned thereafter.
            peers = [
                e for e in self.pool
                if e is not head and e.cohort is None
                and e.request.model == head.request.model
            ]
        else:
            peers = [
                e for e in self.pool
                if e is not head and e.cohort == head.cohort
            ]
        peers.sort(key=lambda e: self._entry_key(e, set()))
        return peers

    # -- completion --------------------------------------------------------
    def stage_done(
        self, group: list[StageEntry], stage: int, now: float
    ) -> list[StageEntry]:
        """Record one executed stage for every group member; returns the
        members that just completed their last stage (they leave the
        group — their peers continue)."""
        size = len(group)
        for entry in group:
            if entry.completed != stage:  # pragma: no cover - invariant
                raise RuntimeError(
                    f"request {entry.request.index} executed stage {stage}"
                    f" at checkpoint {entry.completed}"
                )
            entry.executed.append(stage)
            entry.completed += 1
            entry.max_group = max(entry.max_group, size)
            serial = self._serial_stages(entry.request.model)[stage]
            tenant = entry.request.tenant
            self.service_s[tenant] = self.service_s.get(tenant, 0.0) + serial
        finished = [e for e in group if e.done]
        for entry in finished:
            entry.finish_s = now
        return finished
