"""Per-model request profiles: the engine task graph of one inference.

Simulating a request does not re-run the numpy core models — a
:class:`RequestProfile` is computed once per (model, bundle, seed)
configuration and replayed cheaply through the event engine for every
request, which is what makes thousand-request serving sweeps tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..arch import BishopAccelerator, BishopConfig
from ..arch.engine.machine import LayerTiming, layer_timings
from ..bundles import BundleSpec
from ..harness.synthetic import PROFILES, synthetic_trace
from ..model import model_config

__all__ = ["RequestProfile", "request_profile"]


@dataclass(frozen=True)
class RequestProfile:
    """Everything the serving simulator needs about one model's inference."""

    model: str
    timings: tuple[LayerTiming, ...]
    single_latency_s: float        # uncontended engine latency (oracle-equal)
    dynamic_pj: float              # per-request dynamic energy at batch 1

    def batch_dynamic_pj(self, batch: int) -> float:
        return sum(t.batch_dynamic_pj(batch) for t in self.timings)


def request_profile(
    model: str,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
    dense_fraction: float = 0.5,
) -> RequestProfile:
    """Build (and cache) the serving profile of one Table-2 model.

    Stratification uses a fixed dense fraction rather than the per-layer
    balanced-θ search: serving cares about steady-state task durations, and
    the fixed policy keeps profile construction fast enough to build mixes
    over the whole zoo.
    """
    # Normalize before the cache so positional and keyword call styles
    # share one entry (lru_cache keys them differently).
    return _request_profile(
        model, int(bs_t), int(bs_n), int(seed), float(dense_fraction)
    )


@lru_cache(maxsize=32)
def _request_profile(
    model: str, bs_t: int, bs_n: int, seed: int, dense_fraction: float
) -> RequestProfile:
    spec = BundleSpec(bs_t, bs_n)
    config = BishopConfig(bundle_spec=spec, stratify_dense_fraction=dense_fraction)
    accelerator = BishopAccelerator(config)
    trace = synthetic_trace(model_config(model), PROFILES[model], spec, seed=seed)
    report = accelerator.run_trace(trace, simulate_events=False)
    timings = layer_timings(report, config, accelerator.energy)
    return RequestProfile(
        model=model,
        timings=timings,
        single_latency_s=report.total_latency_s,
        dynamic_pj=sum(t.dynamic_pj for t in timings),
    )
