"""Per-model request profiles: the compiled program of one inference.

Simulating a request does not re-run the numpy core models — a
:class:`RequestProfile` wraps the compiler's
:class:`~repro.compiler.ir.Program` for one (model, chip configuration,
pass configuration, seed) and is replayed cheaply through the event engine
for every request, which is what makes thousand-request serving sweeps
tractable.  Compilation itself is content-addressed
(``repro.compiler.cache``): repeated profile builds — across requests,
chips of the same kind, and even across *worker processes* — reuse the
compiled program instead of re-simulating.

Profiles are chip-aware: passing an explicit :class:`BishopConfig` builds
the task graph for that chip's core provisioning and clock, which is how
the cluster layer gives differently-configured chips (sparse-core-heavy,
dense-core-heavy) different per-model service times.  The ``passes`` knob
selects the compiler passes (``"all"`` / ``"none"`` /
``"packing+stratify+schedule"`` …); with the scheduling pass on, requests
replay under the depth-1 weight-prefetch schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..arch import BishopConfig
from ..arch.engine.machine import LayerTiming
from ..bundles import BundleSpec
from ..compiler import PassConfig, compile_model

__all__ = ["RequestProfile", "profile_config", "request_profile"]


@dataclass(frozen=True)
class RequestProfile:
    """Everything the serving simulator needs about one model's inference."""

    model: str
    timings: tuple[LayerTiming, ...]
    single_latency_s: float        # uncontended engine latency (oracle-equal)
    dynamic_pj: float              # per-request dynamic energy at batch 1
    scheduled: bool = False        # replay under the prefetch schedule

    @property
    def schedule(self) -> "FastSchedule":
        """The program's precomputed per-layer schedule (memoized per
        timing tuple): batch energy and core-share queries answer from
        columnar sums instead of re-walking the layer chain per request."""
        from ..arch.engine.fastpath import schedule_for

        return schedule_for(self.timings)

    def batch_dynamic_pj(self, batch: int) -> float:
        return self.schedule.batch_dynamic_pj(batch)

    @property
    def sparse_core_share(self) -> float:
        """Fraction of core-seconds this model spends on the sparse core —
        the trace-sparsity signal the affinity router keys on."""
        return self.schedule.sparse_core_share


def profile_config(
    bs_t: int = 2, bs_n: int = 4, dense_fraction: float = 0.5
) -> BishopConfig:
    """The default serving-chip configuration for a bundle shape.

    Stratification uses a fixed dense fraction rather than the per-layer
    balanced-θ search: serving cares about steady-state task durations, and
    the fixed policy keeps profile construction fast enough to build mixes
    over the whole zoo.
    """
    return BishopConfig(
        bundle_spec=BundleSpec(int(bs_t), int(bs_n)),
        stratify_dense_fraction=float(dense_fraction),
    )


def request_profile(
    model: str,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
    dense_fraction: float = 0.5,
    config: BishopConfig | None = None,
    passes: "PassConfig | str | None" = None,
) -> RequestProfile:
    """Build (and cache) the serving profile of one Table-2 model.

    An explicit ``config`` (a specific chip's provisioning) takes
    precedence over the ``bs_t``/``bs_n``/``dense_fraction`` shorthand;
    the synthetic trace is still seeded by ``seed`` either way.  The
    profile is derived from the compiled program, so two chips with the
    same configuration share one compilation.
    """
    if config is None:
        config = profile_config(bs_t, bs_n, dense_fraction)
    # Normalized before the cache so positional and keyword call styles
    # share one entry (lru_cache keys them differently).
    return _request_profile(model, config, int(seed), PassConfig.parse(passes))


@lru_cache(maxsize=128)
def _request_profile(
    model: str, config: BishopConfig, seed: int, passes: PassConfig
) -> RequestProfile:
    program = compile_model(model, config, seed=seed, passes=passes)
    timings = program.timings()
    return RequestProfile(
        model=model,
        timings=timings,
        single_latency_s=program.request_latency_s,
        dynamic_pj=sum(t.dynamic_pj for t in timings),
        scheduled=program.scheduled,
    )
