"""Multi-request serving simulation on the discrete-event engine.

Three cooperating processes on one :class:`~repro.arch.engine.Engine`:

* an **arrival** process releases requests into the pending queue at their
  stream timestamps;
* a **scheduler** process forms batches (``repro.serve.scheduler``) and
  dispatches them whenever an inference slot is free;
* each dispatched batch runs the model's
  :func:`~repro.arch.engine.machine.inference_process`, contending with
  every other in-flight batch for the dense/sparse/attention cores, the
  spike generator, and the DRAM channel.

The output is a :class:`~repro.serve.report.ServingReport`: latency
percentiles, throughput, queue waits, per-resource utilization, and chip
energy (dynamic per work done + static over the horizon).
"""

from __future__ import annotations

from collections import deque

from ..arch.engine.kernel import Engine, Hold, WaitFor
from ..arch.engine.machine import BishopMachine, inference_process
from ..arch.engine.timeline import EngineRun, TimelineEntry
from ..arch.energy import EnergyModel
from .profiles import RequestProfile, request_profile
from .report import ServedRequest, ServingReport, build_report
from .scheduler import SchedulerConfig, take_batch
from .workload import Request

__all__ = ["simulate_serving"]


class _ServingState:
    """Mutable counters shared by the simulation's processes."""

    def __init__(self):
        self.inflight = 0
        self.dispatched = 0
        self.dynamic_energy_pj = 0.0
        self.served: list[ServedRequest] = []


def simulate_serving(
    requests: list[Request],
    scheduler: SchedulerConfig | None = None,
    profiles: dict[str, RequestProfile] | None = None,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
    energy: EnergyModel | None = None,
    record_timeline: bool = False,
) -> ServingReport:
    """Serve an arrival stream on one Bishop chip; returns the report.

    ``profiles`` may be passed explicitly (e.g. to serve custom task
    graphs) and then takes precedence over ``bs_t``/``bs_n``/``seed`` for
    the models it covers; by default each model's profile is built (and
    cached) from its Table-2 synthetic trace.
    """
    if not requests:
        raise ValueError("need at least one request")
    scheduler = scheduler or SchedulerConfig()
    energy = energy or EnergyModel()
    stream = sorted(requests, key=lambda r: (r.arrival_s, r.index))
    profiles = dict(profiles) if profiles else {}  # never mutate the caller's
    for model in {r.model for r in stream}:
        if model not in profiles:
            profiles[model] = request_profile(model, bs_t=bs_t, bs_n=bs_n, seed=seed)

    engine = Engine()
    machine = BishopMachine(engine)
    timeline: list[TimelineEntry] | None = [] if record_timeline else None
    pending: deque[Request] = deque()
    work = engine.gate()
    state = _ServingState()
    total = len(stream)

    def arrivals():
        for request in stream:
            gap = request.arrival_s - engine.now
            if gap > 0:
                yield Hold(gap)
            pending.append(request)
            work.signal()

    def run_batch(batch: list[Request]):
        profile = profiles[batch[0].model]
        start = engine.now
        label = f"b{batch[0].index}x{len(batch)}"
        yield from inference_process(
            engine, machine, profile.timings, label, len(batch), timeline
        )
        finish = engine.now
        for request in batch:
            state.served.append(ServedRequest(
                index=request.index,
                model=request.model,
                arrival_s=request.arrival_s,
                start_s=start,
                finish_s=finish,
                batch_size=len(batch),
            ))
        state.dynamic_energy_pj += profile.batch_dynamic_pj(len(batch))
        state.inflight -= 1
        work.signal()

    def schedule():
        while state.dispatched < total:
            if not pending or state.inflight >= scheduler.max_inflight:
                yield WaitFor(work)
                continue
            batch = take_batch(pending, scheduler.max_batch)
            state.dispatched += len(batch)
            state.inflight += 1
            engine.spawn(run_batch(batch), name=f"batch@{batch[0].index}")

    engine.spawn(arrivals(), name="arrivals")
    engine.spawn(schedule(), name="scheduler")
    engine.run()
    if len(state.served) != total:  # pragma: no cover - engine invariant
        raise RuntimeError(
            f"serving simulation stalled: {len(state.served)}/{total} completed"
        )

    run = EngineRun.capture(engine, timeline=timeline)
    run.energy_pj = state.dynamic_energy_pj + energy.static_pj(run.makespan_s)
    # Zero-span streams (single request, simultaneous burst) have no
    # meaningful rate; report 0 rather than infinity so artifacts stay
    # strict-JSON parseable.
    span = stream[-1].arrival_s - stream[0].arrival_s
    offered = (total - 1) / span if span > 0 else 0.0
    return build_report(
        state.served,
        run,
        offered_rps=offered,
        dynamic_energy_pj=state.dynamic_energy_pj,
        static_energy_pj=energy.static_pj(run.makespan_s),
        policy=scheduler.policy,
        max_batch=scheduler.max_batch,
        max_inflight=scheduler.max_inflight,
    )
