"""Multi-request serving simulation on the discrete-event engine.

The serving loop of one chip is packaged as a :class:`ChipServer`: a
bounded pending queue, a **scheduler** process that forms batches
(``repro.serve.scheduler``) and dispatches them whenever an inference slot
is free, and per-batch processes running the model's
:func:`~repro.arch.engine.machine.inference_process`, contending with
every other in-flight batch for the dense/sparse/attention cores, the
spike generator, and the DRAM channel.

:func:`simulate_serving` wires ONE chip server to an arrival stream — the
N=1 special case of the cluster simulation (``repro.cluster``), which
routes the same streams across many chip servers sharing one engine
clock.  The output is a :class:`~repro.serve.report.ServingReport`:
latency percentiles, throughput, queue waits, per-resource utilization,
and chip energy (dynamic per work done + static over the horizon).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from .. import obs
from ..arch.engine.kernel import Engine, Hold, WaitFor
from ..arch.engine.machine import (
    BishopMachine,
    inference_process,
    scheduled_inference_process,
)
from ..arch.engine.timeline import EngineRun, TimelineEntry
from ..arch.energy import EnergyModel
from .profiles import RequestProfile, request_profile
from .report import ServedRequest, ServingReport, build_report
from .scheduler import SchedulerConfig, take_batch
from .workload import Request

__all__ = ["ChipServer", "simulate_serving"]


class ChipServer:
    """One chip's serving loop: pending queue, scheduler, dispatch.

    The server owns the mutable serving state of a single
    :class:`~repro.arch.engine.machine.BishopMachine` — the pending queue
    (optionally bounded, for admission control), the in-flight count, the
    per-request completion records, and the chip's dynamic energy.  The
    cluster router talks to it through :meth:`enqueue` /
    :meth:`has_queue_capacity` / :attr:`outstanding_s`; the single-chip
    simulator feeds it directly from the arrival stream.
    """

    def __init__(
        self,
        engine: Engine,
        machine: BishopMachine,
        profiles: dict[str, RequestProfile],
        scheduler: SchedulerConfig | None = None,
        *,
        name: str | None = None,
        kind: str = "standard",
        queue_capacity: int | None = None,
        timeline: list[TimelineEntry] | None = None,
        on_complete: Callable[[list[Request]], None] | None = None,
        recorder: "object | None" = None,
    ):
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None: unbounded)")
        self.engine = engine
        self.machine = machine
        self.profiles = profiles
        self.scheduler = scheduler or SchedulerConfig()
        self.name = name
        self.kind = kind
        self.queue_capacity = queue_capacity
        self.timeline = timeline
        self.on_complete = on_complete
        # A recorder replaces the per-request `served` list with streaming
        # observation (``recorder.observe(request, start_s, finish_s,
        # batch_size, chip)``) — how sharded fleet runs keep memory
        # bounded.  The summary counters below are maintained either way.
        self.recorder = recorder

        self.pending: deque[Request] = deque()
        self.work = engine.gate()
        self.inflight = 0
        self.dispatched = 0
        self.served: list[ServedRequest] = []
        self.served_count = 0
        self.batch_size_weighted = 0.0   # Σ batch² (per-request mean weighting)
        self.last_finish_s = 0.0
        self.dynamic_energy_pj = 0.0
        self.outstanding_s = 0.0     # estimated queued + in-flight work
        self.accepting = True        # routing eligibility (autoscaler drain)
        self.closed = False          # no further arrivals will ever come
        self.started_s = engine.now  # chips added mid-run start later
        self.drained_s: float | None = None
        self._process = engine.spawn(
            self._schedule_loop(), name=f"{name or 'chip'}:scheduler"
        )

    # -- router-facing interface ------------------------------------------
    def hosts(self, model: str) -> bool:
        return model in self.profiles

    def has_queue_capacity(self) -> bool:
        return self.queue_capacity is None or len(self.pending) < self.queue_capacity

    @property
    def queue_depth(self) -> int:
        return len(self.pending)

    def service_estimate_s(self, model: str) -> float:
        """Uncontended single-request latency of ``model`` on this chip."""
        return self.profiles[model].single_latency_s

    def enqueue(self, request: Request) -> None:
        if self.closed:
            raise RuntimeError(f"chip {self.name!r} is closed")
        self.pending.append(request)
        obs.inc("serve.admitted")
        obs.set_gauge("serve.queue_depth", len(self.pending))
        self.outstanding_s += self.service_estimate_s(request.model)
        self.work.signal()

    def close(self) -> None:
        """No more arrivals: drain the queue, then let the scheduler exit."""
        self.closed = True
        self.work.signal()

    @property
    def idle(self) -> bool:
        return not self.pending and self.inflight == 0

    @property
    def mean_batch_size(self) -> float:
        """Per-request mean batch size (each request weighted equally,
        matching the ServedRequest-list definition)."""
        if not self.served_count:
            return 0.0
        return self.batch_size_weighted / self.served_count

    def active_span_s(self, horizon_s: float) -> float:
        """Seconds this chip was powered: creation until the run's horizon,
        or until it finished draining if the autoscaler removed it (an idle
        but accepting chip still burns static power)."""
        end = horizon_s
        if not self.accepting and self.drained_s is not None:
            end = self.drained_s
        return max(0.0, end - self.started_s)

    # -- serving processes -------------------------------------------------
    def _schedule_loop(self):
        while True:
            if self.pending and self.inflight < self.scheduler.max_inflight:
                batch = take_batch(self.pending, self.scheduler.max_batch)
                self.dispatched += len(batch)
                self.inflight += 1
                label = self._batch_label(batch)
                self.engine.spawn(self._run_batch(batch, label), name=label)
                continue
            if self.closed and not self.pending:
                self._maybe_mark_drained()
                return
            yield WaitFor(self.work)

    def _maybe_mark_drained(self) -> None:
        # Fully idle after close: the scheduler may exit while batches are
        # still in flight, so the last _run_batch also checks.
        if self.closed and self.idle and self.drained_s is None:
            self.drained_s = self.engine.now

    def _batch_label(self, batch: list[Request]) -> str:
        label = f"b{batch[0].index}x{len(batch)}"
        return f"{self.name}/{label}" if self.name else label

    def _run_batch(self, batch: list[Request], label: str):
        profile = self.profiles[batch[0].model]
        start = self.engine.now
        # Profiles compiled with the scheduling pass replay under the
        # depth-1 weight-prefetch schedule; others layer-serially.
        process = (
            scheduled_inference_process
            if getattr(profile, "scheduled", False)
            else inference_process
        )
        yield from process(
            self.engine, self.machine, profile.timings, label, len(batch),
            self.timeline,
        )
        finish = self.engine.now
        size = len(batch)
        obs.inc("serve.batches")
        obs.observe("serve.batch_size", size)
        self.served_count += size
        self.batch_size_weighted += float(size) * size
        self.last_finish_s = max(self.last_finish_s, finish)
        for request in batch:
            if self.recorder is None:
                self.served.append(ServedRequest(
                    index=request.index,
                    model=request.model,
                    arrival_s=request.arrival_s,
                    start_s=start,
                    finish_s=finish,
                    batch_size=size,
                    chip=self.name or "",
                ))
            else:
                self.recorder.observe(
                    request, start, finish, size, self.name or ""
                )
            self.outstanding_s -= self.service_estimate_s(request.model)
        self.dynamic_energy_pj += profile.batch_dynamic_pj(len(batch))
        self.inflight -= 1
        self._maybe_mark_drained()
        self.work.signal()
        if self.on_complete is not None:
            self.on_complete(batch)


def simulate_serving(
    requests: list[Request],
    scheduler: SchedulerConfig | None = None,
    profiles: dict[str, RequestProfile] | None = None,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
    energy: EnergyModel | None = None,
    record_timeline: bool = False,
    passes: str | None = None,
) -> ServingReport:
    """Serve an arrival stream on one Bishop chip; returns the report.

    ``profiles`` may be passed explicitly (e.g. to serve custom task
    graphs) and then takes precedence over ``bs_t``/``bs_n``/``seed`` for
    the models it covers; by default each model's profile is compiled (and
    program-cached) from its Table-2 synthetic trace, with ``passes``
    selecting the compiler passes.  An empty stream yields an empty
    (all-zero) report rather than raising.
    """
    scheduler = scheduler or SchedulerConfig()
    energy = energy or EnergyModel()
    stream = sorted(requests, key=lambda r: (r.arrival_s, r.index))
    profiles = dict(profiles) if profiles else {}  # never mutate the caller's
    with obs.span(
        "serve.simulate", cat="serve",
        requests=len(stream), policy=scheduler.policy,
    ):
        for model in {r.model for r in stream}:
            if model not in profiles:
                profiles[model] = request_profile(
                    model, bs_t=bs_t, bs_n=bs_n, seed=seed, passes=passes
                )

        engine = Engine()
        machine = BishopMachine(engine)
        timeline: list[TimelineEntry] | None = [] if record_timeline else None
        chip = ChipServer(engine, machine, profiles, scheduler, timeline=timeline)
        total = len(stream)

        def arrivals():
            for request in stream:
                gap = request.arrival_s - engine.now
                if gap > 0:
                    yield Hold(gap)
                chip.enqueue(request)
            chip.close()

        engine.spawn(arrivals(), name="arrivals")
        engine.run()
    if len(chip.served) != total:  # pragma: no cover - engine invariant
        raise RuntimeError(
            f"serving simulation stalled: {len(chip.served)}/{total} completed"
        )

    run = EngineRun.capture(engine, timeline=timeline)
    run.energy_pj = chip.dynamic_energy_pj + energy.static_pj(run.makespan_s)
    # Zero-span streams (empty, single request, simultaneous burst) have no
    # meaningful rate; report 0 rather than infinity so artifacts stay
    # strict-JSON parseable.
    span = stream[-1].arrival_s - stream[0].arrival_s if stream else 0.0
    offered = (total - 1) / span if span > 0 else 0.0
    return build_report(
        chip.served,
        run,
        offered_rps=offered,
        dynamic_energy_pj=chip.dynamic_energy_pj,
        static_energy_pj=energy.static_pj(run.makespan_s),
        policy=scheduler.policy,
        max_batch=scheduler.max_batch,
        max_inflight=scheduler.max_inflight,
    )
