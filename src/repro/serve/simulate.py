"""Multi-request serving simulation on the discrete-event engine.

The serving loop of one chip is packaged as a :class:`ChipServer`: a
bounded pending queue, a **scheduler** process that forms batches
(``repro.serve.scheduler``) and dispatches them whenever an inference slot
is free, and per-batch processes running the model's
:func:`~repro.arch.engine.machine.inference_process`, contending with
every other in-flight batch for the dense/sparse/attention cores, the
spike generator, and the DRAM channel.

:func:`simulate_serving` wires ONE chip server to an arrival stream — the
N=1 special case of the cluster simulation (``repro.cluster``), which
routes the same streams across many chip servers sharing one engine
clock.  The output is a :class:`~repro.serve.report.ServingReport`:
latency percentiles, throughput, queue waits, per-resource utilization,
and chip energy (dynamic per work done + static over the horizon).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from .. import obs
from ..arch.engine.kernel import Engine, Hold, WaitFor
from ..arch.engine.machine import (
    BishopMachine,
    inference_process,
    scheduled_inference_process,
    stage_process,
)
from ..arch.engine.timeline import EngineRun, TimelineEntry
from ..arch.energy import EnergyModel
from .continuous import ContinuousBatchScheduler, StageEntry
from .profiles import RequestProfile, request_profile
from .report import ServedRequest, ServingReport, build_report
from .scheduler import SchedulerConfig, take_batch
from .workload import Request, TenantSpec

__all__ = ["ChipServer", "simulate_serving"]


class ChipServer:
    """One chip's serving loop: pending queue, scheduler, dispatch.

    The server owns the mutable serving state of a single
    :class:`~repro.arch.engine.machine.BishopMachine` — the pending queue
    (optionally bounded, for admission control), the in-flight count, the
    per-request completion records, and the chip's dynamic energy.  The
    cluster router talks to it through :meth:`enqueue` /
    :meth:`has_queue_capacity` / :attr:`outstanding_s`; the single-chip
    simulator feeds it directly from the arrival stream.
    """

    def __init__(
        self,
        engine: Engine,
        machine: BishopMachine,
        profiles: dict[str, RequestProfile],
        scheduler: SchedulerConfig | None = None,
        *,
        name: str | None = None,
        kind: str = "standard",
        queue_capacity: int | None = None,
        timeline: list[TimelineEntry] | None = None,
        on_complete: Callable[[list[Request]], None] | None = None,
        recorder: "object | None" = None,
        tenants: tuple[TenantSpec, ...] = (),
    ):
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None: unbounded)")
        self.engine = engine
        self.machine = machine
        self.profiles = profiles
        self.scheduler = scheduler or SchedulerConfig()
        self.name = name
        self.kind = kind
        self.queue_capacity = queue_capacity
        self.timeline = timeline
        self.on_complete = on_complete
        # A recorder replaces the per-request `served` list with streaming
        # observation (``recorder.observe(request, start_s, finish_s,
        # batch_size, chip)``) — how sharded fleet runs keep memory
        # bounded.  The summary counters below are maintained either way.
        self.recorder = recorder
        self.tenants = tuple(tenants)

        self.pending: deque[Request] = deque()
        # Continuous mode replaces the pending deque with a stage-level
        # ready pool: groups re-form at every compiled-Stage boundary.
        self.continuous: ContinuousBatchScheduler | None = (
            ContinuousBatchScheduler(self.scheduler, profiles, self.tenants)
            if self.scheduler.continuous
            else None
        )
        self.work = engine.gate()
        self.inflight = 0
        self.dispatched = 0
        self.served: list[ServedRequest] = []
        self.served_count = 0
        self.batch_size_weighted = 0.0   # Σ batch² (per-request mean weighting)
        self.last_finish_s = 0.0
        self.dynamic_energy_pj = 0.0
        self.preemptions = 0         # continuous: priority displacements
        self.continuous_joins = 0    # continuous: merges into in-flight cohorts
        self._static_service_s: dict[str, float] = {
            t.name: 0.0 for t in self.tenants
        }
        self.outstanding_s = 0.0     # estimated queued + in-flight work
        self.accepting = True        # routing eligibility (autoscaler drain)
        self.closed = False          # no further arrivals will ever come
        self.started_s = engine.now  # chips added mid-run start later
        self.drained_s: float | None = None
        self._lanes = 0
        self._process = engine.spawn(
            self._schedule_loop(), name=f"{name or 'chip'}:scheduler"
        )

    # -- router-facing interface ------------------------------------------
    def hosts(self, model: str) -> bool:
        return model in self.profiles

    def has_queue_capacity(self) -> bool:
        return self.queue_capacity is None or self.queue_depth < self.queue_capacity

    @property
    def queue_depth(self) -> int:
        if self.continuous is not None:
            return self.continuous.queue_depth
        return len(self.pending)

    @property
    def tenant_service_s(self) -> dict[str, float]:
        """Per-tenant service seconds delivered by this chip (serial
        stage-seconds executed in continuous mode; uncontended request
        seconds completed in static mode) — the WFQ fairness measure."""
        if self.continuous is not None:
            return dict(self.continuous.service_s)
        return dict(self._static_service_s)

    def service_estimate_s(self, model: str) -> float:
        """Uncontended single-request latency of ``model`` on this chip."""
        return self.profiles[model].single_latency_s

    def enqueue(self, request: Request) -> None:
        if self.closed:
            raise RuntimeError(f"chip {self.name!r} is closed")
        if self.continuous is not None:
            self.continuous.add(request)
        else:
            self.pending.append(request)
        obs.inc("serve.admitted")
        obs.set_gauge("serve.queue_depth", self.queue_depth)
        self.outstanding_s += self.service_estimate_s(request.model)
        self.work.signal()

    def close(self) -> None:
        """No more arrivals: drain the queue, then let the scheduler exit."""
        self.closed = True
        self.work.signal()

    @property
    def idle(self) -> bool:
        if self.continuous is not None:
            return self.continuous.empty and self.inflight == 0
        return not self.pending and self.inflight == 0

    @property
    def mean_batch_size(self) -> float:
        """Per-request mean batch size (each request weighted equally,
        matching the ServedRequest-list definition)."""
        if not self.served_count:
            return 0.0
        return self.batch_size_weighted / self.served_count

    def active_span_s(self, horizon_s: float) -> float:
        """Seconds this chip was powered: creation until the run's horizon,
        or until it finished draining if the autoscaler removed it (an idle
        but accepting chip still burns static power)."""
        end = horizon_s
        if not self.accepting and self.drained_s is not None:
            end = self.drained_s
        return max(0.0, end - self.started_s)

    # -- serving processes -------------------------------------------------
    def _schedule_loop(self):
        if self.continuous is not None:
            yield from self._continuous_loop()
            return
        while True:
            if self.pending and self.inflight < self.scheduler.max_inflight:
                batch = take_batch(self.pending, self.scheduler.max_batch)
                self.dispatched += len(batch)
                self.inflight += 1
                label = self._batch_label(batch)
                self.engine.spawn(self._run_batch(batch, label), name=label)
                continue
            if self.closed and not self.pending:
                self._maybe_mark_drained()
                return
            yield WaitFor(self.work)

    def _continuous_loop(self):
        # Lanes are the chip's inference slots: each runs one execution
        # group at a time, re-consulting the continuous scheduler at every
        # stage boundary; a lane exits when the ready pool is dry and is
        # respawned on the next arrival.
        while True:
            if (
                not self.continuous.empty
                and self.inflight < self.scheduler.max_inflight
            ):
                self.inflight += 1
                lane = self._lanes
                self._lanes += 1
                name = f"{self.name or 'chip'}:lane{lane}"
                self.engine.spawn(self._run_lane(), name=name)
                continue
            if self.closed and self.continuous.empty:
                self._maybe_mark_drained()
                return
            yield WaitFor(self.work)

    def _maybe_mark_drained(self) -> None:
        # Fully idle after close: the scheduler may exit while batches are
        # still in flight, so the last _run_batch also checks.
        if self.closed and self.idle and self.drained_s is None:
            self.drained_s = self.engine.now

    def _batch_label(self, batch: list[Request]) -> str:
        label = f"b{batch[0].index}x{len(batch)}"
        return f"{self.name}/{label}" if self.name else label

    def _run_batch(self, batch: list[Request], label: str):
        profile = self.profiles[batch[0].model]
        start = self.engine.now
        # Profiles compiled with the scheduling pass replay under the
        # depth-1 weight-prefetch schedule; others layer-serially.
        process = (
            scheduled_inference_process
            if getattr(profile, "scheduled", False)
            else inference_process
        )
        yield from process(
            self.engine, self.machine, profile.timings, label, len(batch),
            self.timeline,
        )
        finish = self.engine.now
        size = len(batch)
        obs.inc("serve.batches")
        obs.observe("serve.batch_size", size)
        self.served_count += size
        self.batch_size_weighted += float(size) * size
        self.last_finish_s = max(self.last_finish_s, finish)
        for request in batch:
            if self.recorder is None:
                self.served.append(ServedRequest(
                    index=request.index,
                    model=request.model,
                    arrival_s=request.arrival_s,
                    start_s=start,
                    finish_s=finish,
                    batch_size=size,
                    chip=self.name or "",
                    tenant=request.tenant,
                    priority=request.priority,
                ))
            else:
                self.recorder.observe(
                    request, start, finish, size, self.name or ""
                )
            self.outstanding_s -= self.service_estimate_s(request.model)
        for request in batch:
            self._static_service_s[request.tenant] = (
                self._static_service_s.get(request.tenant, 0.0)
                + profile.single_latency_s
            )
        self.dynamic_energy_pj += profile.batch_dynamic_pj(len(batch))
        self.inflight -= 1
        self._maybe_mark_drained()
        self.work.signal()
        if self.on_complete is not None:
            self.on_complete(batch)

    # -- continuous-batching lane ------------------------------------------
    def _stage_label(self, entry: StageEntry, stage: int, size: int) -> str:
        request = entry.request
        timing = self.profiles[request.model].timings[stage]
        label = f"c{entry.cohort}x{size}/L{stage}.{timing.kind}"
        return f"{self.name}/{label}" if self.name else label

    def _run_lane(self):
        """One inference slot under continuous batching.

        The lane asks the scheduler for an execution group at every stage
        boundary (handing back its previous group, so joins, leaves, WFQ
        switches, and preemptions all happen here), executes exactly one
        compiled stage for the whole group, then repeats; it exits when
        the ready pool is dry.
        """
        sched = self.continuous
        group: list[StageEntry] = []
        while True:
            group, stage, preempted, joined = sched.select(group)
            for entry in preempted:
                self.preemptions += 1
                obs.inc("serve.preemptions")
                with obs.span(
                    "serve.preempt", cat="serve",
                    request=entry.request.index,
                    priority=entry.request.priority,
                    resume_stage=entry.completed,
                    chip=self.name or "",
                ):
                    pass
            if joined:
                self.continuous_joins += joined
                obs.inc("serve.continuous_joins")
            if not group:
                break
            head = group[0]
            profile = self.profiles[head.request.model]
            size = len(group)
            for entry in group:
                if entry.start_s is None:
                    entry.start_s = self.engine.now
                    self.dispatched += 1
            timing = profile.timings[stage]
            label = self._stage_label(head, stage, size)
            obs.inc("serve.stage_groups")
            yield from stage_process(
                self.engine, self.machine, timing, label, size, self.timeline
            )
            self.dynamic_energy_pj += timing.batch_dynamic_pj(size)
            finished = sched.stage_done(group, stage, self.engine.now)
            if finished:
                self._finish_entries(finished)
                group = [e for e in group if not e.done]
        self.inflight -= 1
        self._maybe_mark_drained()
        self.work.signal()

    def _finish_entries(self, finished: list[StageEntry]) -> None:
        now = self.engine.now
        self.last_finish_s = max(self.last_finish_s, now)
        completed: list[Request] = []
        for entry in finished:
            request = entry.request
            size = entry.max_group
            self.served_count += 1
            self.batch_size_weighted += float(size)
            if self.recorder is None:
                self.served.append(ServedRequest(
                    index=request.index,
                    model=request.model,
                    arrival_s=request.arrival_s,
                    start_s=entry.start_s,
                    finish_s=now,
                    batch_size=size,
                    chip=self.name or "",
                    tenant=request.tenant,
                    priority=request.priority,
                    preemptions=entry.preemptions,
                ))
            else:
                self.recorder.observe(
                    request, entry.start_s, now, size, self.name or ""
                )
            self.outstanding_s -= self.service_estimate_s(request.model)
            completed.append(request)
        if self.on_complete is not None:
            self.on_complete(completed)


def simulate_serving(
    requests: list[Request],
    scheduler: SchedulerConfig | None = None,
    profiles: dict[str, RequestProfile] | None = None,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
    energy: EnergyModel | None = None,
    record_timeline: bool = False,
    passes: str | None = None,
    tenants: tuple[TenantSpec, ...] = (),
) -> ServingReport:
    """Serve an arrival stream on one Bishop chip; returns the report.

    ``profiles`` may be passed explicitly (e.g. to serve custom task
    graphs) and then takes precedence over ``bs_t``/``bs_n``/``seed`` for
    the models it covers; by default each model's profile is compiled (and
    program-cached) from its Table-2 synthetic trace, with ``passes``
    selecting the compiler passes.  An empty stream yields an empty
    (all-zero) report rather than raising.
    """
    scheduler = scheduler or SchedulerConfig()
    energy = energy or EnergyModel()
    stream = sorted(requests, key=lambda r: (r.arrival_s, r.index))
    profiles = dict(profiles) if profiles else {}  # never mutate the caller's
    with obs.span(
        "serve.simulate", cat="serve",
        requests=len(stream), policy=scheduler.policy,
    ):
        for model in {r.model for r in stream}:
            if model not in profiles:
                profiles[model] = request_profile(
                    model, bs_t=bs_t, bs_n=bs_n, seed=seed, passes=passes
                )

        engine = Engine()
        machine = BishopMachine(engine)
        timeline: list[TimelineEntry] | None = [] if record_timeline else None
        chip = ChipServer(
            engine, machine, profiles, scheduler,
            timeline=timeline, tenants=tenants,
        )
        total = len(stream)

        def arrivals():
            for request in stream:
                gap = request.arrival_s - engine.now
                if gap > 0:
                    yield Hold(gap)
                chip.enqueue(request)
            chip.close()

        engine.spawn(arrivals(), name="arrivals")
        engine.run()
    if len(chip.served) != total:  # pragma: no cover - engine invariant
        raise RuntimeError(
            f"serving simulation stalled: {len(chip.served)}/{total} completed"
        )

    run = EngineRun.capture(engine, timeline=timeline)
    run.energy_pj = chip.dynamic_energy_pj + energy.static_pj(run.makespan_s)
    # Zero-span streams (empty, single request, simultaneous burst) have no
    # meaningful rate; report 0 rather than infinity so artifacts stay
    # strict-JSON parseable.
    span = stream[-1].arrival_s - stream[0].arrival_s if stream else 0.0
    offered = (total - 1) / span if span > 0 else 0.0
    return build_report(
        chip.served,
        run,
        offered_rps=offered,
        dynamic_energy_pj=chip.dynamic_energy_pj,
        static_energy_pj=energy.static_pj(run.makespan_s),
        policy=scheduler.policy,
        max_batch=scheduler.max_batch,
        max_inflight=scheduler.max_inflight,
        mode=scheduler.mode,
        preemptions=chip.preemptions,
        continuous_joins=chip.continuous_joins,
        tenant_service_s=chip.tenant_service_s,
    )
