"""Multi-request serving simulation on top of the event engine.

``workload``
    Poisson / bursty arrival streams over Table-2 model mixes.
``profiles``
    Cached per-model engine task graphs (one analytic run per model).
``scheduler``
    FIFO / same-model batching dispatch policies.
``simulate``
    The serving loop: arrivals → scheduler → contended inference.
``report``
    Latency percentiles, throughput, utilization, chip energy.

Registered experiments: ``serve_latency_cdf`` and ``serve_batch_sweep``
(see ``repro.harness.experiments``); docs/ARCHITECTURE.md describes the
event model underneath.
"""

from .continuous import ContinuousBatchScheduler, StageEntry, stage_serial_s
from .profiles import RequestProfile, profile_config, request_profile
from .report import LatencyStats, ServedRequest, ServingReport, latency_stats
from .scheduler import SCHEDULER_MODES, SchedulerConfig, take_batch
from .simulate import ChipServer, simulate_serving
from .sketch import LatencySketch
from .workload import (
    Request,
    TenantSpec,
    assign_priorities,
    assign_tenants,
    bursty_arrivals,
    diurnal_arrivals,
    dvs_stream_arrivals,
    flash_crowd_arrivals,
    parse_model_mix,
    parse_priority_mix,
    parse_regions,
    parse_tenants,
    poisson_arrivals,
    regional_arrivals,
    spawn_seeds,
)

__all__ = [
    "ChipServer",
    "ContinuousBatchScheduler",
    "LatencySketch",
    "LatencyStats",
    "Request",
    "RequestProfile",
    "SCHEDULER_MODES",
    "SchedulerConfig",
    "ServedRequest",
    "ServingReport",
    "StageEntry",
    "TenantSpec",
    "assign_priorities",
    "assign_tenants",
    "bursty_arrivals",
    "diurnal_arrivals",
    "dvs_stream_arrivals",
    "flash_crowd_arrivals",
    "latency_stats",
    "parse_model_mix",
    "parse_priority_mix",
    "parse_regions",
    "parse_tenants",
    "poisson_arrivals",
    "profile_config",
    "regional_arrivals",
    "request_profile",
    "simulate_serving",
    "spawn_seeds",
    "stage_serial_s",
    "take_batch",
]
