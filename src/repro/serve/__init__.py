"""Multi-request serving simulation on top of the event engine.

``workload``
    Poisson / bursty arrival streams over Table-2 model mixes.
``profiles``
    Cached per-model engine task graphs (one analytic run per model).
``scheduler``
    FIFO / same-model batching dispatch policies.
``simulate``
    The serving loop: arrivals → scheduler → contended inference.
``report``
    Latency percentiles, throughput, utilization, chip energy.

Registered experiments: ``serve_latency_cdf`` and ``serve_batch_sweep``
(see ``repro.harness.experiments``); docs/ARCHITECTURE.md describes the
event model underneath.
"""

from .profiles import RequestProfile, profile_config, request_profile
from .report import LatencyStats, ServedRequest, ServingReport, latency_stats
from .scheduler import SchedulerConfig, take_batch
from .simulate import ChipServer, simulate_serving
from .sketch import LatencySketch
from .workload import (
    Request,
    bursty_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    parse_model_mix,
    parse_regions,
    poisson_arrivals,
    regional_arrivals,
    spawn_seeds,
)

__all__ = [
    "ChipServer",
    "LatencySketch",
    "LatencyStats",
    "Request",
    "RequestProfile",
    "SchedulerConfig",
    "ServedRequest",
    "ServingReport",
    "bursty_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "latency_stats",
    "parse_model_mix",
    "parse_regions",
    "poisson_arrivals",
    "profile_config",
    "regional_arrivals",
    "request_profile",
    "simulate_serving",
    "spawn_seeds",
    "take_batch",
]
