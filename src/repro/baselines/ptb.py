"""PTB baseline accelerator [27] — Parallel Time Batching (HPCA 2022).

PTB batches the spiking activity of each neuron across a *time window* on a
systolic array, so one multi-bit weight fetch serves up to ``W`` time points.
It was designed for spiking CNNs/FCs; mapped onto spiking transformers it
keeps three structural weaknesses the paper exploits (Sec. 3.1, 7):

* **No token bundling** — weights are re-fetched for every token, so weight
  GLB traffic scales with ``N``, not with ``⌈B/rows⌉`` bundle tiles.
* **Short-T underutilization** — the window only fills when ``T ≥ W``;
  spiking transformers run ``T = 4-20``.
* **No attention support** — ``S = Q·K^T`` and ``Y = S·V`` have *both*
  operands time-indexed, so the time window cannot amortize anything; scores
  spill through the small activation GLB (and DRAM for large ``N``) because
  the array has no score-stationary mode.
"""

from __future__ import annotations

import numpy as np

from ..arch.config import PTBConfig
from ..arch.energy import EnergyModel
from ..arch.memory import TrafficLedger, spike_payload_bytes
from ..arch.report import EnergyBreakdown, InferenceReport, LayerReport
from ..model import LayerRecord, ModelTrace

__all__ = ["PTBAccelerator"]


def _window_activity(spikes: np.ndarray, window: int) -> tuple[float, float]:
    """(active_triples, total_triples) over (token, window, feature) cells."""
    t, n, d = spikes.shape
    windows = -(-t // window)
    padded = np.zeros((windows * window, n, d), dtype=spikes.dtype)
    padded[:t] = spikes
    per_window = padded.reshape(windows, window, n, d).any(axis=1)
    return float(per_window.sum()), float(per_window.size)


class PTBAccelerator:
    """Analytic simulator of the PTB baseline on spiking-transformer traces."""

    def __init__(
        self,
        config: PTBConfig | None = None,
        energy: EnergyModel | None = None,
    ):
        self.config = config or PTBConfig()
        self.energy = energy or EnergyModel()

    # ------------------------------------------------------------------
    def run_matmul_layer(self, record: LayerRecord) -> LayerReport:
        config, energy = self.config, self.energy
        spikes = record.input_spikes
        d_in, d_out = record.weight_shape
        timesteps, tokens, _ = spikes.shape
        window = config.effective_time_lanes(timesteps)
        windows = -(-timesteps // window)

        slot_ops = float(timesteps * tokens * d_in * d_out)
        active_triples, total_triples = _window_activity(spikes, window)
        skippable = 1.0 - active_triples / total_triples if total_triples else 0.0
        # Fine-grained skipping desynchronizes the systolic flow; only part
        # of the skippable work converts into saved cycles.
        ops_for_cycles = slot_ops * (1.0 - skippable * config.skip_efficiency)
        cycles = ops_for_cycles / config.throughput + config.pipeline_fill_cycles
        # LIF integration happens in the PEs after the last input feature.
        lif_updates = float(timesteps * tokens * d_out)
        cycles += lif_updates / config.pe_count
        compute_time = cycles / config.clock_hz

        # Datapath energy: slots in active windows (inactive ones are gated),
        # plus the clocked-idle toll on the slots the partial skipping could
        # not reclaim (the systolic flow keeps stalled PEs clocked).
        energy_ops = active_triples * window * d_out
        occupied_slots = (ops_for_cycles / config.mapping_efficiency)
        idle_slots = max(0.0, occupied_slots - energy_ops)

        traffic = TrafficLedger()
        # The PTB weakness: weights re-streamed per token per time window.
        weight_bytes = d_in * d_out * config.weight_bits / 8.0
        traffic.add("glb", "weight", weight_bytes * tokens * windows)
        traffic.add("dram", "weight", weight_bytes)
        payload = spike_payload_bytes(timesteps * tokens, d_in)
        out_tiles = max(1.0, np.ceil(d_out / 32.0))
        traffic.add("glb", "activation", payload * out_tiles)
        out_payload = spike_payload_bytes(timesteps * tokens, d_out)
        traffic.add("glb", "activation", out_payload)
        for tensor_bytes in (payload, out_payload):
            spill = max(0.0, tensor_bytes - config.act_glb_bytes)
            if spill:
                traffic.add("dram", "activation", 2.0 * spill)

        dram_time = traffic.dram_time_s(config.dram)
        latency = max(compute_time, dram_time)
        breakdown = EnergyBreakdown(
            compute_pj=energy.compute_pj("sac", energy_ops)
            + energy.compute_pj("idle", idle_slots),
            memory_pj=traffic.energy_pj(energy),
            spike_gen_pj=energy.compute_pj("lif", lif_updates),
            static_pj=energy.static_pj(latency),
            memory_by_kind_pj=traffic.energy_by_kind_pj(energy),
        )
        return LayerReport(
            block=record.block,
            kind=record.kind,
            phase=record.phase,
            cycles=cycles,
            latency_s=latency,
            energy=breakdown,
            traffic=traffic,
            unit_cycles={"array": cycles},
            utilization=float(energy_ops / (cycles * config.pe_count * config.lanes_per_pe)),
            notes={
                "window": float(window),
                "skippable_fraction": skippable,
                "dram_time_s": dram_time,
                "compute_time_s": compute_time,
            },
        )

    # ------------------------------------------------------------------
    def run_attention_layer(self, record: LayerRecord) -> LayerReport:
        config, energy = self.config, self.energy
        timesteps, heads, tokens, head_dim = record.q.shape
        features = heads * head_dim

        # Dense integer matmuls; no sparsity skipping, no time batching.
        ops_scores = float(timesteps * tokens * tokens * features)
        ops_outputs = float(timesteps * tokens * tokens * features)
        cycles = (ops_scores + ops_outputs) / config.attention_throughput
        cycles += 2 * config.pipeline_fill_cycles
        lif_updates = float(timesteps * tokens * features)
        cycles += lif_updates / config.pe_count
        compute_time = cycles / config.clock_hz

        traffic = TrafficLedger()
        qkv_payload = spike_payload_bytes(timesteps * tokens, features)
        reuse_tiles = max(1.0, np.ceil(tokens / 32.0))
        traffic.add("glb", "activation", qkv_payload * (1.0 + 2.0 * reuse_tiles))
        # Scores: written after phase 1, re-read as "weights" in phase 2.
        s_bytes = timesteps * tokens * tokens * config.score_bits / 8.0
        traffic.add("glb", "score", 2.0 * s_bytes)
        s_spill = max(0.0, s_bytes - config.act_glb_bytes)
        if s_spill:
            traffic.add("dram", "score", 2.0 * s_spill)
        y_bytes = timesteps * tokens * features * config.accumulator_bits / 8.0
        traffic.add("spad", "output", y_bytes)

        dram_time = traffic.dram_time_s(config.dram)
        latency = max(compute_time, dram_time)
        breakdown = EnergyBreakdown(
            compute_pj=energy.compute_pj("sac", ops_scores)
            + energy.compute_pj("mac8", ops_outputs),
            memory_pj=traffic.energy_pj(energy),
            spike_gen_pj=energy.compute_pj("lif", lif_updates),
            static_pj=energy.static_pj(latency),
            memory_by_kind_pj=traffic.energy_by_kind_pj(energy),
        )
        return LayerReport(
            block=record.block,
            kind=record.kind,
            phase=record.phase,
            cycles=cycles,
            latency_s=latency,
            energy=breakdown,
            traffic=traffic,
            unit_cycles={"array": cycles},
            utilization=float(
                (ops_scores + ops_outputs) / (cycles * config.pe_count)
            ),
            notes={
                "score_bytes": s_bytes,
                "score_dram_spill_bytes": 2.0 * s_spill,
                "dram_time_s": dram_time,
                "compute_time_s": compute_time,
            },
        )

    # ------------------------------------------------------------------
    def run_trace(self, trace: ModelTrace) -> InferenceReport:
        report = InferenceReport(accelerator="ptb", model_name=trace.model_name)
        for record in trace.records:
            if record.is_matmul:
                report.layers.append(self.run_matmul_layer(record))
            elif record.kind == "attention":
                report.layers.append(self.run_attention_layer(record))
        return report
