"""Edge-GPU baseline — NVIDIA Jetson Nano roofline model (Sec. 6.1).

The GPU executes every layer as a dense fp16 kernel: spikes offer it no
savings, and the per-kernel launch overhead is significant at edge-inference
batch size 1.  Latency per layer is ``max(compute roofline, bandwidth
roofline) + launch overhead``; energy is board power × busy time, matching
how edge-GPU numbers are usually measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.memory import TrafficLedger
from ..arch.report import EnergyBreakdown, InferenceReport, LayerReport
from ..model import LayerRecord, ModelTrace

__all__ = ["GPUConfig", "EdgeGPU"]


@dataclass(frozen=True)
class GPUConfig:
    """Jetson-Nano-class parameters."""

    peak_flops: float = 472e9          # fp16 FMA peak
    compute_efficiency: float = 0.12   # achievable fraction on small GEMMs
    memory_bandwidth: float = 25.6e9   # bytes/s (LPDDR4)
    bandwidth_efficiency: float = 0.6
    power_w: float = 10.0              # board power under inference load
    kernel_overhead_s: float = 30e-6   # per-kernel launch + sync
    bytes_per_value: int = 2           # fp16
    # SNN frameworks (snnTorch/spikingjelly-style) step the LIF dynamics
    # sequentially, launching the layer kernel once per time point.
    kernels_per_timestep: bool = True


class EdgeGPU:
    """Roofline simulator for spiking-transformer inference on an edge GPU."""

    def __init__(self, config: GPUConfig | None = None):
        self.config = config or GPUConfig()

    def _layer_report(
        self, record: LayerRecord, flops: float, data_bytes: float, timesteps: int
    ) -> LayerReport:
        config = self.config
        compute_time = flops / (config.peak_flops * config.compute_efficiency)
        memory_time = data_bytes / (
            config.memory_bandwidth * config.bandwidth_efficiency
        )
        launches = timesteps if config.kernels_per_timestep else 1
        latency = max(compute_time, memory_time) + launches * config.kernel_overhead_s
        energy_pj = config.power_w * latency * 1e12
        traffic = TrafficLedger()
        traffic.add("dram", "activation", data_bytes)
        return LayerReport(
            block=record.block,
            kind=record.kind,
            phase=record.phase,
            cycles=0.0,
            latency_s=latency,
            energy=EnergyBreakdown(compute_pj=energy_pj),
            traffic=traffic,
            notes={
                "flops": flops,
                "compute_time_s": compute_time,
                "memory_time_s": memory_time,
            },
        )

    def run_matmul_layer(self, record: LayerRecord) -> LayerReport:
        t, n, d_in = record.input_spikes.shape
        d_out = record.weight_shape[1]
        flops = 2.0 * t * n * d_in * d_out
        data = (
            t * n * (d_in + d_out) + t * d_in * d_out
        ) * self.config.bytes_per_value  # weights re-read per time-point kernel
        return self._layer_report(record, flops, data, t)

    def run_attention_layer(self, record: LayerRecord) -> LayerReport:
        t, h, n, d = record.q.shape
        flops = 2.0 * 2.0 * t * h * n * n * d      # QK^T and SV
        data = (3 * t * n * h * d + 2 * t * h * n * n) * self.config.bytes_per_value
        return self._layer_report(record, flops, data, t)

    def run_trace(self, trace: ModelTrace) -> InferenceReport:
        report = InferenceReport(accelerator="gpu", model_name=trace.model_name)
        for record in trace.records:
            if record.is_matmul:
                report.layers.append(self.run_matmul_layer(record))
            elif record.kind == "attention":
                report.layers.append(self.run_attention_layer(record))
        return report
