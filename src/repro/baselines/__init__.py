"""Baseline comparators (systems S17-S18): PTB [27] and an edge GPU."""

from .gpu import EdgeGPU, GPUConfig
from .ptb import PTBAccelerator

__all__ = ["PTBAccelerator", "EdgeGPU", "GPUConfig"]
