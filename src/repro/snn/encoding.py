"""Spike encoders: turn static or dynamic inputs into ``(T, ...)`` tensors.

The paper's tokenizer consumes either static images replicated over ``T``
time points (direct encoding, as in Spikformer) or native event streams from
a dynamic vision sensor (DVS).  The encoders here produce both formats, plus
rate coding for tests that need controllable firing densities.
"""

from __future__ import annotations

import numpy as np

__all__ = ["direct_encode", "rate_encode", "latency_encode", "events_to_frames"]


def direct_encode(images: np.ndarray, timesteps: int) -> np.ndarray:
    """Replicate analog input over ``T`` time points (Spikformer-style).

    ``images``: ``(B, C, H, W)`` → ``(T, B, C, H, W)``.  The first CONV+LIF
    stage of the tokenizer converts the analog values into spikes.
    """
    if timesteps <= 0:
        raise ValueError(f"timesteps must be positive, got {timesteps}")
    return np.broadcast_to(images, (timesteps, *images.shape)).copy()


def rate_encode(
    images: np.ndarray, timesteps: int, rng: np.random.Generator
) -> np.ndarray:
    """Bernoulli rate coding: pixel intensity in [0, 1] becomes firing rate."""
    clipped = np.clip(images, 0.0, 1.0)
    return (rng.random((timesteps, *images.shape)) < clipped).astype(np.float64)


def latency_encode(images: np.ndarray, timesteps: int) -> np.ndarray:
    """Time-to-first-spike coding: brighter pixels fire earlier, exactly once."""
    clipped = np.clip(images, 0.0, 1.0)
    # Intensity 1 fires at t=0; intensity ~0 fires at the final step.
    fire_at = np.minimum(
        ((1.0 - clipped) * timesteps).astype(np.int64), timesteps - 1
    )
    time_index = np.arange(timesteps).reshape((timesteps,) + (1,) * images.ndim)
    return (time_index == fire_at[None]).astype(np.float64)


def events_to_frames(
    events: np.ndarray,
    timesteps: int,
    height: int,
    width: int,
    polarities: int = 2,
    duration: float | None = None,
) -> np.ndarray:
    """Voxelize a DVS event stream into ``(T, P, H, W)`` binary frames.

    ``events`` is a ``(n_events, 4)`` array of ``(t, x, y, polarity)`` rows,
    matching the DVS-Gesture-128 representation.  Events are binned into
    ``timesteps`` equal windows; a cell is 1 if at least one event of that
    polarity landed in the window (spike frames are binary, like the dataset
    loaders used by spiking-transformer training pipelines).
    """
    if events.ndim != 2 or events.shape[1] != 4:
        raise ValueError(f"expected (n, 4) events, got shape {events.shape}")
    frames = np.zeros((timesteps, polarities, height, width), dtype=np.float64)
    if events.shape[0] == 0:
        return frames
    t = events[:, 0].astype(np.float64)
    t_max = duration if duration is not None else (t.max() + 1e-9)
    bins = np.minimum((t / t_max * timesteps).astype(np.int64), timesteps - 1)
    x = events[:, 1].astype(np.int64)
    y = events[:, 2].astype(np.int64)
    p = events[:, 3].astype(np.int64)
    valid = (x >= 0) & (x < width) & (y >= 0) & (y < height) & (p >= 0) & (p < polarities)
    frames[bins[valid], p[valid], y[valid], x[valid]] = 1.0
    return frames
