"""Spiking layer primitives: time-distributed linear / conv / batchnorm.

The spiking transformer applies ordinary multi-bit-weight linear maps to
binary spike tensors of shape ``(T, B, N, D)`` (time, batch, tokens,
features), followed by batch normalization and an LIF layer.  These wrappers
fold the time and batch axes so the autograd functional layers see plain 2-D
problems.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Parameter, Tensor, functional as F
from .lif import LIF

__all__ = ["TimeLinear", "TimeConv2d", "TimeBatchNorm", "SpikingLinear"]


def _kaiming(rng: np.random.Generator, fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
    scale = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, scale, size=shape)


class TimeLinear(Module):
    """Linear layer applied to the last axis of a ``(T, B, N, D_in)`` tensor."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming(rng, in_features, (out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        return F.linear(x, self.weight, self.bias)


class TimeConv2d(Module):
    """Conv2d applied per time point to a ``(T, B, C, H, W)`` tensor."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _kaiming(rng, fan_in, (out_channels, in_channels, kernel_size, kernel_size))
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        t, b = x.shape[0], x.shape[1]
        folded = x.reshape(t * b, *x.shape[2:])
        out = F.conv2d(
            folded, self.weight, self.bias, stride=self.stride, padding=self.padding
        )
        return out.reshape(t, b, *out.shape[1:])


class TimeBatchNorm(Module):
    """BatchNorm over all axes except the trailing feature axis."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(f"expected last dim {self.num_features}, got {x.shape[-1]}")
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class SpikingLinear(Module):
    """The paper's canonical layer: ``LIF(BN(X · W))``.

    This is the shape of every Q/K/V/O projection (Eq. 3-5) and of each MLP
    stage; the accelerator maps its matmul onto the dense + sparse TTB cores
    and its LIF onto the spike generator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        v_threshold: float = 1.0,
        v_leak: float = 0.0,
        surrogate: str = "atan",
        use_batchnorm: bool = True,
    ):
        super().__init__()
        self.proj = TimeLinear(in_features, out_features, rng)
        self.norm = TimeBatchNorm(out_features) if use_batchnorm else None
        self.lif = LIF(v_threshold=v_threshold, v_leak=v_leak, surrogate=surrogate)

    def forward(self, x: Tensor) -> Tensor:
        current = self.proj(x)
        if self.norm is not None:
            current = self.norm(current)
        return self.lif(current)
