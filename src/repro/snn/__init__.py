"""Spiking-neural-network substrate (system S2): LIF dynamics, surrogate
gradients, spike encoders, and time-distributed layers."""

from .encoding import direct_encode, events_to_frames, latency_encode, rate_encode
from .lif import LIF, lif_forward
from .layers import SpikingLinear, TimeBatchNorm, TimeConv2d, TimeLinear
from .quant import QuantizationReport, quantize_model, quantize_tensor
from .surrogate import SURROGATES, spike

__all__ = [
    "LIF",
    "lif_forward",
    "spike",
    "SURROGATES",
    "direct_encode",
    "rate_encode",
    "latency_encode",
    "events_to_frames",
    "TimeLinear",
    "TimeConv2d",
    "TimeBatchNorm",
    "SpikingLinear",
    "QuantizationReport",
    "quantize_model",
    "quantize_tensor",
]
