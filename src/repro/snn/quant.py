"""Post-training weight quantization.

Bishop's datapath assumes multi-bit integer weights (8-bit in the evaluated
configuration: SAC units select 8-bit weights into 24-bit accumulators).
This module quantizes a trained model's floating-point weights to the
accelerator's format — symmetric per-output-channel integer quantization —
so that accuracy under the deployed number format can be measured, in the
spirit of the MINT-style quantization the paper cites [56].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Module, Parameter

__all__ = ["QuantizationReport", "quantize_tensor", "quantize_model"]


@dataclass(frozen=True)
class QuantizationReport:
    """Summary of one quantization pass."""

    bits: int
    num_parameters: int
    num_quantized: int
    max_abs_error: float
    mean_abs_error: float


def quantize_tensor(
    values: np.ndarray, bits: int, per_channel_axis: int | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric integer quantization; returns (dequantized, scales).

    ``per_channel_axis`` selects the axis that keeps its own scale (the
    output-channel axis of weight matrices); ``None`` uses one tensor-wide
    scale.
    """
    if bits < 2 or bits > 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    q_max = 2 ** (bits - 1) - 1
    if per_channel_axis is None:
        max_abs = np.abs(values).max()
        scales = np.array(max_abs / q_max if max_abs > 0 else 1.0)
        quantized = np.round(values / scales).clip(-q_max, q_max)
        return quantized * scales, scales
    moved = np.moveaxis(values, per_channel_axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    max_abs = np.abs(flat).max(axis=1)
    scales = np.where(max_abs > 0, max_abs / q_max, 1.0)
    quantized = np.round(flat / scales[:, None]).clip(-q_max, q_max)
    restored = (quantized * scales[:, None]).reshape(moved.shape)
    return np.moveaxis(restored, 0, per_channel_axis), scales


def quantize_model(
    model: Module, bits: int = 8, min_dims: int = 2
) -> QuantizationReport:
    """Quantize every weight parameter of ``model`` in place.

    Only parameters with at least ``min_dims`` dimensions are quantized
    (biases and batch-norm affine parameters stay in full precision and fold
    into the spike generator's threshold logic on the hardware).
    """
    total, quantized_count = 0, 0
    max_err, err_sum, err_count = 0.0, 0.0, 0
    for _, parameter in model.named_parameters():
        total += 1
        if parameter.ndim < min_dims:
            continue
        original = parameter.data.copy()
        parameter.data, _ = quantize_tensor(parameter.data, bits)
        error = np.abs(parameter.data - original)
        max_err = max(max_err, float(error.max()))
        err_sum += float(error.sum())
        err_count += error.size
        quantized_count += 1
    return QuantizationReport(
        bits=bits,
        num_parameters=total,
        num_quantized=quantized_count,
        max_abs_error=max_err,
        mean_abs_error=err_sum / err_count if err_count else 0.0,
    )
