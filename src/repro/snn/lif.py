"""Leaky integrate-and-fire neuron layer (paper Eq. 1-2).

Discretized dynamics over time points ``t_k``::

    V_m[t_k] = V_m[t_k-1] + I[t_k] - V_leak
    S[t_k]   = 1 and V_m reset to 0   if V_m[t_k] > V_th
             = 0 and V_m kept         otherwise

The layer runs over the leading time axis of its input (shape ``(T, ...)``)
and is differentiable through time (BPTT) via surrogate gradients.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Tensor
from .surrogate import spike

__all__ = ["LIF", "lif_forward"]


def lif_forward(
    current: Tensor,
    v_threshold: float = 1.0,
    v_leak: float = 0.0,
    surrogate: str = "atan",
) -> Tensor:
    """Run LIF dynamics over the leading time axis of ``current``.

    Parameters
    ----------
    current:
        Synaptic input ``I`` with shape ``(T, ...)``.
    v_threshold:
        Firing threshold ``V_th`` (Eq. 2).
    v_leak:
        Constant leak subtracted each step (Eq. 1).
    surrogate:
        Surrogate-gradient family for the firing nonlinearity.

    Returns
    -------
    Tensor
        Binary spike train ``S`` with the same shape as ``current``.
    """
    if current.ndim < 1:
        raise ValueError("LIF input must have a leading time axis")
    timesteps = current.shape[0]
    membrane: Tensor | None = None
    spikes: list[Tensor] = []
    for t in range(timesteps):
        injected = current[t]
        if membrane is None:
            membrane = injected - v_leak
        else:
            membrane = membrane + injected - v_leak
        fired = spike(membrane - v_threshold, surrogate=surrogate)
        spikes.append(fired)
        # Hard reset to zero on fire: V <- V * (1 - S).  For binary S this is
        # exactly Eq. 2; the multiplicative form keeps the reset differentiable.
        membrane = membrane * (1.0 - fired)
    return Tensor.stack(spikes, axis=0)


class LIF(Module):
    """LIF neuron layer over a ``(T, ...)`` input.

    This is the ``LIF(·)`` appearing in the paper's SSA equations (Eq. 3-5, 7)
    and after every MLP / projection matmul.
    """

    def __init__(
        self,
        v_threshold: float = 1.0,
        v_leak: float = 0.0,
        surrogate: str = "atan",
    ):
        super().__init__()
        if v_threshold <= 0:
            raise ValueError(f"v_threshold must be positive, got {v_threshold}")
        self.v_threshold = v_threshold
        self.v_leak = v_leak
        self.surrogate = surrogate

    def forward(self, current: Tensor) -> Tensor:
        return lif_forward(
            current,
            v_threshold=self.v_threshold,
            v_leak=self.v_leak,
            surrogate=self.surrogate,
        )

    @staticmethod
    def reference_numpy(
        current: np.ndarray, v_threshold: float = 1.0, v_leak: float = 0.0
    ) -> np.ndarray:
        """Pure-NumPy forward used as a test oracle for the autograd path."""
        membrane = np.zeros(current.shape[1:], dtype=np.float64)
        out = np.zeros_like(current, dtype=np.float64)
        for t in range(current.shape[0]):
            membrane = membrane + current[t] - v_leak
            fired = membrane > v_threshold
            out[t] = fired
            membrane = np.where(fired, 0.0, membrane)
        return out
