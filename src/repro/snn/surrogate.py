"""Surrogate-gradient spike functions.

The LIF firing rule (paper Eq. 2) is a Heaviside step of the membrane
potential over threshold; its true derivative is zero almost everywhere, so
direct training of spiking transformers uses a *surrogate* derivative on the
backward pass.  We provide the three families commonly used for spiking
transformers (Spikformer uses the arctangent surrogate).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor

__all__ = ["spike", "SURROGATES", "atan_grad", "rectangular_grad", "sigmoid_grad"]


def atan_grad(v: np.ndarray, alpha: float = 2.0) -> np.ndarray:
    """Derivative of ``(1/π)·arctan(π·α·v/2) + 1/2`` — Spikformer's default."""
    return alpha / 2.0 / (1.0 + (np.pi / 2.0 * alpha * v) ** 2)


def rectangular_grad(v: np.ndarray, width: float = 1.0) -> np.ndarray:
    """Boxcar window around the threshold (STBP-style)."""
    return (np.abs(v) < width / 2.0).astype(np.float64) / width


def sigmoid_grad(v: np.ndarray, alpha: float = 4.0) -> np.ndarray:
    """Derivative of a steep sigmoid ``σ(α·v)``."""
    s = 1.0 / (1.0 + np.exp(-alpha * v))
    return alpha * s * (1.0 - s)


SURROGATES = {
    "atan": atan_grad,
    "rectangular": rectangular_grad,
    "sigmoid": sigmoid_grad,
}


def spike(v_minus_threshold: Tensor, surrogate: str = "atan") -> Tensor:
    """Heaviside forward, surrogate-gradient backward.

    ``v_minus_threshold`` is ``V_m - V_th``; the output is a binary spike
    tensor with gradients given by ``SURROGATES[surrogate]``.
    """
    try:
        grad_fn = SURROGATES[surrogate]
    except KeyError:
        raise ValueError(
            f"unknown surrogate {surrogate!r}; options: {sorted(SURROGATES)}"
        ) from None
    return v_minus_threshold.apply(
        lambda v: (v > 0).astype(np.float64),
        lambda v, grad: grad * grad_fn(v),
    )
