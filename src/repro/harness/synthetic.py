"""Synthetic workload traces for Table-2-scale models.

Training the paper's full models (ImageNet-100, 300 epochs) is out of scope
for a NumPy reproduction, but the accelerator experiments (Figs. 11-16) only
need *spike tensors with realistic statistics*.  This module fabricates
:class:`~repro.model.trace.ModelTrace` objects whose firing patterns follow
the structure the paper documents:

* heavy-tailed per-feature firing densities (Fig. 5: most features have few
  active bundles, a minority are very dense — the reason stratification works);
* token-time clustering (spikes concentrate inside a subset of bundles,
  Fig. 6's gap between spike density and TTB density);
* BSA profile: lower overall density, a much larger fraction of completely
  silent features, and higher within-bundle concentration (Fig. 5b/6c-d).

Density anchors come from the paper: ImageNet-100 averages ≈20% activation
density across layers (Sec. 6.4); BSA roughly halves density while cutting
TTB density even more (Fig. 6: 6.34%→2.75% spike, 11.16%→5.22% TTB).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bundles import BundleSpec
from ..model import LayerRecord, ModelTrace, SpikingTransformerConfig

__all__ = ["DensityProfile", "PROFILES", "synthetic_spikes", "synthetic_trace"]


@dataclass(frozen=True)
class DensityProfile:
    """Statistical description of one model's firing behaviour.

    Q/K tensors get their own (much sparser) density: they sit behind the
    attention LIF layers, and the paper's reported ECP keep-fractions (e.g.
    ImageNet-100 retains only 10.7% of Q rows at θ=6) imply mean active-
    bundle counts per bundle row of only a few — i.e. Q/K spike densities in
    the 1-2% range for the trained models.
    """

    mean_density: float           # average spike density, MLP/projection inputs
    zero_feature_fraction: float  # features with no activity at all
    within_bundle: float          # spike prob inside an active bundle
    qk_mean_density: float = 0.02 # spike density of attention Q (K is 0.8×)
    qk_zero_fraction: float = 0.35
    sigma: float = 1.1            # lognormal spread of per-feature densities
    k_scale: float = 0.8          # "K bundles tend to have higher token sparsity"

    def bsa_variant(self) -> "DensityProfile":
        """The post-BSA statistics (Sec. 4.1 / Fig. 5-6 shifts)."""
        return DensityProfile(
            mean_density=self.mean_density * 0.68,
            zero_feature_fraction=min(0.9, self.zero_feature_fraction + 0.18),
            within_bundle=min(0.85, self.within_bundle + 0.08),
            qk_mean_density=self.qk_mean_density * 0.60,
            qk_zero_fraction=min(0.9, self.qk_zero_fraction + 0.15),
            sigma=self.sigma + 0.25,
            k_scale=self.k_scale,
        )

    def qk_profile(self, scale: float = 1.0) -> "DensityProfile":
        """The profile used to draw Q (scale=1) or K (scale=k_scale)."""
        return DensityProfile(
            mean_density=self.qk_mean_density * scale,
            zero_feature_fraction=self.qk_zero_fraction,
            within_bundle=self.within_bundle,
            sigma=self.sigma,
        )


# Per-model anchors, calibrated (see DESIGN.md / EXPERIMENTS.md) so that the
# simulators reproduce the paper's relative results: arch-only speedups over
# PTB, the BSA/ECP increments, and the ECP keep fractions at the published
# thresholds (θ=6 static / θ=10 DVS: CIFAR10 keeps ~72%/52% of Q/K rows,
# ImageNet-100 ~11%/10%, DVS-Gesture ~8%/5.5%).  MLP/projection densities
# bracket model3's ≈20% average (Sec. 6.4); modality sets the rest: DVS is
# spatially sparse, speech-command workloads fire densely.
PROFILES: dict[str, DensityProfile] = {
    "model1": DensityProfile(0.125, 0.10, 0.48, qk_mean_density=0.023, qk_zero_fraction=0.25, k_scale=0.87),
    "model2": DensityProfile(0.175, 0.07, 0.40, qk_mean_density=0.023, qk_zero_fraction=0.20, k_scale=0.58),
    "model3": DensityProfile(0.21, 0.05, 0.50, qk_mean_density=0.026, qk_zero_fraction=0.35, k_scale=0.95),
    "model4": DensityProfile(0.12, 0.06, 0.30, qk_mean_density=0.030, qk_zero_fraction=0.35, k_scale=0.90),
    "model5": DensityProfile(0.30, 0.02, 0.28, qk_mean_density=0.0087, qk_zero_fraction=0.35, k_scale=0.80),
}


def _feature_densities(
    num_features: int, profile: DensityProfile, rng: np.random.Generator
) -> np.ndarray:
    """Heavy-tailed per-feature spike densities with a silent fraction."""
    raw = rng.lognormal(mean=0.0, sigma=profile.sigma, size=num_features)
    raw /= raw.mean()
    densities = raw * profile.mean_density
    silent = rng.random(num_features) < profile.zero_feature_fraction
    densities[silent] = 0.0
    alive = ~silent
    if alive.any():
        # Renormalize survivors so the overall mean stays on target.
        densities[alive] *= profile.mean_density / max(densities.mean(), 1e-12)
    return np.clip(densities, 0.0, 0.95)


def synthetic_spikes(
    timesteps: int,
    tokens: int,
    num_features: int,
    profile: DensityProfile,
    spec: BundleSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Binary ``(T, N, D)`` spikes with bundle-clustered structure.

    Per feature: bundles activate with probability ``p_d / within_bundle``;
    inside an active bundle, slots fire with probability ``within_bundle`` —
    so the marginal spike density is ``p_d`` while the TTB density stays well
    above it, reproducing the Fig.-6 relationship.
    """
    densities = _feature_densities(num_features, profile, rng)
    n_bt, n_bn = spec.grid_shape(timesteps, tokens)
    bundle_prob = np.minimum(1.0, densities / profile.within_bundle)
    active = rng.random((n_bt, n_bn, num_features)) < bundle_prob
    slots = rng.random(
        (n_bt, spec.bs_t, n_bn, spec.bs_n, num_features)
    ) < profile.within_bundle
    spikes = (active[:, None, :, None, :] & slots).astype(np.float64)
    spikes = spikes.reshape(n_bt * spec.bs_t, n_bn * spec.bs_n, num_features)
    return spikes[:timesteps, :tokens]


def _to_heads(full: np.ndarray, heads: int) -> np.ndarray:
    """``(T, N, D)`` → ``(T, H, N, D/H)``."""
    t, n, d = full.shape
    return full.reshape(t, n, heads, d // heads).transpose(0, 2, 1, 3)


def synthetic_trace(
    config: SpikingTransformerConfig,
    profile: DensityProfile,
    spec: BundleSpec,
    seed: int = 0,
) -> ModelTrace:
    """Fabricate the full per-layer workload of one inference of ``config``."""
    rng = np.random.default_rng(seed)
    t, n, d = config.timesteps, config.num_tokens, config.embed_dim
    hidden = config.hidden_dim
    records: list[LayerRecord] = []

    def spikes(features: int) -> np.ndarray:
        return synthetic_spikes(t, n, features, profile, spec, rng)

    q_profile = profile.qk_profile()
    k_profile = profile.qk_profile(scale=profile.k_scale)
    for block in range(config.num_blocks):
        block_input = spikes(d)
        for kind in ("proj_q", "proj_k", "proj_v"):
            records.append(
                LayerRecord(block=block, kind=kind, input_spikes=block_input,
                            weight_shape=(d, d))
            )
        q_full = synthetic_spikes(t, n, d, q_profile, spec, rng)
        k_full = synthetic_spikes(t, n, d, k_profile, spec, rng)
        v_full = spikes(d)
        records.append(
            LayerRecord(
                block=block, kind="attention", input_spikes=None, weight_shape=None,
                q=_to_heads(q_full, config.num_heads),
                k=_to_heads(k_full, config.num_heads),
                v=_to_heads(v_full, config.num_heads),
            )
        )
        records.append(
            LayerRecord(block=block, kind="proj_o", input_spikes=spikes(d),
                        weight_shape=(d, d))
        )
        records.append(
            LayerRecord(block=block, kind="mlp1", input_spikes=spikes(d),
                        weight_shape=(d, hidden))
        )
        records.append(
            LayerRecord(block=block, kind="mlp2", input_spikes=spikes(hidden),
                        weight_shape=(hidden, d))
        )
    return ModelTrace(
        model_name=config.name,
        timesteps=t,
        num_tokens=n,
        embed_dim=d,
        records=records,
    )
