"""Sec.-6.4 ablations: heterogeneity and the dedicated attention core.

* **Heterogeneity**: Model 3 with the stratifier on (dense ∥ sparse cores)
  vs everything forced onto the dense core.  The paper reports dense-core
  1.16 ms / 0.29 mJ plus sparse-core 0.53 ms / 0.038 mJ in parallel, vs
  1.83 ms / 0.45 mJ dense-only — a 1.39× speedup and 1.57× energy saving.
* **Attention core**: Bishop's attention core vs PTB on the SSA layers only,
  both without BSA/ECP (paper: 10.7-23.3× latency, 1.39-1.96× energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..arch import BishopAccelerator, BishopConfig
from ..baselines import PTBAccelerator
from ..bundles import BundleSpec
from ..model import model_config
from .synthetic import PROFILES, synthetic_trace

__all__ = [
    "HeterogeneityResult",
    "heterogeneity_ablation",
    "AttentionCoreComparison",
    "attention_core_comparison",
]


@dataclass(frozen=True)
class HeterogeneityResult:
    model: str
    hetero_latency_s: float
    hetero_energy_mj: float
    dense_only_latency_s: float
    dense_only_energy_mj: float
    mean_dense_fraction: float      # share of features routed dense

    @property
    def speedup(self) -> float:
        return self.dense_only_latency_s / self.hetero_latency_s

    @property
    def energy_gain(self) -> float:
        return self.dense_only_energy_mj / self.hetero_energy_mj


@lru_cache(maxsize=8)
def heterogeneity_ablation(
    model: str = "model3", bs_t: int = 2, bs_n: int = 4, seed: int = 0
) -> HeterogeneityResult:
    """Stratified heterogeneous cores vs dense-core-only processing."""
    spec = BundleSpec(bs_t, bs_n)
    trace = synthetic_trace(model_config(model), PROFILES[model], spec, seed=seed)

    hetero = BishopAccelerator(BishopConfig(bundle_spec=spec)).run_trace(trace)
    dense_only = BishopAccelerator(
        BishopConfig(bundle_spec=spec, use_stratifier=False)
    ).run_trace(trace)

    matmuls = [l for l in hetero.layers if l.phase != "ATN"]
    mean_dense_fraction = sum(
        l.notes.get("dense_fraction", 1.0) for l in matmuls
    ) / len(matmuls)

    def matmul_totals(report):
        layers = [l for l in report.layers if l.phase != "ATN"]
        return (
            sum(l.latency_s for l in layers),
            sum(l.energy_pj for l in layers) * 1e-9,
        )

    h_lat, h_energy = matmul_totals(hetero)
    d_lat, d_energy = matmul_totals(dense_only)
    return HeterogeneityResult(
        model=model,
        hetero_latency_s=h_lat,
        hetero_energy_mj=h_energy,
        dense_only_latency_s=d_lat,
        dense_only_energy_mj=d_energy,
        mean_dense_fraction=mean_dense_fraction,
    )


@dataclass(frozen=True)
class AttentionCoreComparison:
    model: str
    bishop_latency_s: float
    bishop_energy_mj: float
    ptb_latency_s: float
    ptb_energy_mj: float

    @property
    def latency_gain(self) -> float:
        return self.ptb_latency_s / self.bishop_latency_s

    @property
    def energy_gain(self) -> float:
        return self.ptb_energy_mj / self.bishop_energy_mj


@lru_cache(maxsize=8)
def attention_core_comparison(
    model: str, bs_t: int = 2, bs_n: int = 4, seed: int = 0
) -> AttentionCoreComparison:
    """SSA layers only, architecture only (no BSA, no ECP)."""
    spec = BundleSpec(bs_t, bs_n)
    trace = synthetic_trace(model_config(model), PROFILES[model], spec, seed=seed)
    bishop = BishopAccelerator(BishopConfig(bundle_spec=spec)).run_trace(trace)
    ptb = PTBAccelerator().run_trace(trace)
    return AttentionCoreComparison(
        model=model,
        bishop_latency_s=bishop.attention_latency_s(),
        bishop_energy_mj=bishop.attention_energy_pj() * 1e-9,
        ptb_latency_s=ptb.attention_latency_s(),
        ptb_energy_mj=ptb.attention_energy_pj() * 1e-9,
    )
