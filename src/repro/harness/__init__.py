"""Experiment harness (system S19): regenerates every table and figure."""

from . import ablation, endtoend, fig11, fig14, fig15, fig16, hetero, synthetic, table1
from .experiments import (
    EXPERIMENTS,
    Experiment,
    ParamSpec,
    get_experiment,
    registry_code_hash,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ParamSpec",
    "get_experiment",
    "registry_code_hash",
    "run_experiment",
    "ablation",
    "endtoend",
    "fig11",
    "fig14",
    "fig15",
    "fig16",
    "hetero",
    "synthetic",
    "table1",
]
