"""End-to-end evaluation grid: Figs. 12-13 and the Sec. 6.2 headline numbers.

For each Table-2 model we run the same synthetic workload through five
configurations — edge GPU, PTB, Bishop (architecture only), Bishop+BSA, and
Bishop+BSA+ECP — and report absolute plus normalized latency and energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..algo import ECPConfig
from ..arch import BishopAccelerator, BishopConfig
from ..baselines import EdgeGPU, PTBAccelerator
from ..bundles import BundleSpec
from ..model import model_config
from .synthetic import PROFILES, synthetic_trace

__all__ = ["SystemResult", "ModelComparison", "run_model_comparison", "run_grid", "headline_summary", "ECP_THETA"]

# The paper's per-dataset ECP thresholds (Sec. 6.1): 10 for DVS-Gesture,
# 6 elsewhere; 8 is quoted for the CIFAR10 sweep example.
ECP_THETA = {"model1": 8, "model2": 6, "model3": 6, "model4": 10, "model5": 6}

SYSTEMS = ("gpu", "ptb", "bishop", "bishop_bsa", "bishop_bsa_ecp")


@dataclass(frozen=True)
class SystemResult:
    latency_s: float
    energy_mj: float
    attention_latency_s: float
    attention_energy_mj: float


@dataclass(frozen=True)
class ModelComparison:
    """One model's row in Figs. 12-13."""

    model: str
    results: dict[str, SystemResult]

    def speedup_vs(self, system: str, baseline: str = "ptb") -> float:
        return self.results[baseline].latency_s / self.results[system].latency_s

    def energy_gain_vs(self, system: str, baseline: str = "ptb") -> float:
        return self.results[baseline].energy_mj / self.results[system].energy_mj

    def normalized_latency(self, reference: str = "bishop_bsa_ecp") -> dict[str, float]:
        ref = self.results[reference].latency_s
        return {name: r.latency_s / ref for name, r in self.results.items()}

    def normalized_energy(self, reference: str = "bishop_bsa_ecp") -> dict[str, float]:
        ref = self.results[reference].energy_mj
        return {name: r.energy_mj / ref for name, r in self.results.items()}


def _system_result(report) -> SystemResult:
    return SystemResult(
        latency_s=report.total_latency_s,
        energy_mj=report.total_energy_mj,
        attention_latency_s=report.attention_latency_s(),
        attention_energy_mj=report.attention_energy_pj() * 1e-9,
    )


@lru_cache(maxsize=32)
def run_model_comparison(
    model: str, bs_t: int = 2, bs_n: int = 4, seed: int = 0
) -> ModelComparison:
    """Simulate the five-system grid for one Table-2 model."""
    spec = BundleSpec(bs_t, bs_n)
    config = model_config(model)
    profile = PROFILES[model]
    trace = synthetic_trace(config, profile, spec, seed=seed)
    trace_bsa = synthetic_trace(config, profile.bsa_variant(), spec, seed=seed)

    bishop = BishopAccelerator(BishopConfig(bundle_spec=spec))
    ptb = PTBAccelerator()
    gpu = EdgeGPU()
    ecp = ECPConfig(theta_q=ECP_THETA[model], theta_k=ECP_THETA[model], spec=spec)

    results = {
        "gpu": _system_result(gpu.run_trace(trace)),
        "ptb": _system_result(ptb.run_trace(trace)),
        "bishop": _system_result(bishop.run_trace(trace)),
        "bishop_bsa": _system_result(bishop.run_trace(trace_bsa)),
        "bishop_bsa_ecp": _system_result(bishop.run_trace(trace_bsa, ecp=ecp)),
    }
    return ModelComparison(model=model, results=results)


def run_grid(
    models: tuple[str, ...] = ("model1", "model2", "model3", "model4", "model5"),
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
) -> dict[str, ModelComparison]:
    """Figs. 12-13: every model × every system."""
    return {m: run_model_comparison(m, bs_t, bs_n, seed) for m in models}


def headline_summary(grid: dict[str, ModelComparison]) -> dict[str, float]:
    """Sec.-6.2 style averages of the full stack (Bishop+BSA+ECP)."""
    speedups = [c.speedup_vs("bishop_bsa_ecp") for c in grid.values()]
    energies = [c.energy_gain_vs("bishop_bsa_ecp") for c in grid.values()]
    gpu_speedups = [
        c.speedup_vs("bishop_bsa_ecp", baseline="gpu") for c in grid.values()
    ]
    return {
        "mean_speedup_vs_ptb": float(np.mean(speedups)),
        "mean_energy_gain_vs_ptb": float(np.mean(energies)),
        "mean_speedup_vs_gpu": float(np.mean(gpu_speedups)),
        "min_speedup_vs_ptb": float(np.min(speedups)),
        "max_speedup_vs_ptb": float(np.max(speedups)),
    }
