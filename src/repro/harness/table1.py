"""Table 1 — accuracy comparison: ANN vs prior SNNs vs spiking transformer.

The paper's Table 1 positions spiking transformers between conventional SNNs
(spiking CNN/MLP) and ANNs.  We reproduce the *ordering* on the synthetic
datasets with three laptop-scale reference models trained by the same
pipeline: an ANN MLP (upper reference), a spiking CNN and a spiking MLP
(prior-SNN references), and the spiking transformer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..autograd import Adam, Module, Tensor, functional as F, init_rng, no_grad
from ..model import SpikingTransformer, tiny_config
from ..snn import LIF, SpikingLinear, TimeBatchNorm, TimeConv2d, TimeLinear, direct_encode
from ..train import Dataset, TrainConfig, Trainer, make_image_dataset

__all__ = ["ANNMLP", "SpikingMLPNet", "SpikingConvNet", "Table1Row", "run_table1"]


class ANNMLP(Module):
    """Non-spiking two-layer MLP — the ANN reference row."""

    def __init__(self, in_features: int, hidden: int, num_classes: int, seed: int = 0):
        super().__init__()
        rng = init_rng(seed)
        self.fc1 = TimeLinear(in_features, hidden, rng)
        self.fc2 = TimeLinear(hidden, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        flat = x.reshape(x.shape[0], -1)
        return self.fc2(self.fc1(flat).relu())


class SpikingMLPNet(Module):
    """LIF MLP over direct-encoded frames — a conventional-SNN reference."""

    def __init__(
        self, in_features: int, hidden: int, num_classes: int,
        timesteps: int, seed: int = 0,
    ):
        super().__init__()
        rng = init_rng(seed)
        self.timesteps = timesteps
        self.layer1 = SpikingLinear(in_features, hidden, rng)
        self.layer2 = SpikingLinear(hidden, hidden, rng)
        self.head = TimeLinear(hidden, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        t, b = x.shape[0], x.shape[1]
        flat = x.reshape(t, b, 1, -1)          # single pseudo-token
        spikes = self.layer2(self.layer1(flat))
        pooled = spikes.mean(axis=(0, 2))
        return self.head(pooled)


class SpikingConvNet(Module):
    """Small spiking CNN (CIFARNet-style) — the spiking-CNN reference."""

    def __init__(
        self, in_channels: int, image_size: int, num_classes: int,
        timesteps: int, channels: int = 16, seed: int = 0,
    ):
        super().__init__()
        rng = init_rng(seed)
        self.timesteps = timesteps
        self.conv1 = TimeConv2d(in_channels, channels, 3, rng, stride=2, padding=1)
        self.norm1 = TimeBatchNorm(channels)
        self.lif1 = LIF()
        self.conv2 = TimeConv2d(channels, channels * 2, 3, rng, stride=2, padding=1)
        self.norm2 = TimeBatchNorm(channels * 2)
        self.lif2 = LIF()
        feat = (image_size // 4) ** 2 * channels * 2
        self.head = TimeLinear(feat, num_classes, rng)

    def _conv_block(self, x: Tensor, conv, norm, lif) -> Tensor:
        out = conv(x)
        moved = out.transpose(0, 1, 3, 4, 2)
        normed = norm(moved).transpose(0, 1, 4, 2, 3)
        return lif(normed)

    def forward(self, x: Tensor) -> Tensor:
        x = self._conv_block(x, self.conv1, self.norm1, self.lif1)
        x = self._conv_block(x, self.conv2, self.norm2, self.lif2)
        t, b = x.shape[0], x.shape[1]
        pooled = x.reshape(t, b, -1).mean(axis=0)
        return self.head(pooled)


def _train_generic(
    model: Module, dataset: Dataset, timesteps: int, epochs: int,
    lr: float, seed: int, spiking: bool,
) -> float:
    """Minimal CE training loop shared by the non-Trainer reference models."""
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    for _ in range(epochs):
        for inputs, labels in dataset.batches(24, rng):
            encoded = direct_encode(inputs, timesteps) if spiking else inputs
            model.train()
            logits = model(Tensor(encoded))
            loss = F.cross_entropy(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(dataset.x_test), 64):
            chunk = dataset.x_test[start : start + 64]
            encoded = direct_encode(chunk, timesteps) if spiking else chunk
            logits = model(Tensor(encoded))
            correct += int(
                (logits.data.argmax(axis=1) == dataset.y_test[start : start + 64]).sum()
            )
    return correct / len(dataset.x_test)


@dataclass(frozen=True)
class Table1Row:
    network: str
    family: str          # "ANN" | "SNN"
    accuracy: float


@lru_cache(maxsize=4)
def run_table1(seed: int = 0, epochs: int = 12) -> tuple[Table1Row, ...]:
    """Train all four reference networks and return the accuracy table."""
    dataset = make_image_dataset(
        num_classes=4, samples_per_class=30, image_size=16, seed=seed
    )
    timesteps = 4
    in_features = int(np.prod(dataset.x_train.shape[1:]))

    ann = ANNMLP(in_features, hidden=64, num_classes=4, seed=seed)
    ann_acc = _train_generic(ann, dataset, timesteps, epochs, 2e-3, seed, spiking=False)

    smlp = SpikingMLPNet(in_features, hidden=64, num_classes=4, timesteps=timesteps, seed=seed)
    smlp_acc = _train_generic(smlp, dataset, timesteps, max(4, epochs // 2), 2e-3, seed, spiking=True)

    scnn = SpikingConvNet(3, 16, 4, timesteps=timesteps, seed=seed)
    scnn_acc = _train_generic(scnn, dataset, timesteps, max(4, epochs // 2), 2e-3, seed, spiking=True)

    transformer = SpikingTransformer(tiny_config(num_classes=4, timesteps=timesteps), seed=seed)
    trainer = Trainer(
        transformer, dataset,
        TrainConfig(epochs=epochs, batch_size=24, lr=3e-3, seed=seed),
    )
    trainer.fit()
    st_acc = trainer.evaluate(dataset.x_test, dataset.y_test)

    return (
        Table1Row("ANN MLP", "ANN", ann_acc),
        Table1Row("Spiking MLP", "SNN", smlp_acc),
        Table1Row("Spiking CNN", "SNN", scnn_acc),
        Table1Row("Spiking Transformer", "SNN", st_acc),
    )
