"""Experiment registry: one callable per paper table/figure.

Each experiment returns a JSON-serializable dict so benches, examples, and
EXPERIMENTS.md generation all consume the same artifacts.  See DESIGN.md's
per-experiment index for the mapping to paper artifacts.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..algo import BundleSparsityLoss, ECPConfig, ecp_prune_qk
from ..arch import BISHOP_BREAKDOWN, PTB_BREAKDOWN
from ..arch.attention_core import merge_attention_heads
from ..bundles import BundleSpec, density_report
from ..model import (
    MODEL_ZOO,
    SpikingTransformer,
    flops_breakdown,
    model_config,
    tiny_config,
)
from ..arch.stratifier import stratify, theta_for_dense_fraction
from ..train import (
    TrainConfig,
    Trainer,
    make_image_dataset,
    model_bundle_distributions,
)
from . import endtoend, fig11, fig14, fig15, fig16, hetero, table1
from .synthetic import PROFILES, synthetic_trace

__all__ = ["EXPERIMENTS", "run_experiment"]


# ----------------------------------------------------------------------
# Small experiments implemented inline
# ----------------------------------------------------------------------
def experiment_table2() -> dict:
    """Table 2 — the model zoo."""
    return {
        name: {
            "blocks": cfg.num_blocks,
            "timesteps": cfg.timesteps,
            "tokens": cfg.num_tokens,
            "features": cfg.embed_dim,
            "input_kind": cfg.input_kind,
        }
        for name, cfg in MODEL_ZOO.items()
    }


def experiment_fig3() -> dict:
    """Fig. 3 — FLOPs breakdown vs (N, D) and depth."""
    sweeps = {}
    for n_tokens, d in ((64, 384), (128, 256), (196, 128), (256, 384)):
        for blocks in (4, 8):
            # sequence input_kind frees N from the image-grid constraint;
            # the encoder-block FLOPs (the figure's subject) are identical.
            config = model_config("model1").with_overrides(
                name=f"sweep-N{n_tokens}-D{d}-L{blocks}",
                num_tokens=n_tokens,
                embed_dim=d,
                num_blocks=blocks,
                input_kind="sequence",
            )
            profile = flops_breakdown(config)
            sweeps[f"N{n_tokens}_D{d}_L{blocks}"] = {
                "attention_fraction": profile.attention_fraction,
                "mlp_fraction": profile.mlp_fraction,
                "attention_plus_mlp_fraction": profile.attention_plus_mlp_fraction,
                "total_flops": profile.total,
            }
    return sweeps


def experiment_fig5(seed: int = 0, epochs: int = 12) -> dict:
    """Fig. 5 — active-bundle distribution without vs with BSA (trained).

    λ is larger than the paper's 0.3-1.0 because our L_bsp is normalized
    per-bundle and training runs ~12 epochs instead of 300.
    """
    spec = BundleSpec(2, 2)
    dataset = make_image_dataset(num_classes=4, samples_per_class=24, image_size=16, seed=3)
    out = {}
    for label, lambda_bsp in (("baseline", 0.0), ("bsa", 10.0)):
        model = SpikingTransformer(tiny_config(num_classes=4), seed=seed + 1)
        bsa = BundleSparsityLoss(spec) if lambda_bsp else None
        trainer = Trainer(
            model, dataset,
            TrainConfig(epochs=epochs, batch_size=24, lr=3e-3, lambda_bsp=lambda_bsp, seed=seed),
            bsa_loss=bsa,
        )
        trainer.fit()
        distributions = model_bundle_distributions(model, dataset, spec)
        qk = {k: v for k, v in distributions.items() if k.endswith((".q", ".k"))}
        out[label] = {
            "accuracy": trainer.evaluate(dataset.x_test, dataset.y_test),
            "zero_feature_fraction": float(np.mean([d.zero_fraction for d in qk.values()])),
            "mean_active_bundles": float(np.mean([d.mean_active for d in qk.values()])),
        }
    return out


def experiment_fig6(seed: int = 0) -> dict:
    """Fig. 6 — density of the raw vs stratified workload, ± BSA."""
    spec = BundleSpec(2, 4)
    config = model_config("model1")
    out = {}
    for label, profile in (
        ("without_bsa", PROFILES["model1"]),
        ("with_bsa", PROFILES["model1"].bsa_variant()),
    ):
        trace = synthetic_trace(config, profile, spec, seed=seed)
        spikes = trace.layers(kind="proj_o", block=2)[0].input_spikes
        theta = theta_for_dense_fraction(spikes, spec, 0.5)
        workload = stratify(spikes, spec, theta)
        out[label] = {
            "overall": vars(density_report(spikes, spec)),
            "stratified_down_dense": vars(
                density_report(spikes, spec, workload.dense_features)
            ),
            "stratified_up_sparse": vars(
                density_report(spikes, spec, workload.sparse_features)
            ),
        }
    return out


def experiment_fig8(seed: int = 0) -> dict:
    """Fig. 8 — ECP sharpens attention: score-mass concentration stats."""
    spec = BundleSpec(2, 4)
    config = model_config("model3")
    trace = synthetic_trace(config, PROFILES["model3"].bsa_variant(), spec, seed=seed)
    record = trace.layers(kind="attention")[-1]  # final block, as in the figure
    q = merge_attention_heads(record.q)
    k = merge_attention_heads(record.k)
    ecp = ECPConfig(theta_q=6, theta_k=6, spec=spec)
    q_pruned, k_pruned, report = ecp_prune_qk(q, k, ecp)

    scores_before = np.einsum("tnd,tmd->tnm", q, k)
    scores_after = np.einsum("tnd,tmd->tnm", q_pruned, k_pruned)
    max_error = float(np.abs(scores_before - scores_after).max())
    total_mass = float(scores_before.sum())
    return {
        # ECP "enhances focus": the same attention mass concentrates into a
        # much smaller set of surviving score entries.
        "nonzero_score_fraction_before": float((scores_before > 0).mean()),
        "nonzero_score_fraction_after": float((scores_after > 0).mean()),
        "retained_mass_fraction": float(scores_after.sum()) / total_mass if total_mass else 1.0,
        "q_keep_fraction": report.q_token_keep_fraction,
        "k_keep_fraction": report.k_token_keep_fraction,
        "max_score_error": max_error,
        "certified_bound": report.error_bound,
    }


def experiment_fig17() -> dict:
    """Fig. 17 — synthesized power/area breakdown (anchor table)."""
    return {
        "bishop": {
            name: {"area_mm2": area, "power_mw": power}
            for name, (area, power) in BISHOP_BREAKDOWN.components.items()
        },
        "bishop_totals": {
            "area_mm2": BISHOP_BREAKDOWN.total_area_mm2,
            "power_mw": BISHOP_BREAKDOWN.total_power_mw,
        },
        "ptb_totals": {
            "area_mm2": PTB_BREAKDOWN.total_area_mm2,
            "power_mw": PTB_BREAKDOWN.total_power_mw,
        },
    }


def experiment_sec62() -> dict:
    """Sec. 6.2 — headline averages across the model zoo."""
    grid = endtoend.run_grid()
    summary = endtoend.headline_summary(grid)
    summary["per_model_speedup_vs_ptb"] = {
        m: c.speedup_vs("bishop_bsa_ecp") for m, c in grid.items()
    }
    return summary


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
EXPERIMENTS: dict[str, Callable[[], dict]] = {
    "table1": lambda: {
        row.network: {"family": row.family, "accuracy": row.accuracy}
        for row in table1.run_table1()
    },
    "table2": experiment_table2,
    "fig3": experiment_fig3,
    "fig5": experiment_fig5,
    "fig6": experiment_fig6,
    "fig8": experiment_fig8,
    "fig11": lambda: {
        model: {
            "mean_latency_ratio": fig11.layerwise_comparison(model).mean_latency_ratio(),
            "mean_energy_ratio": fig11.layerwise_comparison(model).mean_energy_ratio(),
        }
        for model in ("model1", "model2", "model3", "model4")
    },
    "fig12": lambda: {
        model: comparison.normalized_latency()
        for model, comparison in endtoend.run_grid().items()
    },
    "fig13": lambda: {
        model: comparison.normalized_energy()
        for model, comparison in endtoend.run_grid().items()
    },
    "fig14": lambda: {
        model: [vars(p) for p in fig14.ecp_hardware_sweep(model)]
        for model in ("model1", "model2", "model3", "model4")
    },
    "fig15": lambda: {
        "points": [vars(p) for p in fig15.stratification_sweep().points],
        "edp_gain_vs_ptb": fig15.stratification_sweep().edp_gain_vs_ptb,
        "worst_imbalance_penalty": fig15.stratification_sweep().worst_imbalance_penalty,
    },
    "fig16": lambda: [vars(p) for p in fig16.bundle_volume_sweep()],
    "fig17": experiment_fig17,
    "sec6.2-summary": experiment_sec62,
    "sec6.4-hetero": lambda: vars(hetero.heterogeneity_ablation()),
    "sec6.4-attn": lambda: {
        model: {
            "latency_gain": hetero.attention_core_comparison(model).latency_gain,
            "energy_gain": hetero.attention_core_comparison(model).energy_gain,
        }
        for model in ("model1", "model2", "model3", "model4")
    },
}


def run_experiment(name: str) -> dict:
    """Run one registered experiment by id."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; options: {sorted(EXPERIMENTS)}"
        ) from None
    return runner()
