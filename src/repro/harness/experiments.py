"""Experiment registry: one :class:`Experiment` per paper table/figure.

Each registry entry carries metadata — the paper artifact it reproduces, a
cost tier, and a typed parameter schema — plus the callable that computes a
JSON-serializable dict.  Benches, examples, EXPERIMENTS.md generation, and
the parallel runtime (``repro.runtime``) all consume the same artifacts.
See DESIGN.md's per-experiment index for the mapping to paper artifacts.

``smoke_params`` give a cheap-but-representative configuration for each
experiment; the contract tests and CI smoke runs use them so the full
registry can be exercised in seconds instead of minutes.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from ..algo import BundleSparsityLoss, ECPConfig, ecp_prune_qk
from ..arch import BISHOP_BREAKDOWN, PTB_BREAKDOWN
from ..arch.attention_core import merge_attention_heads
from ..bundles import BundleSpec, density_report
from ..model import (
    MODEL_ZOO,
    SpikingTransformer,
    flops_breakdown,
    model_config,
    tiny_config,
)
from ..arch.stratifier import stratify, theta_for_dense_fraction
from ..train import (
    TrainConfig,
    Trainer,
    make_image_dataset,
    model_bundle_distributions,
)
from . import endtoend, fig11, fig14, fig15, fig16, hetero, table1
from .synthetic import PROFILES, synthetic_trace

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ParamSpec",
    "run_experiment",
    "registry_code_hash",
]

ALL_MODELS = ("model1", "model2", "model3", "model4", "model5")
COST_TIERS = ("cheap", "medium", "heavy")


def _models(models: str) -> tuple[str, ...]:
    """Parse a model list, validating against the zoo.

    Accepts ``,`` or ``+`` as separators: on the CLI, ``,`` already
    delimits sweep-axis values, so a multi-model value in one grid point
    is written ``--param models=model1+model3``.
    """
    names = tuple(m.strip() for m in re.split(r"[+,]", models) if m.strip())
    unknown = [m for m in names if m not in MODEL_ZOO]
    if not names or unknown:
        raise ValueError(
            f"bad model list {models!r}; choose from {sorted(MODEL_ZOO)}"
        )
    return names


# ----------------------------------------------------------------------
# Registry schema
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParamSpec:
    """One overridable experiment parameter: its type, default, and docs."""

    kind: type
    default: int | float | str
    help: str = ""

    def cast(self, value: object) -> int | float | str:
        if isinstance(value, self.kind) and not (
            self.kind is int and isinstance(value, bool)
        ):
            return value
        try:
            return self.kind(value)  # type: ignore[call-arg]
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"expected {self.kind.__name__}, got {value!r}"
            ) from error


@dataclass(frozen=True)
class Experiment:
    """A registered paper artifact: callable plus run metadata."""

    id: str
    artifact: str
    fn: Callable[..., dict]
    cost: str = "cheap"
    params: Mapping[str, ParamSpec] = field(default_factory=dict)
    smoke_params: Mapping[str, int | float | str] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if self.cost not in COST_TIERS:
            raise ValueError(f"{self.id}: bad cost tier {self.cost!r}")
        unknown = set(self.smoke_params) - set(self.params)
        if unknown:
            raise ValueError(f"{self.id}: smoke params not in schema: {unknown}")

    def resolve_params(self, overrides: Mapping[str, object] | None = None) -> dict:
        """Defaults merged with ``overrides``, validated against the schema."""
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise ValueError(
                f"experiment {self.id!r} has no parameter(s) {sorted(unknown)};"
                f" schema: {sorted(self.params)}"
            )
        resolved = {name: spec.default for name, spec in self.params.items()}
        for name, value in overrides.items():
            resolved[name] = self.params[name].cast(value)
        return resolved

    def run(self, **overrides: object) -> dict:
        return self.fn(**self.resolve_params(overrides))


_SEED = ParamSpec(int, 0, "base RNG seed")
_BS_T = ParamSpec(int, 2, "bundle timestep extent BS_t")
_BS_N = ParamSpec(int, 4, "bundle token extent BS_n")
_PASSES = ParamSpec(
    str, "all",
    "compiler passes: all | none | '+'-joined subset of"
    " packing,stratify,ecp,schedule",
)
_MODEL = ParamSpec(str, "model3", "Table-2 model id")
_MODELS = ParamSpec(
    str, ",".join(ALL_MODELS[:4]), "model ids, ','- or '+'-separated"
)
_MIX = ParamSpec(
    str, "model4", "model mix, e.g. 'model4' or 'model4:0.7+model2:0.3'"
)


# ----------------------------------------------------------------------
# Experiment callables
# ----------------------------------------------------------------------
def experiment_table1(seed: int = 0, epochs: int = 12) -> dict:
    """Table 1 — trained-accuracy grid across network families."""
    return {
        row.network: {"family": row.family, "accuracy": row.accuracy}
        for row in table1.run_table1(seed=seed, epochs=epochs)
    }


def experiment_table2() -> dict:
    """Table 2 — the model zoo."""
    return {
        name: {
            "blocks": cfg.num_blocks,
            "timesteps": cfg.timesteps,
            "tokens": cfg.num_tokens,
            "features": cfg.embed_dim,
            "input_kind": cfg.input_kind,
        }
        for name, cfg in MODEL_ZOO.items()
    }


def experiment_fig3() -> dict:
    """Fig. 3 — FLOPs breakdown vs (N, D) and depth."""
    sweeps = {}
    for n_tokens, d in ((64, 384), (128, 256), (196, 128), (256, 384)):
        for blocks in (4, 8):
            # sequence input_kind frees N from the image-grid constraint;
            # the encoder-block FLOPs (the figure's subject) are identical.
            config = model_config("model1").with_overrides(
                name=f"sweep-N{n_tokens}-D{d}-L{blocks}",
                num_tokens=n_tokens,
                embed_dim=d,
                num_blocks=blocks,
                input_kind="sequence",
            )
            profile = flops_breakdown(config)
            sweeps[f"N{n_tokens}_D{d}_L{blocks}"] = {
                "attention_fraction": profile.attention_fraction,
                "mlp_fraction": profile.mlp_fraction,
                "attention_plus_mlp_fraction": profile.attention_plus_mlp_fraction,
                "total_flops": profile.total,
            }
    return sweeps


def experiment_fig5(seed: int = 0, epochs: int = 12) -> dict:
    """Fig. 5 — active-bundle distribution without vs with BSA (trained).

    λ is larger than the paper's 0.3-1.0 because our L_bsp is normalized
    per-bundle and training runs ~12 epochs instead of 300.
    """
    spec = BundleSpec(2, 2)
    dataset = make_image_dataset(num_classes=4, samples_per_class=24, image_size=16, seed=3)
    out = {}
    for label, lambda_bsp in (("baseline", 0.0), ("bsa", 10.0)):
        model = SpikingTransformer(tiny_config(num_classes=4), seed=seed + 1)
        bsa = BundleSparsityLoss(spec) if lambda_bsp else None
        trainer = Trainer(
            model, dataset,
            TrainConfig(epochs=epochs, batch_size=24, lr=3e-3, lambda_bsp=lambda_bsp, seed=seed),
            bsa_loss=bsa,
        )
        trainer.fit()
        distributions = model_bundle_distributions(model, dataset, spec)
        qk = {k: v for k, v in distributions.items() if k.endswith((".q", ".k"))}
        out[label] = {
            "accuracy": trainer.evaluate(dataset.x_test, dataset.y_test),
            "zero_feature_fraction": float(np.mean([d.zero_fraction for d in qk.values()])),
            "mean_active_bundles": float(np.mean([d.mean_active for d in qk.values()])),
        }
    return out


def experiment_fig6(seed: int = 0) -> dict:
    """Fig. 6 — density of the raw vs stratified workload, ± BSA."""
    spec = BundleSpec(2, 4)
    config = model_config("model1")
    out = {}
    for label, profile in (
        ("without_bsa", PROFILES["model1"]),
        ("with_bsa", PROFILES["model1"].bsa_variant()),
    ):
        trace = synthetic_trace(config, profile, spec, seed=seed)
        spikes = trace.layers(kind="proj_o", block=2)[0].input_spikes
        theta = theta_for_dense_fraction(spikes, spec, 0.5)
        workload = stratify(spikes, spec, theta)
        out[label] = {
            "overall": vars(density_report(spikes, spec)),
            "stratified_down_dense": vars(
                density_report(spikes, spec, workload.dense_features)
            ),
            "stratified_up_sparse": vars(
                density_report(spikes, spec, workload.sparse_features)
            ),
        }
    return out


def experiment_fig8(seed: int = 0) -> dict:
    """Fig. 8 — ECP sharpens attention: score-mass concentration stats."""
    spec = BundleSpec(2, 4)
    config = model_config("model3")
    trace = synthetic_trace(config, PROFILES["model3"].bsa_variant(), spec, seed=seed)
    record = trace.layers(kind="attention")[-1]  # final block, as in the figure
    q = merge_attention_heads(record.q)
    k = merge_attention_heads(record.k)
    ecp = ECPConfig(theta_q=6, theta_k=6, spec=spec)
    q_pruned, k_pruned, report = ecp_prune_qk(q, k, ecp)

    scores_before = np.einsum("tnd,tmd->tnm", q, k)
    scores_after = np.einsum("tnd,tmd->tnm", q_pruned, k_pruned)
    max_error = float(np.abs(scores_before - scores_after).max())
    total_mass = float(scores_before.sum())
    return {
        # ECP "enhances focus": the same attention mass concentrates into a
        # much smaller set of surviving score entries.
        "nonzero_score_fraction_before": float((scores_before > 0).mean()),
        "nonzero_score_fraction_after": float((scores_after > 0).mean()),
        "retained_mass_fraction": float(scores_after.sum()) / total_mass if total_mass else 1.0,
        "q_keep_fraction": report.q_token_keep_fraction,
        "k_keep_fraction": report.k_token_keep_fraction,
        "max_score_error": max_error,
        "certified_bound": report.error_bound,
    }


def experiment_fig11(models: str = _MODELS.default) -> dict:
    """Fig. 11 — layerwise Bishop-vs-PTB latency/energy ratios."""
    return {
        model: {
            "mean_latency_ratio": fig11.layerwise_comparison(model).mean_latency_ratio(),
            "mean_energy_ratio": fig11.layerwise_comparison(model).mean_energy_ratio(),
        }
        for model in _models(models)
    }


def experiment_fig12(
    models: str = ",".join(ALL_MODELS), seed: int = 0, bs_t: int = 2, bs_n: int = 4
) -> dict:
    """Fig. 12 — end-to-end latency across the five systems."""
    grid = endtoend.run_grid(_models(models), bs_t=bs_t, bs_n=bs_n, seed=seed)
    return {
        model: {
            "normalized_latency": comparison.normalized_latency(),
            "latency_ms": {
                system: result.latency_s * 1e3
                for system, result in comparison.results.items()
            },
            "speedup_vs_ptb": {
                system: comparison.speedup_vs(system)
                for system in ("bishop", "bishop_bsa", "bishop_bsa_ecp")
            },
        }
        for model, comparison in grid.items()
    }


def experiment_fig13(
    models: str = ",".join(ALL_MODELS), seed: int = 0, bs_t: int = 2, bs_n: int = 4
) -> dict:
    """Fig. 13 — end-to-end energy across the five systems."""
    grid = endtoend.run_grid(_models(models), bs_t=bs_t, bs_n=bs_n, seed=seed)
    return {
        model: {
            "normalized_energy": comparison.normalized_energy(),
            "energy_mj": {
                system: result.energy_mj
                for system, result in comparison.results.items()
            },
            "energy_gain_vs_ptb": {
                system: comparison.energy_gain_vs(system)
                for system in ("bishop", "bishop_bsa", "bishop_bsa_ecp")
            },
        }
        for model, comparison in grid.items()
    }


def experiment_fig14(models: str = _MODELS.default) -> dict:
    """Fig. 14 — ECP threshold sweep over the SSA layers."""
    return {
        model: [vars(p) for p in fig14.ecp_hardware_sweep(model)]
        for model in _models(models)
    }


def experiment_fig15(model: str = "model3") -> dict:
    """Fig. 15 — stratification-threshold sweep."""
    sweep = fig15.stratification_sweep(model)
    return {
        "model": model,
        "points": [{**vars(p), "edp": p.edp} for p in sweep.points],
        "balanced": {**vars(sweep.balanced), "edp": sweep.balanced.edp},
        "edp_gain_vs_ptb": sweep.edp_gain_vs_ptb,
        "worst_imbalance_penalty": sweep.worst_imbalance_penalty,
    }


def experiment_fig16(model: str = "model3") -> dict:
    """Fig. 16 — TTB bundle-volume sweep."""
    points = fig16.bundle_volume_sweep(model)
    best = min(points, key=lambda p: p.total_latency_s)
    return {
        "model": model,
        "points": [{**vars(p), "volume": p.volume} for p in points],
        "best_volume": {"bs_t": best.bs_t, "bs_n": best.bs_n, "volume": best.volume},
    }


def experiment_fig17() -> dict:
    """Fig. 17 — synthesized power/area breakdown (anchor table)."""
    return {
        "bishop": {
            name: {"area_mm2": area, "power_mw": power}
            for name, (area, power) in BISHOP_BREAKDOWN.components.items()
        },
        "bishop_totals": {
            "area_mm2": BISHOP_BREAKDOWN.total_area_mm2,
            "power_mw": BISHOP_BREAKDOWN.total_power_mw,
        },
        "ptb_totals": {
            "area_mm2": PTB_BREAKDOWN.total_area_mm2,
            "power_mw": PTB_BREAKDOWN.total_power_mw,
        },
    }


def experiment_sec62(
    models: str = ",".join(ALL_MODELS), seed: int = 0, bs_t: int = 2, bs_n: int = 4
) -> dict:
    """Sec. 6.2 — headline averages across the model zoo."""
    grid = endtoend.run_grid(_models(models), bs_t=bs_t, bs_n=bs_n, seed=seed)
    summary = endtoend.headline_summary(grid)
    summary["per_model_speedup_vs_ptb"] = {
        m: c.speedup_vs("bishop_bsa_ecp") for m, c in grid.items()
    }
    return summary


def experiment_sec64_hetero(
    model: str = "model3", bs_t: int = 2, bs_n: int = 4, seed: int = 0
) -> dict:
    """Sec. 6.4 — heterogeneous cores vs dense-only ablation."""
    return vars(hetero.heterogeneity_ablation(model, bs_t=bs_t, bs_n=bs_n, seed=seed))


def experiment_sec64_attn(models: str = _MODELS.default) -> dict:
    """Sec. 6.4 — attention-core comparison vs PTB."""
    return {
        model: {
            "latency_gain": hetero.attention_core_comparison(model).latency_gain,
            "energy_gain": hetero.attention_core_comparison(model).energy_gain,
        }
        for model in _models(models)
    }


# ----------------------------------------------------------------------
# Serving experiments (beyond the paper: multi-request engine simulation)
# ----------------------------------------------------------------------
def _serve_setup(
    mix: str, bs_t: int, bs_n: int, seed: int, rho: float, passes: str = "all"
):
    """Shared serving preamble: parse the mix, compile per-model profiles
    (under the requested compiler passes), and derive the arrival rate
    realizing load ``rho`` on the mix's mean single-request latency.
    Returns ``(weights, profiles, rate_rps)``."""
    # Imported lazily: repro.serve builds on repro.harness.synthetic, so a
    # top-level import would cycle through the package initializer.
    from ..serve import parse_model_mix, request_profile

    weights = parse_model_mix(mix)
    profiles = {
        m: request_profile(m, bs_t, bs_n, seed, passes=passes) for m in weights
    }
    mean_latency = sum(w * profiles[m].single_latency_s for m, w in weights.items())
    return weights, profiles, rho / mean_latency


def _serve_arrivals(
    arrival: str,
    num_requests: int,
    rate: float,
    weights: dict[str, float],
    seed: int,
    burst_factor: float,
):
    from ..serve import bursty_arrivals, poisson_arrivals

    if arrival == "poisson":
        return poisson_arrivals(num_requests, rate, weights, seed)
    if arrival == "bursty":
        return bursty_arrivals(
            num_requests, rate, weights, seed, burst_factor=burst_factor
        )
    raise ValueError(f"unknown arrival kind {arrival!r}; use poisson|bursty")


def experiment_serve_latency_cdf(
    mix: str = "model4",
    rho: float = 0.7,
    num_requests: int = 400,
    seed: int = 0,
    arrival: str = "poisson",
    burst_factor: float = 8.0,
    max_batch: int = 1,
    max_inflight: int = 2,
    bs_t: int = 2,
    bs_n: int = 4,
    passes: str = "all",
) -> dict:
    """Serving — latency percentiles/throughput under an arrival stream.

    ``rho`` is the offered load relative to one chip's single-request
    service rate on the mix's mean inference latency; the arrival rate is
    derived from it so the experiment is meaningful across model mixes.
    ``passes`` selects the compiler passes the request programs are built
    with (program-cached across runs and worker processes).
    """
    from ..serve import SchedulerConfig, simulate_serving

    weights, profiles, rate = _serve_setup(mix, bs_t, bs_n, seed, rho, passes)
    requests = _serve_arrivals(
        arrival, num_requests, rate, weights, seed, burst_factor
    )
    report = simulate_serving(
        requests,
        SchedulerConfig(max_batch=max_batch, max_inflight=max_inflight),
        profiles=profiles,
        bs_t=bs_t,
        bs_n=bs_n,
        seed=seed,
    )
    return {
        "mix": weights,
        "arrival": arrival,
        "target_rho": rho,
        "passes": passes,
        "arrival_rate_rps": rate,
        "single_latency_ms": {
            m: profiles[m].single_latency_s * 1e3 for m in weights
        },
        **report.to_dict(),
    }


def experiment_serve_batch_sweep(
    mix: str = "model4",
    rho: float = 1.5,
    num_requests: int = 300,
    seed: int = 0,
    batch_sizes: str = "1+2+4+8",
    max_inflight: int = 2,
    bs_t: int = 2,
    bs_n: int = 4,
    passes: str = "all",
) -> dict:
    """Serving — batch-size sweep under backlog.

    The same (overloaded, so queues actually form) arrival stream is
    served at each ``max_batch``; batching amortizes weight streaming, so
    the sweep exposes the throughput / tail-latency / energy-per-request
    trade-off.
    """
    from ..serve import SchedulerConfig, simulate_serving

    weights, profiles, rate = _serve_setup(mix, bs_t, bs_n, seed, rho, passes)
    sizes = [int(b) for b in batch_sizes.split("+") if b.strip()]
    if not sizes or any(b < 1 for b in sizes):
        raise ValueError(f"bad batch_sizes {batch_sizes!r}; e.g. '1+2+4'")
    requests = _serve_arrivals("poisson", num_requests, rate, weights, seed, 8.0)
    points = {}
    for batch in sizes:
        report = simulate_serving(
            requests,
            SchedulerConfig(max_batch=batch, max_inflight=max_inflight),
            profiles=profiles,
            bs_t=bs_t,
            bs_n=bs_n,
            seed=seed,
        )
        points[str(batch)] = {
            "throughput_rps": report.throughput_rps,
            "p95_latency_ms": report.latency_percentiles_ms["p95"],
            "mean_batch_size": report.mean_batch_size,
            "energy_per_request_mj": report.energy_per_request_mj,
            "dram_utilization": report.utilization.get("dram", 0.0),
        }
    return {
        "mix": weights,
        "target_rho": rho,
        "arrival_rate_rps": rate,
        "points": points,
    }


# ----------------------------------------------------------------------
# Continuous batching / preemption / multi-tenant serving experiments
# ----------------------------------------------------------------------
_CONTINUOUS_PASSES = "packing+stratify+ecp"


def _tier_latencies(report) -> dict[str, list[float]]:
    tiers: dict[str, list[float]] = {}
    for request in report.requests:
        tiers.setdefault(str(request.priority), []).append(request.latency_s)
    return tiers


def _tier_stats(report) -> dict[str, dict]:
    from ..serve import latency_stats

    return {
        tier: {
            "count": stats.count,
            "mean_ms": stats.mean_ms,
            "p99_ms": stats.percentiles_ms["p99"],
        }
        for tier, samples in sorted(_tier_latencies(report).items())
        for stats in (latency_stats(samples),)
    }


def experiment_serve_continuous_batching(
    mix: str = "model4",
    rho: float = 1.5,
    num_requests: int = 300,
    priority_mix: str = "0:0.8+1:0.2",
    seed: int = 0,
    max_batch: int = 4,
    max_inflight: int = 2,
    bs_t: int = 2,
    bs_n: int = 4,
    passes: str = _CONTINUOUS_PASSES,
) -> dict:
    """Serving — continuous batching vs static same-model batching.

    One arrival trace, served three ways: static batching (priority
    blind, so the plain and prioritized streams yield identical
    per-request latencies); continuous batching on the prioritized
    stream (preempted entries checkpoint mid-model and later *join*
    other in-flight groups at their stage — the join/leave counters);
    and the *degenerate* continuous configuration (one tier, joins and
    preemption off) which must reproduce the static per-request
    latencies to float precision — the conformance pin that keeps the
    two schedulers semantically anchored.  The default ``passes`` omit
    the prefetch-scheduling pass because continuous mode executes
    stage-serially (a preemptable boundary per compiled stage precludes
    the depth-1 weight-prefetch replay).
    """
    from ..serve import SchedulerConfig, assign_priorities, simulate_serving

    weights, profiles, rate = _serve_setup(mix, bs_t, bs_n, seed, rho, passes)
    plain = _serve_arrivals("poisson", num_requests, rate, weights, seed, 8.0)
    prioritized = assign_priorities(plain, priority_mix, seed=seed)
    common = dict(profiles=profiles, bs_t=bs_t, bs_n=bs_n, seed=seed)
    static = simulate_serving(
        plain,
        SchedulerConfig(max_batch=max_batch, max_inflight=max_inflight),
        **common,
    )
    continuous = simulate_serving(
        prioritized,
        SchedulerConfig(
            max_batch=max_batch, max_inflight=max_inflight, mode="continuous"
        ),
        **common,
    )
    degenerate = simulate_serving(
        plain,
        SchedulerConfig(
            max_batch=max_batch, max_inflight=max_inflight,
            mode="continuous", allow_join=False, preempt=False,
        ),
        **common,
    )
    conformance = max(
        (
            abs(a.latency_s - b.latency_s)
            for a, b in zip(static.requests, degenerate.requests)
        ),
        default=0.0,
    )
    top = max(
        (str(r.priority) for r in continuous.requests), key=int, default="0"
    )
    return {
        "mix": weights,
        "priority_mix": priority_mix,
        "target_rho": rho,
        "passes": passes,
        "arrival_rate_rps": rate,
        "static": static.to_dict(),
        "continuous": continuous.to_dict(),
        "continuous_joins": continuous.continuous_joins,
        "preemptions": continuous.preemptions,
        "tiers": _tier_stats(continuous),
        "degenerate_latency_conformance_s": conformance,
        "high_tier_p99_gain": (
            static.latency_percentiles_ms["p99"]
            / _tier_stats(continuous)[top]["p99_ms"]
            if _tier_stats(continuous).get(top, {}).get("p99_ms", 0.0) > 0
            else 0.0
        ),
    }


def experiment_serve_preemption_slo(
    mix: str = "model4",
    rho: float = 2.0,
    num_requests: int = 300,
    priority_mix: str = "0:0.8+1:0.2",
    seed: int = 0,
    max_inflight: int = 2,
    bs_t: int = 2,
    bs_n: int = 4,
    passes: str = _CONTINUOUS_PASSES,
) -> dict:
    """Serving — what stage-boundary preemption buys the high tier.

    A saturated stream (``rho > 1``) with a priority mix is served by
    FIFO, by continuous scheduling without preemption, and by continuous
    scheduling with preemption.  Preemption must strictly improve the
    high-priority p99 over FIFO while conserving total work: all three
    runs execute the same stages at batch 1, so per-resource busy
    seconds agree to float tolerance (``busy_conservation_rel_err``) —
    preemption reorders work, it never creates or destroys any.
    """
    from ..serve import (
        SchedulerConfig,
        assign_priorities,
        simulate_serving,
    )

    weights, profiles, rate = _serve_setup(mix, bs_t, bs_n, seed, rho, passes)
    requests = assign_priorities(
        _serve_arrivals("poisson", num_requests, rate, weights, seed, 8.0),
        priority_mix,
        seed=seed,
    )
    common = dict(
        profiles=profiles, bs_t=bs_t, bs_n=bs_n, seed=seed,
        record_timeline=False,
    )
    fifo = simulate_serving(
        requests, SchedulerConfig(max_inflight=max_inflight), **common
    )
    no_preempt = simulate_serving(
        requests,
        SchedulerConfig(
            max_inflight=max_inflight, mode="continuous", preempt=False
        ),
        **common,
    )
    preempt = simulate_serving(
        requests,
        SchedulerConfig(max_inflight=max_inflight, mode="continuous"),
        **common,
    )
    # Work conservation: identical per-resource busy seconds across the
    # three schedules (float sum-order drift only).
    units = sorted(fifo.run.utilization())
    conservation = max(
        (
            abs(report.run.busy_s(unit) - fifo.run.busy_s(unit))
            / max(fifo.run.busy_s(unit), 1e-30)
            for report in (no_preempt, preempt)
            for unit in units
            if fifo.run.busy_s(unit) > 0
        ),
        default=0.0,
    )
    tiers = {
        "fifo": _tier_stats(fifo),
        "continuous_no_preempt": _tier_stats(no_preempt),
        "continuous_preempt": _tier_stats(preempt),
    }
    top = max(
        (str(r.priority) for r in preempt.requests), key=int, default="0"
    )
    fifo_p99 = tiers["fifo"].get(top, {}).get("p99_ms", 0.0)
    preempt_p99 = tiers["continuous_preempt"].get(top, {}).get("p99_ms", 0.0)
    return {
        "mix": weights,
        "priority_mix": priority_mix,
        "target_rho": rho,
        "passes": passes,
        "arrival_rate_rps": rate,
        "tiers": tiers,
        "preemptions": preempt.preemptions,
        "top_tier": top,
        "high_priority_p99_ms": {"fifo": fifo_p99, "preempt": preempt_p99},
        "high_priority_p99_improves": preempt_p99 < fifo_p99,
        "busy_conservation_rel_err": conservation,
    }


def experiment_cluster_multitenant_fairness(
    mix: str = "model4",
    rho: float = 3.0,
    tenants: str = "gold:3+silver:1",
    fleet_size: int = 2,
    num_requests: int = 400,
    seed: int = 0,
    quota: int = 0,
    max_batch: int = 1,
    max_inflight: int = 2,
    bs_t: int = 2,
    bs_n: int = 4,
    passes: str = _CONTINUOUS_PASSES,
) -> dict:
    """Cluster — weighted fair queuing across tenants at saturation.

    Tenants are assigned uniformly (each offers the same load), so while
    the backlog lasts the continuous scheduler's WFQ rule serves tenants
    in proportion to their declared weights — the payload reports the
    served share inside the saturated window (finishes before the last
    arrival) against the weight share, plus the per-tenant latency
    ordering (heavier weight, lower p99).  ``quota`` (> 0) additionally
    bounds each tenant's outstanding requests at admission,
    demonstrating per-tenant shedding in the report block.
    """
    from ..cluster import (
        AdmissionConfig,
        ClusterSimulation,
        homogeneous_fleet,
    )
    from ..serve import (
        SchedulerConfig,
        TenantSpec,
        assign_tenants,
        parse_tenants,
    )

    specs = parse_tenants(tenants)
    if quota:
        specs = tuple(
            TenantSpec(s.name, s.weight, quota) for s in specs
        )
    weights, profiles, rate = _serve_setup(mix, bs_t, bs_n, seed, rho, passes)
    stream = assign_tenants(
        _serve_arrivals(
            "poisson", num_requests, rate * fleet_size, weights, seed, 8.0
        ),
        specs,
        seed=seed,
    )
    sim = ClusterSimulation(
        homogeneous_fleet(fleet_size),
        SchedulerConfig(
            max_batch=max_batch, max_inflight=max_inflight, mode="continuous"
        ),
        admission=AdmissionConfig(),
        bs_t=bs_t,
        bs_n=bs_n,
        seed=seed,
        passes=passes,
        tenants=specs,
    )
    report = sim.run(stream)
    # A finite run-to-completion stream serves *everything*, so the
    # full-run service share converges to the offered share (uniform)
    # regardless of weights.  WFQ's signature shows while the backlog
    # lasts: served share inside the saturated window (finishes before
    # the last arrival), and the per-tenant latency ordering.
    window_end = max((r.arrival_s for r in stream), default=0.0)
    window_counts: dict[str, int] = {spec.name: 0 for spec in specs}
    for chip in sim.chips:
        for record in chip.served:
            if record.tenant and record.finish_s <= window_end:
                window_counts[record.tenant] = (
                    window_counts.get(record.tenant, 0) + 1
                )
    window_total = sum(window_counts.values())
    total_weight = sum(spec.weight for spec in specs)
    fairness = {
        spec.name: {
            "weight_share": spec.weight / total_weight,
            "window_served_share": (
                window_counts.get(spec.name, 0) / window_total
                if window_total else 0.0
            ),
            "service_share": report.tenants[spec.name]["service_share"],
            "p99_ms": report.tenants[spec.name]["latency_ms"]["p99"],
        }
        for spec in specs
    }
    worst = max(
        (
            abs(row["window_served_share"] - row["weight_share"])
            for row in fairness.values()
        ),
        default=0.0,
    )
    by_weight = sorted(specs, key=lambda s: s.weight, reverse=True)
    latency_ordered = all(
        fairness[a.name]["p99_ms"] <= fairness[b.name]["p99_ms"]
        for a, b in zip(by_weight, by_weight[1:])
        if a.weight > b.weight
    )
    return {
        "mix": weights,
        "tenants": tenants,
        "quota": quota,
        "target_rho": rho,
        "passes": passes,
        "fleet_size": fleet_size,
        "served": report.served,
        "shed": report.shed,
        "window_served": window_total,
        "per_tenant": report.to_dict().get("tenants", {}),
        "fairness": fairness,
        "worst_window_share_error": worst,
        "latency_weight_ordered": latency_ordered,
    }


def experiment_serve_continuous_bench(
    mix: str = "model4",
    rho: float = 1.5,
    num_requests: int = 400,
    repeats: int = 3,
    seed: int = 0,
    max_batch: int = 4,
    max_inflight: int = 2,
    passes: str = _CONTINUOUS_PASSES,
) -> dict:
    """Serving — continuous-scheduler simulation overhead vs static.

    Times the same stream through the static and continuous schedulers
    (best of ``repeats``); the ``bench_metrics`` block lands in the
    ``repro bench`` JSON so the continuous path's simulator cost is
    tracked across PRs alongside the conformance residual.
    """
    import time as _time

    from ..serve import SchedulerConfig, simulate_serving

    weights, profiles, rate = _serve_setup(mix, 2, 4, seed, rho, passes)
    requests = _serve_arrivals("poisson", num_requests, rate, weights, seed, 8.0)
    common = dict(profiles=profiles, seed=seed)

    def _best(config: "SchedulerConfig") -> tuple[float, object]:
        best = float("inf")
        report = None
        for _ in range(max(1, repeats)):
            started = _time.perf_counter()
            report = simulate_serving(requests, config, **common)
            best = min(best, _time.perf_counter() - started)
        return best, report

    static_s, static = _best(
        SchedulerConfig(max_batch=max_batch, max_inflight=max_inflight)
    )
    continuous_s, continuous = _best(SchedulerConfig(
        max_batch=max_batch, max_inflight=max_inflight, mode="continuous",
        allow_join=False, preempt=False,
    ))
    conformance = max(
        (
            abs(a.latency_s - b.latency_s)
            for a, b in zip(static.requests, continuous.requests)
        ),
        default=0.0,
    )
    overhead = continuous_s / static_s if static_s > 0 else 0.0
    return {
        "mix": weights,
        "target_rho": rho,
        "num_requests": num_requests,
        "repeats": repeats,
        "static_wall_s": static_s,
        "continuous_wall_s": continuous_s,
        "overhead_x": overhead,
        "degenerate_latency_conformance_s": conformance,
        "bench_metrics": {
            "continuous_overhead_x": overhead,
            "conformance_residual_s": conformance,
        },
    }


# ----------------------------------------------------------------------
# Compiler experiments (beyond the paper: pass-pipeline ablation)
# ----------------------------------------------------------------------
def experiment_compiler_pass_ablation(
    model: str = "model3",
    dram_gbps: float = 2.4,
    theta_q: float = 6.0,
    theta_k: float = 6.0,
    seed: int = 0,
    bs_t: int = 2,
    bs_n: int = 4,
) -> dict:
    """Compiler — what each optimization pass contributes.

    The same trace is compiled six times: all passes on, each optimization
    pass individually off, and all off.  The chip is the serving
    configuration with a configurable DRAM bandwidth; the 2.4 GB/s default
    models an LPDDR-class edge deployment where the memory system is the
    scarce resource and the prefetch scheduling pass has room to work — at
    the paper's 76.8 GB/s the Table-2 zoo is uniformly compute-bound, the
    scheduling pass is neutral, and only packing/stratify/ECP move the
    needle (set ``dram_gbps=76.8`` to see exactly that).
    """
    import dataclasses

    from ..algo import ECPConfig
    from ..compiler import PassConfig, ProgramCache, compile_model
    from ..serve.profiles import profile_config

    if dram_gbps <= 0:
        raise ValueError(f"dram_gbps must be positive, got {dram_gbps}")
    base = profile_config(bs_t, bs_n)
    config = base.with_overrides(
        dram=dataclasses.replace(
            base.dram, bandwidth_bytes_per_s=dram_gbps * 1e9
        )
    )
    ecp = ECPConfig(theta_q=theta_q, theta_k=theta_k, spec=config.bundle_spec)
    variants = {
        "all": PassConfig(),
        "no_packing": PassConfig().without("packing"),
        "no_stratify": PassConfig().without("stratify"),
        "no_ecp": PassConfig().without("ecp"),
        "no_schedule": PassConfig().without("schedule"),
        "none": PassConfig.parse("none"),
    }
    # Off-default chips stay out of the shared on-disk program store; the
    # run-level result cache already memoizes the whole experiment.
    cache = ProgramCache(None)
    rows = {}
    for name, pass_config in variants.items():
        program = compile_model(
            model, config, seed=seed, ecp=ecp, passes=pass_config, cache=cache
        )
        scheduled_ms = (
            program.scheduled_latency_s * 1e3
            if program.scheduled_latency_s is not None
            else None
        )
        rows[name] = {
            "passes": pass_config.spec(),
            "pipeline": list(program.passes),
            "stages": len(program.stages),
            "serial_latency_ms": program.serial_latency_s * 1e3,
            "scheduled_latency_ms": scheduled_ms,
            "request_latency_ms": program.request_latency_s * 1e3,
            "pipelined_bound_ms": program.pipelined_bound_s * 1e3,
            "dynamic_energy_mj": program.dynamic_pj * 1e-9,
            "dram_mb": program.dram_bytes / 1e6,
            "bundle_occupancy": program.bundle_occupancy(),
            "tile_counts": program.tile_counts(),
        }
    full = rows["all"]["request_latency_ms"]
    baseline = rows["none"]["request_latency_ms"]
    no_schedule = rows["no_schedule"]["request_latency_ms"]
    return {
        "model": model,
        "dram_gbps": dram_gbps,
        "ecp": {"theta_q": theta_q, "theta_k": theta_k},
        "variants": rows,
        "summary": {
            "speedup_all_vs_none": baseline / full if full else 0.0,
            # The scheduling pass in isolation: all-on (scheduled makespan)
            # vs the same mapping without the pass (serial makespan).
            "schedule_makespan_gain": (
                1.0 - full / no_schedule if no_schedule else 0.0
            ),
            "pass_cost_ms": {
                name: rows[name]["request_latency_ms"] - full
                for name in ("no_packing", "no_stratify", "no_ecp", "no_schedule")
            },
        },
    }


# ----------------------------------------------------------------------
# DSE experiments (beyond the paper: joint chip-design-space search)
# ----------------------------------------------------------------------
def experiment_dse_point(
    model: str = "model3", point: str = "{}", seed: int = 0
) -> dict:
    """DSE — compile + engine-measure one chip design point.

    ``point`` is a JSON object over the default space's parameters
    (missing keys take the paper defaults).  This is the unit the
    ``repro dse`` explorer fans out through the parallel runtime: the
    result cache keys on (model, point, seed), so re-running a search —
    or growing its budget — replays evaluated candidates from disk.
    """
    import json as _json

    from ..dse import evaluate_point

    return evaluate_point(model, _json.loads(point), seed=seed)


def experiment_dse_pareto_frontier(
    model: str = "model3",
    strategy: str = "random",
    budget: int = 48,
    objectives: str = "latency_ms+energy_mj+area_mm2",
    seed: int = 0,
) -> dict:
    """DSE — multi-objective search of the Bishop chip space.

    Searches ``budget`` candidate chips with the chosen strategy and
    extracts the Pareto frontier over the ``'+'``-separated objectives.
    The paper's Sec.-6.1 chip is always evaluated as the reference; the
    report records whether it lands on the computed frontier and its
    ε-slack when it does not.  Candidates evaluate inline here (the
    runtime's result cache memoizes the whole experiment); the
    ``repro dse`` CLI runs the same search with per-candidate caching
    and worker-pool parallelism.
    """
    from ..dse import DSEConfig, parse_objectives, run_dse

    return run_dse(
        DSEConfig(
            model=model,
            strategy=strategy,
            budget=budget,
            objectives=parse_objectives(objectives),
            seed=seed,
        )
    )


def experiment_dse_strategy_ablation(
    model: str = "model4",
    strategies: str = "grid+random+evolutionary",
    budget: int = 32,
    objectives: str = "latency_ms+energy_mj+area_mm2",
    seed: int = 0,
) -> dict:
    """DSE — search-strategy comparison at a fixed evaluation budget.

    Every strategy searches the same space with the same budget and
    seed; the combined frontier over the union of all candidates is the
    yardstick.  Per strategy the report carries its frontier size, its
    best value per objective, and its *coverage* — the fraction of
    combined-frontier designs it discovered (grid prefixes enumerate a
    corner of the space; random and evolutionary trade breadth for
    refinement around the frontier).
    """
    from ..dse import (
        DSEConfig,
        frontier_slack,
        pareto_frontier,
        parse_objectives,
        run_dse,
    )
    from ..dse.space import point_key

    names = [s.strip() for s in strategies.split("+") if s.strip()]
    if not names:
        raise ValueError(f"bad strategies {strategies!r}; e.g. 'grid+random'")
    keys = parse_objectives(objectives)
    reports = {
        name: run_dse(
            DSEConfig(
                model=model, strategy=name, budget=budget,
                objectives=keys, seed=seed,
            )
        )
        for name in names
    }
    pool: list[dict] = []
    seen: set[str] = set()
    for report in reports.values():
        for candidate in report["candidates"]:
            key = point_key(candidate["point"])
            if key not in seen:
                seen.add(key)
                pool.append(candidate)
    combined_indices = pareto_frontier([c["metrics"] for c in pool], keys)
    combined_keys = {point_key(pool[i]["point"]) for i in combined_indices}
    combined_metrics = [pool[i]["metrics"] for i in combined_indices]
    results = {}
    for name, report in reports.items():
        found = {point_key(c["point"]) for c in report["candidates"]}
        own_frontier = [e["metrics"] for e in report["frontier"]]
        results[name] = {
            "evaluated": report["evaluated"],
            "frontier_size": len(report["frontier"]),
            "coverage_of_combined_frontier": (
                len(combined_keys & found) / len(combined_keys)
                if combined_keys
                else 0.0
            ),
            # How far this strategy's frontier sits from the combined one
            # (mean slack of its frontier members, 0 = every member holds up).
            "mean_frontier_slack": (
                sum(
                    frontier_slack(m, combined_metrics, keys)
                    for m in own_frontier
                ) / len(own_frontier)
                if own_frontier
                else 0.0
            ),
            "best": report["best"],
        }
    return {
        "model": model,
        "budget": budget,
        "seed": seed,
        "objectives": list(keys),
        "combined_frontier_size": len(combined_indices),
        "union_candidates": len(pool),
        "strategies": results,
    }


# ----------------------------------------------------------------------
# Cluster experiments (beyond the paper: multi-chip fleet simulation)
# ----------------------------------------------------------------------
def experiment_cluster_scaling_curve(
    mix: str = "model4",
    rho: float = 5.0,
    fleet_sizes: str = "1+2+4",
    kind: str = "standard",
    policy: str = "least_work",
    num_requests: int = 600,
    seed: int = 0,
    max_batch: int = 1,
    max_inflight: int = 2,
    bs_t: int = 2,
    bs_n: int = 4,
    passes: str = "all",
) -> dict:
    """Cluster — throughput and latency percentiles vs fleet size.

    ``rho`` is offered load relative to ONE chip *of the fleet's kind*
    (so the default 5.0 saturates small fleets); every fleet size serves
    the SAME arrival stream, and the single-chip ``repro.serve``
    simulation of that stream — on the same kind's profiles — is included
    as the reference (the N=1 fleet must match it).
    """
    from ..cluster import ClusterSimulation, chip_config, homogeneous_fleet
    from ..serve import (
        SchedulerConfig,
        parse_model_mix,
        request_profile,
        simulate_serving,
    )

    weights = parse_model_mix(mix)
    config = chip_config(kind, bs_t, bs_n)
    profiles = {
        model: request_profile(model, seed=seed, config=config, passes=passes)
        for model in weights
    }
    mean_latency = sum(
        weight * profiles[model].single_latency_s
        for model, weight in weights.items()
    )
    rate = rho / mean_latency
    sizes = [int(n) for n in fleet_sizes.split("+") if n.strip()]
    if not sizes or any(n < 1 for n in sizes):
        raise ValueError(f"bad fleet_sizes {fleet_sizes!r}; e.g. '1+2+4'")
    requests = _serve_arrivals("poisson", num_requests, rate, weights, seed, 8.0)
    scheduler = SchedulerConfig(max_batch=max_batch, max_inflight=max_inflight)
    single = simulate_serving(
        requests, scheduler, profiles=profiles, bs_t=bs_t, bs_n=bs_n, seed=seed
    )
    points = {}
    for size in sizes:
        report = ClusterSimulation(
            homogeneous_fleet(size, kind),
            scheduler,
            policy=policy,
            bs_t=bs_t,
            bs_n=bs_n,
            seed=seed,
            passes=passes,
        ).run(requests)
        points[str(size)] = {
            "throughput_rps": report.throughput_rps,
            "p50_latency_ms": report.latency_percentiles_ms["p50"],
            "p99_latency_ms": report.latency_percentiles_ms["p99"],
            "speedup_vs_single_chip": (
                report.throughput_rps / single.throughput_rps
                if single.throughput_rps
                else 0.0
            ),
            "energy_per_request_mj": report.energy_per_request_mj,
        }
    return {
        "mix": weights,
        "kind": kind,
        "policy": policy,
        "target_rho": rho,
        "arrival_rate_rps": rate,
        "single_chip": {
            "throughput_rps": single.throughput_rps,
            "p50_latency_ms": single.latency_percentiles_ms["p50"],
            "p99_latency_ms": single.latency_percentiles_ms["p99"],
        },
        "points": points,
    }


def experiment_cluster_routing_ablation(
    mix: str = "model2:0.5+model4:0.5",
    fleet: str = "dense_heavy:2+sparse_heavy:2",
    rho: float = 0.85,
    policies: str = "round_robin+least_work+sparsity",
    num_requests: int = 800,
    seed: int = 0,
    queue_capacity: int = 0,
    max_batch: int = 1,
    max_inflight: int = 2,
    bs_t: int = 2,
    bs_n: int = 4,
    passes: str = "all",
) -> dict:
    """Cluster — routing-policy comparison at a fixed (heterogeneous) fleet.

    ``rho`` is offered load relative to the FLEET's aggregate capacity on
    the mix; the same stream is routed under each policy.  With the
    default mixed-sparsity mix on a dense-heavy + sparse-heavy fleet, the
    sparsity-aware policy routes each model to the chips whose core
    provisioning matches its trace sparsity.  ``queue_capacity=0`` means
    unbounded (no shedding).
    """
    from ..cluster import (
        POLICIES,
        AdmissionConfig,
        ClusterSimulation,
        chip_config,
        fleet_capacity_rps,
        parse_fleet,
    )
    from ..serve import SchedulerConfig, parse_model_mix, request_profile

    weights = parse_model_mix(mix)
    fleet_spec = parse_fleet(fleet)
    names = [p.strip() for p in policies.split("+") if p.strip()]
    unknown = [p for p in names if p not in POLICIES]
    if not names or unknown:
        raise ValueError(f"bad policies {policies!r}; options {sorted(POLICIES)}")
    rate = rho * fleet_capacity_rps(fleet_spec, weights, bs_t, bs_n, seed, passes)
    requests = _serve_arrivals("poisson", num_requests, rate, weights, seed, 8.0)
    scheduler = SchedulerConfig(max_batch=max_batch, max_inflight=max_inflight)
    admission = AdmissionConfig(queue_capacity=queue_capacity or None)
    results = {}
    for name in names:
        report = ClusterSimulation(
            fleet_spec,
            scheduler,
            policy=name,
            admission=admission,
            bs_t=bs_t,
            bs_n=bs_n,
            seed=seed,
            passes=passes,
        ).run(requests)
        results[name] = {
            "throughput_rps": report.throughput_rps,
            "p50_latency_ms": report.latency_percentiles_ms["p50"],
            "p99_latency_ms": report.latency_percentiles_ms["p99"],
            "mean_latency_ms": report.latency_mean_ms,
            "shed": report.shed,
            "requests_per_chip": {
                name: chip.requests_served
                for name, chip in report.chips.items()
            },
        }
    model_profiles = {}
    for model in weights:
        latency_by_kind = {}
        share_by_kind = {}
        for kind in sorted({spec.kind for spec in fleet_spec.chips}):
            profile = request_profile(
                model, seed=seed, config=chip_config(kind, bs_t, bs_n),
                passes=passes,
            )
            latency_by_kind[kind] = profile.single_latency_s * 1e3
            share_by_kind[kind] = profile.sparse_core_share
        model_profiles[model] = {
            "single_latency_ms_by_kind": latency_by_kind,
            "sparse_core_share_by_kind": share_by_kind,
        }
    return {
        "mix": weights,
        "fleet": fleet,
        "target_rho": rho,
        "arrival_rate_rps": rate,
        "queue_capacity": queue_capacity or None,
        "models": model_profiles,
        "policies": results,
    }


def experiment_engine_fastpath_bench(
    model: str = "model4", repeats: int = 5, seed: int = 0
) -> dict:
    """Wall-clock comparison of the event-kernel vs vectorized engine replay.

    Replays one compiled program's uncontended single request ``repeats``
    times through both implementations — the kernel's full event-heap walk
    (serial + scheduled) against the fast path's closed-form makespans
    plus full :class:`EngineRun` synthesis — and reports the speedup and
    the worst relative makespan disagreement.  The ``bench_metrics`` block
    is lifted into ``repro bench`` JSON payloads, which is how the
    committed ``BENCH_baseline.json`` records the measured speedup.
    """
    import time

    from ..arch.engine import fastpath
    from ..arch.engine.fastpath import schedule_for
    from ..compiler.emit import measure_timings_kernel
    from ..serve import request_profile

    repeats = max(1, int(repeats))
    profile = request_profile(model, seed=seed)
    timings = profile.timings

    kernel_started = time.perf_counter()
    for _ in range(repeats):
        kernel_serial = measure_timings_kernel(timings, scheduled=False)
        kernel_scheduled = measure_timings_kernel(timings, scheduled=True)
    kernel_s = (time.perf_counter() - kernel_started) / repeats

    # The fast path's precompute-once contract: schedule construction is
    # inside the timed region (the memo cache is cleared first), but every
    # request after the first answers from the cached columnar schedule.
    fastpath._schedule_for.cache_clear()
    fast_started = time.perf_counter()
    for _ in range(repeats):
        schedule = schedule_for(timings)
        fast_serial = schedule.serial_makespan()
        fast_scheduled = schedule.scheduled_makespan()
        schedule.serial_run(label=model)
    fast_s = (time.perf_counter() - fast_started) / repeats

    serial_err = abs(fast_serial - kernel_serial) / max(kernel_serial, 1e-30)
    scheduled_err = abs(fast_scheduled - kernel_scheduled) / max(
        kernel_scheduled, 1e-30
    )
    speedup = kernel_s / fast_s if fast_s > 0 else float("inf")
    return {
        "model": model,
        "layers": len(timings),
        "repeats": repeats,
        "serial_makespan_s": {"kernel": kernel_serial, "fast": fast_serial},
        "scheduled_makespan_s": {
            "kernel": kernel_scheduled, "fast": fast_scheduled,
        },
        "bench_metrics": {
            "kernel_replay_s": kernel_s,
            "fast_replay_s": fast_s,
            "speedup": speedup,
            "max_rel_err": max(serial_err, scheduled_err),
        },
    }


def _planet_trace(
    trace: str,
    num_requests: int,
    peak_rate: float,
    weights: dict[str, float],
    seed: int,
    period_s: float,
    regions: str,
    spike_factor: float,
):
    """One trace-driven arrival stream at a given PEAK rate.

    ``period_s=0`` auto-sizes the diurnal/regional period so the trace
    covers about one full cycle (the diurnal mean rate with the default
    trough fraction 0.25 is ``0.625 x`` peak); the flash-crowd spike is
    placed at fixed fractions of the stream's baseline span.
    """
    from ..serve import (
        diurnal_arrivals,
        flash_crowd_arrivals,
        poisson_arrivals,
        regional_arrivals,
    )

    if trace == "poisson":
        return poisson_arrivals(num_requests, peak_rate, weights, seed)
    if period_s <= 0:
        period_s = num_requests / (0.625 * peak_rate)
    if trace == "diurnal":
        return diurnal_arrivals(
            num_requests, peak_rate, weights, seed, period_s=period_s
        )
    if trace == "flash_crowd":
        base_rate = peak_rate / spike_factor
        base_span = num_requests / base_rate
        return flash_crowd_arrivals(
            num_requests, base_rate, weights, seed,
            spike_at_s=0.3 * base_span,
            spike_duration_s=0.2 * base_span,
            spike_factor=spike_factor,
        )
    if trace == "regional":
        return regional_arrivals(
            num_requests, peak_rate, regions, weights, seed,
            period_s=period_s,
        )
    raise ValueError(
        f"unknown trace kind {trace!r};"
        " use poisson|diurnal|flash_crowd|regional"
    )


def experiment_cluster_planet_scale(
    mix: str = "model4",
    chips: int = 1000,
    kind: str = "standard",
    shards: int = 8,
    window_ms: float = 0.0,
    policy: str = "least_work",
    shard_policy: str = "least_backlog",
    trace: str = "diurnal",
    num_requests: int = 4000,
    rho_peak: float = 0.7,
    period_s: float = 0.0,
    regions: str = "us:0.5@0.0+eu:0.3@0.33+apac:0.2@0.66",
    spike_factor: float = 4.0,
    slo_ms: float = 0.0,
    queue_capacity: int = 0,
    jobs: int = 1,
    seed: int = 0,
    max_batch: int = 1,
    max_inflight: int = 2,
    bs_t: int = 2,
    bs_n: int = 4,
    passes: str = "all",
    alerts: int = 1,
) -> dict:
    """Cluster — planet-scale sharded fleet under a trace-driven workload.

    A ``chips``-wide homogeneous fleet is partitioned into ``shards``
    independent engines coordinated in windows on the actor pool
    (``repro.cluster.simulate_cluster_sharded``), and driven by one of
    the trace workloads: ``poisson`` | ``diurnal`` (cosine day curve) |
    ``flash_crowd`` (rectangular spike) | ``regional`` (phase-shifted
    regional day curves).  ``rho_peak`` is offered load at the trace's
    PEAK rate relative to fleet aggregate capacity; ``slo_ms=0``
    auto-sets the SLO to 20x the mix's mean single-request latency.  The
    report carries overall and per-window SLO attainment; per-chip rows
    are aggregated by chip kind (a 10,000-chip run stays a small JSON).

    The streaming SLO monitor always runs (burn-rate alerts over the
    window stream as the coordinator merges each digest); ``alerts=1``
    additionally enables the operational detectors (queue growth, shed
    rate, saturation, latency drift) and surfaces every transition in
    the payload's ``alerts`` list — the record ``repro trace`` folds
    into the Perfetto view and ``run-all --alerts`` rolls up.
    """
    from ..cluster import (
        AdmissionConfig,
        ShardingConfig,
        fleet_capacity_rps,
        homogeneous_fleet,
        simulate_cluster_sharded,
    )
    from ..serve import SchedulerConfig, parse_model_mix

    weights = parse_model_mix(mix)
    fleet = homogeneous_fleet(chips, kind)
    capacity = fleet_capacity_rps(fleet, weights, bs_t, bs_n, seed, passes)
    peak_rate = rho_peak * capacity
    stream = _planet_trace(
        trace, num_requests, peak_rate, weights, seed, period_s, regions,
        spike_factor,
    )
    span = stream[-1].arrival_s if stream else 0.0
    if slo_ms <= 0:
        mean_service_s = chips / capacity
        slo_ms = 20.0 * mean_service_s * 1e3
    window_s = window_ms * 1e-3 if window_ms > 0 else max(span / 32.0, 1e-9)
    report = simulate_cluster_sharded(
        stream,
        fleet,
        SchedulerConfig(max_batch=max_batch, max_inflight=max_inflight),
        policy=policy,
        admission=AdmissionConfig(queue_capacity=queue_capacity or None),
        sharding=ShardingConfig(
            num_shards=shards, window_s=window_s, jobs=jobs,
            shard_policy=shard_policy,
        ),
        bs_t=bs_t,
        bs_n=bs_n,
        seed=seed,
        passes=passes,
        slo_ms=slo_ms,
        alerts=bool(alerts),
    )

    by_kind: dict[str, dict] = {}
    for chip in report.chips.values():
        entry = by_kind.setdefault(chip.kind, {
            "chips": 0,
            "requests_served": 0,
            "min_served": None,
            "max_served": 0,
            "dynamic_energy_mj": 0.0,
            "utilization_sums": {},
        })
        entry["chips"] += 1
        entry["requests_served"] += chip.requests_served
        entry["min_served"] = (
            chip.requests_served
            if entry["min_served"] is None
            else min(entry["min_served"], chip.requests_served)
        )
        entry["max_served"] = max(entry["max_served"], chip.requests_served)
        entry["dynamic_energy_mj"] += chip.dynamic_energy_mj
        for unit, value in chip.utilization.items():
            entry["utilization_sums"][unit] = (
                entry["utilization_sums"].get(unit, 0.0) + value
            )
    for entry in by_kind.values():
        sums = entry.pop("utilization_sums")
        entry["mean_utilization"] = {
            unit: total / entry["chips"] for unit, total in sums.items()
        }
        entry["mean_served"] = entry["requests_served"] / entry["chips"]
    return {
        "mix": weights,
        "kind": kind,
        "chips": chips,
        "trace": trace,
        "rho_peak": rho_peak,
        "capacity_rps": capacity,
        "peak_rate_rps": peak_rate,
        "trace_span_s": span,
        "sharding": {
            "num_shards": shards,
            "window_s": window_s,
            "num_windows": len(report.windows),
            "jobs": jobs,
            "shard_policy": shard_policy,
            "routing_policy": policy,
        },
        "served": report.served,
        "shed": report.shed,
        "throughput_rps": report.throughput_rps,
        "latency_ms": {
            "mean": report.latency_mean_ms,
            "max": report.latency_max_ms,
            **report.latency_percentiles_ms,
        },
        "queue_wait_mean_ms": report.queue_wait_mean_ms,
        "slo": report.slo,
        "energy_mj": {
            "dynamic": report.dynamic_energy_mj,
            "static": report.static_energy_mj,
            "per_request": report.energy_per_request_mj,
        },
        "autoscaler_events": len(report.scaling_events),
        "fleet_by_kind": by_kind,
        "windows": [window.to_dict() for window in report.windows],
        "alerts": [dict(alert) for alert in report.alerts],
    }


def experiment_cluster_sharding_bench(
    mix: str = "model4",
    chips: int = 1000,
    kind: str = "standard",
    shards: int = 8,
    window_ms: float = 0.0,
    num_requests: int = 3000,
    rho: float = 0.7,
    jobs: int = 1,
    seed: int = 0,
    max_batch: int = 1,
    max_inflight: int = 2,
    bs_t: int = 2,
    bs_n: int = 4,
    passes: str = "all",
) -> dict:
    """Wall-clock comparison of the sharded vs single-process cluster.

    The SAME Poisson stream is served by the single-engine
    :class:`~repro.cluster.ClusterSimulation` and by the windowed shard
    coordinator in conformance mode (round-robin at both levels, which
    with interleaved partitioning reproduces the global round-robin
    request for request when ``shards`` divides ``chips``) — so the
    speedup is measured against a run with byte-identical per-chip
    assignment, and the percentile disagreement is pure sketch
    quantization.  ``jobs`` sizes the actor pool (1 = shards inline in
    one process: the speedup is then the router/event-locality win
    alone; on a multi-core host ``jobs>1`` adds true parallelism).  The
    ``bench_metrics`` block is lifted into ``repro bench`` JSON
    payloads and the committed ``BENCH_baseline.json`` trajectory.
    """
    import time

    from ..cluster import (
        ClusterSimulation,
        ShardingConfig,
        fleet_capacity_rps,
        homogeneous_fleet,
        simulate_cluster_sharded,
    )
    from ..serve import SchedulerConfig, parse_model_mix, poisson_arrivals

    weights = parse_model_mix(mix)
    fleet = homogeneous_fleet(chips, kind)
    capacity = fleet_capacity_rps(fleet, weights, bs_t, bs_n, seed, passes)
    rate = rho * capacity
    stream = poisson_arrivals(num_requests, rate, weights, seed)
    span = stream[-1].arrival_s if stream else 0.0
    window_s = window_ms * 1e-3 if window_ms > 0 else max(span / 16.0, 1e-9)
    scheduler = SchedulerConfig(max_batch=max_batch, max_inflight=max_inflight)

    started = time.perf_counter()
    single = ClusterSimulation(
        fleet, scheduler, policy="round_robin", bs_t=bs_t, bs_n=bs_n,
        seed=seed, passes=passes,
    ).run(stream)
    single_s = time.perf_counter() - started

    started = time.perf_counter()
    sharded = simulate_cluster_sharded(
        stream,
        fleet,
        scheduler,
        policy="round_robin",
        sharding=ShardingConfig(
            num_shards=shards, window_s=window_s, jobs=jobs,
            shard_policy="round_robin",
        ),
        bs_t=bs_t,
        bs_n=bs_n,
        seed=seed,
        passes=passes,
    )
    sharded_s = time.perf_counter() - started

    percentile_errs = {
        key: (
            abs(sharded.latency_percentiles_ms[key] - exact_ms)
            / max(exact_ms, 1e-30)
        )
        for key, exact_ms in single.latency_percentiles_ms.items()
    }
    chips_match = all(
        single.chips[name].requests_served == chip.requests_served
        for name, chip in sharded.chips.items()
    )
    speedup = single_s / sharded_s if sharded_s > 0 else float("inf")
    return {
        "mix": weights,
        "kind": kind,
        "chips": chips,
        "num_requests": num_requests,
        "arrival_rate_rps": rate,
        "sharding": {
            "num_shards": shards,
            "window_s": window_s,
            "num_windows": len(sharded.windows),
            "jobs": jobs,
        },
        "served": {"single": single.served, "sharded": sharded.served},
        "conformance": {
            "per_chip_assignment_identical": chips_match,
            "percentile_rel_err": percentile_errs,
            "mean_ms": {
                "single": single.latency_mean_ms,
                "sharded": sharded.latency_mean_ms,
            },
        },
        "bench_metrics": {
            "single_process_s": single_s,
            "sharded_s": sharded_s,
            "speedup": speedup,
            "p99_rel_err": percentile_errs["p99"],
        },
    }


def experiment_obs_analyze_bench(
    model: str = "model4", repeats: int = 20, seed: int = 0
) -> dict:
    """Wall-clock overhead of the offline trace analyzers.

    Replays one compiled program into an :class:`EngineRun` and times
    ``repro analyze``'s critical-path extraction over its timeline
    ``repeats`` times, recording per-call cost and per-entry cost — the
    budget an operator pays to attribute a makespan after a run.  The
    exactness invariants ride along as evidence, not just tests: the
    path's segment durations must telescope to the makespan and the
    per-resource blocking shares must sum to one.  The ``bench_metrics``
    block is lifted into ``repro bench`` JSON payloads and the committed
    ``BENCH_baseline.json`` trajectory.
    """
    import math
    import time

    from ..arch import (
        BishopAccelerator,
        BishopConfig,
        EnergyModel,
        simulate_inference,
    )
    from ..obs.analyze import critical_path

    repeats = max(1, int(repeats))
    spec = BundleSpec(2, 4)
    trace = synthetic_trace(model_config(model), PROFILES[model], spec, seed=seed)
    report = BishopAccelerator(
        BishopConfig(bundle_spec=spec)
    ).run_trace(trace, simulate_events=False)
    run = simulate_inference(
        report, BishopConfig(bundle_spec=spec), EnergyModel()
    )

    started = time.perf_counter()
    for _ in range(repeats):
        path = critical_path(run)
    analyze_s = (time.perf_counter() - started) / repeats

    entries = len(run.timeline)
    makespan_err = abs(path.total_s - run.makespan_s) / max(
        run.makespan_s, 1e-30
    )
    shares = path.blocking_shares()
    shares_err = abs(math.fsum(shares.values()) - 1.0)
    return {
        "model": model,
        "repeats": repeats,
        "timeline_entries": entries,
        "makespan_s": run.makespan_s,
        "critical_path": {
            "segments": len(path.segments),
            "blocking_shares": shares,
            "makespan_rel_err": makespan_err,
            "shares_sum_err": shares_err,
        },
        "bench_metrics": {
            "critical_path_s": analyze_s,
            "per_entry_us": analyze_s / max(entries, 1) * 1e6,
            "makespan_rel_err": makespan_err,
        },
    }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _register(experiments: tuple[Experiment, ...]) -> dict[str, Experiment]:
    registry = {}
    for experiment in experiments:
        if experiment.id in registry:
            raise ValueError(f"duplicate experiment id {experiment.id!r}")
        registry[experiment.id] = experiment
    return registry


EXPERIMENTS: dict[str, Experiment] = _register((
    Experiment(
        "table1", "Table 1", experiment_table1, cost="heavy",
        params={"seed": _SEED, "epochs": ParamSpec(int, 12, "training epochs")},
        smoke_params={"epochs": 2},
        description="trained accuracy across network families",
    ),
    Experiment(
        "table2", "Table 2", experiment_table2,
        description="the Table-2 model zoo",
    ),
    Experiment(
        "fig3", "Fig. 3", experiment_fig3,
        description="FLOPs breakdown vs (N, D) and depth",
    ),
    Experiment(
        "fig5", "Fig. 5", experiment_fig5, cost="heavy",
        params={"seed": _SEED, "epochs": ParamSpec(int, 12, "training epochs")},
        smoke_params={"epochs": 2},
        description="active-bundle distribution without vs with BSA",
    ),
    Experiment(
        "fig6", "Fig. 6", experiment_fig6,
        params={"seed": _SEED},
        description="raw vs stratified workload density",
    ),
    Experiment(
        "fig8", "Fig. 8", experiment_fig8,
        params={"seed": _SEED},
        description="ECP attention-score concentration",
    ),
    Experiment(
        "fig11", "Fig. 11", experiment_fig11, cost="medium",
        params={"models": _MODELS},
        smoke_params={"models": "model4"},
        description="layerwise latency/energy ratios vs PTB",
    ),
    Experiment(
        "fig12", "Fig. 12", experiment_fig12, cost="heavy",
        params={
            "models": ParamSpec(str, ",".join(ALL_MODELS), _MODELS.help),
            "seed": _SEED, "bs_t": _BS_T, "bs_n": _BS_N,
        },
        smoke_params={"models": "model4"},
        description="end-to-end latency across five systems",
    ),
    Experiment(
        "fig13", "Fig. 13", experiment_fig13, cost="heavy",
        params={
            "models": ParamSpec(str, ",".join(ALL_MODELS), _MODELS.help),
            "seed": _SEED, "bs_t": _BS_T, "bs_n": _BS_N,
        },
        smoke_params={"models": "model4"},
        description="end-to-end energy across five systems",
    ),
    Experiment(
        "fig14", "Fig. 14", experiment_fig14,
        params={"models": _MODELS},
        smoke_params={"models": "model4"},
        description="ECP threshold hardware sweep",
    ),
    Experiment(
        "fig15", "Fig. 15", experiment_fig15, cost="medium",
        params={"model": _MODEL},
        smoke_params={"model": "model4"},
        description="stratification-threshold sweep",
    ),
    Experiment(
        "fig16", "Fig. 16", experiment_fig16, cost="heavy",
        params={"model": _MODEL},
        smoke_params={"model": "model4"},
        description="TTB bundle-volume sweep",
    ),
    Experiment(
        "fig17", "Fig. 17", experiment_fig17,
        description="synthesized power/area breakdown",
    ),
    Experiment(
        "sec6.2-summary", "Sec. 6.2", experiment_sec62, cost="heavy",
        params={
            "models": ParamSpec(str, ",".join(ALL_MODELS), _MODELS.help),
            "seed": _SEED, "bs_t": _BS_T, "bs_n": _BS_N,
        },
        smoke_params={"models": "model4"},
        description="headline speedup/energy averages",
    ),
    Experiment(
        "sec6.4-hetero", "Sec. 6.4", experiment_sec64_hetero, cost="medium",
        params={"model": _MODEL, "bs_t": _BS_T, "bs_n": _BS_N, "seed": _SEED},
        smoke_params={"model": "model4"},
        description="heterogeneous cores vs dense-only ablation",
    ),
    Experiment(
        "sec6.4-attn", "Sec. 6.4", experiment_sec64_attn, cost="medium",
        params={"models": _MODELS},
        smoke_params={"models": "model4"},
        description="attention-core comparison vs PTB",
    ),
    Experiment(
        "compiler_pass_ablation", "Compiler", experiment_compiler_pass_ablation,
        cost="medium",
        params={
            "model": _MODEL,
            "dram_gbps": ParamSpec(
                float, 2.4, "chip DRAM bandwidth (GB/s); 76.8 = paper chip"
            ),
            "theta_q": ParamSpec(float, 6.0, "ECP Q-pruning threshold"),
            "theta_k": ParamSpec(float, 6.0, "ECP K-pruning threshold"),
            "seed": _SEED, "bs_t": _BS_T, "bs_n": _BS_N,
        },
        smoke_params={"model": "model4"},
        description="per-pass compiler ablation: makespan/energy of each"
        " optimization pass toggled off",
    ),
    Experiment(
        "dse_point", "DSE", experiment_dse_point,
        params={
            "model": _MODEL,
            "point": ParamSpec(
                str, "{}",
                "JSON design point over the default space (missing keys ="
                " paper defaults)",
            ),
            "seed": _SEED,
        },
        description="compile + engine-measure one chip design point",
    ),
    Experiment(
        "dse_pareto_frontier", "DSE", experiment_dse_pareto_frontier,
        cost="medium",
        params={
            "model": _MODEL,
            "strategy": ParamSpec(
                str, "random", "search strategy: grid | random | evolutionary"
            ),
            "budget": ParamSpec(int, 48, "searched candidate chips"),
            "objectives": ParamSpec(
                str, "latency_ms+energy_mj+area_mm2",
                "'+'-separated frontier axes (see repro.dse.OBJECTIVES)",
            ),
            "seed": _SEED,
        },
        smoke_params={"model": "model4", "budget": 6},
        description="Pareto search over Bishop chip configurations",
    ),
    Experiment(
        "dse_strategy_ablation", "DSE", experiment_dse_strategy_ablation,
        cost="medium",
        params={
            "model": ParamSpec(str, "model4", _MODEL.help),
            "strategies": ParamSpec(
                str, "grid+random+evolutionary", "'+'-separated strategies"
            ),
            "budget": ParamSpec(int, 32, "candidates per strategy"),
            "objectives": ParamSpec(
                str, "latency_ms+energy_mj+area_mm2",
                "'+'-separated frontier axes",
            ),
            "seed": _SEED,
        },
        smoke_params={"budget": 5, "strategies": "random+evolutionary"},
        description="search-strategy comparison at a fixed budget",
    ),
    Experiment(
        "engine_fastpath_bench", "Engine", experiment_engine_fastpath_bench,
        params={
            "model": ParamSpec(str, "model4", _MODEL.help),
            "repeats": ParamSpec(int, 5, "timed replays per implementation"),
            "seed": _SEED,
        },
        smoke_params={"repeats": 2},
        description="kernel-vs-fastpath single-request replay speedup"
        " (the BENCH_baseline.json perf deliverable)",
    ),
    Experiment(
        "serve_latency_cdf", "Serving", experiment_serve_latency_cdf,
        cost="medium",
        params={
            "mix": _MIX,
            "rho": ParamSpec(float, 0.7, "offered load vs single-chip capacity"),
            "num_requests": ParamSpec(int, 400, "requests in the stream"),
            "seed": _SEED,
            "arrival": ParamSpec(str, "poisson", "poisson | bursty"),
            "burst_factor": ParamSpec(float, 8.0, "burst rate multiplier"),
            "max_batch": ParamSpec(int, 1, "same-model batching limit"),
            "max_inflight": ParamSpec(int, 2, "concurrent inferences"),
            "bs_t": _BS_T, "bs_n": _BS_N,
            "passes": _PASSES,
        },
        smoke_params={"num_requests": 40},
        description="serving latency percentiles under an arrival stream",
    ),
    Experiment(
        "serve_batch_sweep", "Serving", experiment_serve_batch_sweep,
        cost="medium",
        params={
            "mix": _MIX,
            "rho": ParamSpec(float, 1.5, "offered load vs single-chip capacity"),
            "num_requests": ParamSpec(int, 300, "requests in the stream"),
            "seed": _SEED,
            "batch_sizes": ParamSpec(str, "1+2+4+8", "'+'-separated batch sizes"),
            "max_inflight": ParamSpec(int, 2, "concurrent inferences"),
            "bs_t": _BS_T, "bs_n": _BS_N,
            "passes": _PASSES,
        },
        smoke_params={"num_requests": 40, "batch_sizes": "1+4"},
        description="batching throughput/latency/energy trade-off",
    ),
    Experiment(
        "serve_continuous_batching", "Serving",
        experiment_serve_continuous_batching,
        cost="medium",
        params={
            "mix": _MIX,
            "rho": ParamSpec(float, 1.5, "offered load vs single-chip capacity"),
            "num_requests": ParamSpec(int, 300, "requests in the stream"),
            "priority_mix": ParamSpec(
                str, "0:0.8+1:0.2", "tier mix, e.g. '0:0.8+1:0.2'"
            ),
            "seed": _SEED,
            "max_batch": ParamSpec(int, 4, "stage-group size limit"),
            "max_inflight": ParamSpec(int, 2, "concurrent lanes"),
            "bs_t": _BS_T, "bs_n": _BS_N,
            "passes": ParamSpec(str, _CONTINUOUS_PASSES, _PASSES.help),
        },
        smoke_params={"num_requests": 40},
        description="continuous vs static batching + degenerate conformance pin",
    ),
    Experiment(
        "serve_preemption_slo", "Serving", experiment_serve_preemption_slo,
        cost="medium",
        params={
            "mix": _MIX,
            "rho": ParamSpec(float, 2.0, "offered load vs single-chip capacity"),
            "num_requests": ParamSpec(int, 300, "requests in the stream"),
            "priority_mix": ParamSpec(
                str, "0:0.8+1:0.2", "tier mix, e.g. '0:0.8+1:0.2'"
            ),
            "seed": _SEED,
            "max_inflight": ParamSpec(int, 2, "concurrent lanes"),
            "bs_t": _BS_T, "bs_n": _BS_N,
            "passes": ParamSpec(str, _CONTINUOUS_PASSES, _PASSES.help),
        },
        smoke_params={"num_requests": 60},
        description="stage-boundary preemption: high-tier p99 vs FIFO"
        " at saturation, with per-resource work conservation",
    ),
    Experiment(
        "serve_continuous_bench", "Serving", experiment_serve_continuous_bench,
        params={
            "mix": _MIX,
            "rho": ParamSpec(float, 1.5, "offered load vs single-chip capacity"),
            "num_requests": ParamSpec(int, 400, "requests in the stream"),
            "repeats": ParamSpec(int, 3, "timed replays per scheduler"),
            "seed": _SEED,
            "max_batch": ParamSpec(int, 4, "batching / stage-group limit"),
            "max_inflight": ParamSpec(int, 2, "concurrent lanes"),
            "passes": ParamSpec(str, _CONTINUOUS_PASSES, _PASSES.help),
        },
        smoke_params={"num_requests": 60, "repeats": 2},
        description="continuous-scheduler simulation overhead vs static"
        " (tracked in BENCH_baseline.json)",
    ),
    Experiment(
        "cluster_scaling_curve", "Cluster", experiment_cluster_scaling_curve,
        cost="medium",
        params={
            "mix": _MIX,
            "rho": ParamSpec(float, 5.0, "offered load vs ONE chip's capacity"),
            "fleet_sizes": ParamSpec(str, "1+2+4", "'+'-separated fleet sizes"),
            "kind": ParamSpec(str, "standard", "chip kind of the homogeneous fleet"),
            "policy": ParamSpec(str, "least_work", "routing policy"),
            "num_requests": ParamSpec(int, 600, "requests in the stream"),
            "seed": _SEED,
            "max_batch": ParamSpec(int, 1, "same-model batching limit"),
            "max_inflight": ParamSpec(int, 2, "concurrent inferences per chip"),
            "bs_t": _BS_T, "bs_n": _BS_N,
            "passes": _PASSES,
        },
        smoke_params={"num_requests": 60, "fleet_sizes": "1+2"},
        description="throughput + p50/p99 latency vs fleet size",
    ),
    Experiment(
        "cluster_routing_ablation", "Cluster", experiment_cluster_routing_ablation,
        cost="medium",
        params={
            "mix": ParamSpec(str, "model2:0.5+model4:0.5", _MIX.help),
            "fleet": ParamSpec(
                str, "dense_heavy:2+sparse_heavy:2",
                "fleet spec, e.g. 'standard:4' or 'dense_heavy:2+sparse_heavy:2'",
            ),
            "rho": ParamSpec(float, 0.85, "offered load vs fleet aggregate capacity"),
            "policies": ParamSpec(
                str, "round_robin+least_work+sparsity", "'+'-separated policies"
            ),
            "num_requests": ParamSpec(int, 800, "requests in the stream"),
            "seed": _SEED,
            "queue_capacity": ParamSpec(int, 0, "per-chip queue bound (0: unbounded)"),
            "max_batch": ParamSpec(int, 1, "same-model batching limit"),
            "max_inflight": ParamSpec(int, 2, "concurrent inferences per chip"),
            "bs_t": _BS_T, "bs_n": _BS_N,
            "passes": _PASSES,
        },
        smoke_params={"num_requests": 80, "policies": "round_robin+sparsity"},
        description="routing-policy comparison at a fixed heterogeneous fleet",
    ),
    Experiment(
        "cluster_multitenant_fairness", "Cluster",
        experiment_cluster_multitenant_fairness,
        cost="medium",
        params={
            "mix": _MIX,
            "rho": ParamSpec(float, 3.0, "offered load vs ONE chip's capacity"),
            "tenants": ParamSpec(
                str, "gold:3+silver:1", "tenant spec 'name[:weight][@quota]+...'"
            ),
            "fleet_size": ParamSpec(int, 2, "homogeneous fleet size"),
            "num_requests": ParamSpec(int, 400, "requests in the stream"),
            "seed": _SEED,
            "quota": ParamSpec(
                int, 0, "per-tenant outstanding bound (0: declared/unbounded)"
            ),
            "max_batch": ParamSpec(
                int, 1, "stage-group size limit (1: tenant-pure WFQ quanta)"
            ),
            "max_inflight": ParamSpec(int, 2, "concurrent lanes per chip"),
            "bs_t": _BS_T, "bs_n": _BS_N,
            "passes": ParamSpec(str, _CONTINUOUS_PASSES, _PASSES.help),
        },
        smoke_params={"num_requests": 80},
        description="WFQ service shares vs declared tenant weights under"
        " saturation, with per-tenant report blocks",
    ),
    Experiment(
        "cluster_planet_scale", "Cluster", experiment_cluster_planet_scale,
        cost="heavy",
        params={
            "mix": _MIX,
            "chips": ParamSpec(int, 1000, "fleet size (chips)"),
            "kind": ParamSpec(str, "standard", "chip kind of the homogeneous fleet"),
            "shards": ParamSpec(int, 8, "independent shard engines"),
            "window_ms": ParamSpec(
                float, 0.0, "coordination window (ms); 0 = trace span / 32"
            ),
            "policy": ParamSpec(str, "least_work", "in-shard routing policy"),
            "shard_policy": ParamSpec(
                str, "least_backlog", "cross-shard routing: round_robin | least_backlog"
            ),
            "trace": ParamSpec(
                str, "diurnal", "poisson | diurnal | flash_crowd | regional"
            ),
            "num_requests": ParamSpec(int, 4000, "requests in the trace"),
            "rho_peak": ParamSpec(
                float, 0.7, "offered load AT TRACE PEAK vs fleet capacity"
            ),
            "period_s": ParamSpec(
                float, 0.0, "diurnal/regional period (s); 0 = one cycle per trace"
            ),
            "regions": ParamSpec(
                str, "us:0.5@0.0+eu:0.3@0.33+apac:0.2@0.66",
                "regional trace spec: name:weight@phase '+'-joined",
            ),
            "spike_factor": ParamSpec(float, 4.0, "flash-crowd rate multiplier"),
            "slo_ms": ParamSpec(
                float, 0.0, "latency SLO (ms); 0 = 20x mean single-request latency"
            ),
            "queue_capacity": ParamSpec(int, 0, "per-chip queue bound (0: unbounded)"),
            "jobs": ParamSpec(int, 1, "shard worker processes (0 = one per core)"),
            "seed": _SEED,
            "max_batch": ParamSpec(int, 1, "same-model batching limit"),
            "max_inflight": ParamSpec(int, 2, "concurrent inferences per chip"),
            "bs_t": _BS_T, "bs_n": _BS_N,
            "passes": _PASSES,
            "alerts": ParamSpec(
                int, 1, "1 = run the detector rule engine alongside the"
                " always-on burn-rate monitor",
            ),
        },
        smoke_params={"chips": 64, "shards": 2, "num_requests": 240},
        description="sharded planet-scale fleet under trace-driven load"
        " with per-window SLO attainment and streaming alerts",
    ),
    Experiment(
        "cluster_sharding_bench", "Cluster", experiment_cluster_sharding_bench,
        cost="heavy",
        params={
            "mix": _MIX,
            "chips": ParamSpec(int, 1000, "fleet size (chips)"),
            "kind": ParamSpec(str, "standard", "chip kind of the homogeneous fleet"),
            "shards": ParamSpec(int, 8, "independent shard engines"),
            "window_ms": ParamSpec(
                float, 0.0, "coordination window (ms); 0 = trace span / 16"
            ),
            "num_requests": ParamSpec(int, 3000, "requests in the stream"),
            "rho": ParamSpec(float, 0.7, "offered load vs fleet aggregate capacity"),
            "jobs": ParamSpec(int, 1, "shard worker processes (0 = one per core)"),
            "seed": _SEED,
            "max_batch": ParamSpec(int, 1, "same-model batching limit"),
            "max_inflight": ParamSpec(int, 2, "concurrent inferences per chip"),
            "bs_t": _BS_T, "bs_n": _BS_N,
            "passes": _PASSES,
        },
        smoke_params={"chips": 64, "shards": 2, "num_requests": 200},
        description="sharded-vs-single-process fleet speedup + percentile"
        " conformance (a BENCH trajectory deliverable)",
    ),
    Experiment(
        "obs_analyze_bench", "Engine", experiment_obs_analyze_bench,
        params={
            "model": ParamSpec(str, "model4", _MODEL.help),
            "repeats": ParamSpec(int, 20, "timed critical-path extractions"),
            "seed": _SEED,
        },
        smoke_params={"repeats": 2},
        description="critical-path analyzer overhead + exactness evidence"
        " (a BENCH trajectory deliverable)",
    ),
))


def get_experiment(name: str) -> Experiment:
    """Look up one registered experiment by id."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; options: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(name: str, **params: object) -> dict:
    """Run one registered experiment by id, with optional param overrides."""
    return get_experiment(name).run(**params)


def registry_code_hash() -> str:
    """SHA-256 over every ``repro`` source file.

    Used by the runtime's result cache.  Experiments compute through the
    whole package (models, simulator cores, baselines, training), so any
    source edit — not just to the harness layer — must invalidate
    previously cached results.
    """
    digest = hashlib.sha256()
    package_root = Path(__file__).resolve().parents[1]
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
    return digest.hexdigest()
