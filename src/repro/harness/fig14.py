"""Fig. 14 — ECP threshold sweep: accuracy vs SSA energy-efficiency/speedup.

Two coupled sweeps:

* **Hardware**: for each pruning threshold θ_p, run the Table-2-scale
  attention layers through the attention core and report the speedup and
  energy-efficiency of the spiking self-attention layers relative to θ_p=0
  (activity skipping only).
* **Accuracy**: attach ECP at each θ_p to a *trained tiny model* and measure
  test accuracy — reproducing the plateau-then-drop shape (with the
  occasional small improvement the paper attributes to denoising).

The two axes use different absolute θ ranges because the bound statistic
``n_ab`` scales with the feature count D; the paper's thresholds (6-10)
apply to D=128-384 models, the tiny models use proportionally smaller θ.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..algo import ECPConfig, attach_ecp, detach_ecp
from ..arch import BishopConfig, EnergyModel, simulate_attention_core
from ..bundles import BundleSpec
from ..model import SpikingTransformer, model_config, tiny_config
from ..train import TrainConfig, Trainer, make_image_dataset
from .synthetic import PROFILES, synthetic_trace

__all__ = [
    "HardwareSweepPoint",
    "ecp_hardware_sweep",
    "AccuracySweepPoint",
    "ecp_accuracy_sweep",
]


@dataclass(frozen=True)
class HardwareSweepPoint:
    theta: float
    q_keep_fraction: float
    k_keep_fraction: float
    attention_latency_s: float
    attention_energy_mj: float
    speedup: float          # vs theta=0 (no ECP)
    energy_efficiency: float


@lru_cache(maxsize=64)
def ecp_hardware_sweep(
    model: str,
    thetas: tuple[float, ...] = (0, 2, 4, 6, 8, 10, 12, 16),
    bsa: bool = True,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
) -> tuple[HardwareSweepPoint, ...]:
    """Sweep θ_p over the SSA layers of one Table-2 model."""
    spec = BundleSpec(bs_t, bs_n)
    config = model_config(model)
    profile = PROFILES[model]
    if bsa:
        profile = profile.bsa_variant()
    trace = synthetic_trace(config, profile, spec, seed=seed)
    arch = BishopConfig(bundle_spec=spec)
    energy_model = EnergyModel()
    attention_records = trace.layers(kind="attention")

    def run(theta: float):
        # Attention-core accounting only (the paper's Fig. 14 measures the
        # spiking self-attention layers, not the downstream spike generator).
        ecp = ECPConfig(theta, theta, spec) if theta > 0 else None
        results = [
            simulate_attention_core(r.q, r.k, r.v, arch, ecp=ecp)
            for r in attention_records
        ]
        latency = sum(r.cycles for r in results) / arch.clock_hz
        energy = sum(
            r.compute_energy_pj(energy_model) + r.traffic.energy_pj(energy_model)
            for r in results
        ) * 1e-9
        q_keep = float(np.mean([r.q_keep_fraction for r in results]))
        k_keep = float(np.mean([r.k_keep_fraction for r in results]))
        return latency, energy, q_keep, k_keep

    base_latency, base_energy, _, _ = run(0.0)
    points = []
    for theta in thetas:
        latency, energy, q_keep, k_keep = run(float(theta))
        points.append(
            HardwareSweepPoint(
                theta=float(theta),
                q_keep_fraction=q_keep,
                k_keep_fraction=k_keep,
                attention_latency_s=latency,
                attention_energy_mj=energy,
                speedup=base_latency / latency,
                energy_efficiency=base_energy / energy,
            )
        )
    return tuple(points)


@dataclass(frozen=True)
class AccuracySweepPoint:
    theta: float
    accuracy: float
    q_keep_fraction: float
    k_keep_fraction: float


@lru_cache(maxsize=8)
def _trained_tiny_model(seed: int = 0, epochs: int = 12):
    """Train (once, cached) a tiny spiking transformer for the accuracy axis."""
    dataset = make_image_dataset(num_classes=4, samples_per_class=30, image_size=16, seed=seed)
    model = SpikingTransformer(tiny_config(num_classes=4), seed=seed)
    trainer = Trainer(
        model, dataset, TrainConfig(epochs=epochs, batch_size=24, lr=3e-3, seed=seed)
    )
    trainer.fit()
    return model, dataset, trainer


def ecp_accuracy_sweep(
    thetas: tuple[float, ...] = (0, 1, 2, 3, 4, 6, 8),
    bs_t: int = 2,
    bs_n: int = 2,
    seed: int = 0,
) -> tuple[AccuracySweepPoint, ...]:
    """Accuracy of a trained tiny model under inference-time ECP."""
    model, dataset, trainer = _trained_tiny_model(seed=seed)
    spec = BundleSpec(bs_t, bs_n)
    points = []
    for theta in thetas:
        if theta > 0:
            pruners = attach_ecp(model, ECPConfig(theta, theta, spec))
        else:
            pruners = []
            detach_ecp(model)
        accuracy = trainer.evaluate(dataset.x_test, dataset.y_test)
        if pruners and pruners[0].last_reports:
            q_keep = float(np.mean(
                [r.q_token_keep_fraction for p in pruners for r in p.last_reports]
            ))
            k_keep = float(np.mean(
                [r.k_token_keep_fraction for p in pruners for r in p.last_reports]
            ))
        else:
            q_keep = k_keep = 1.0
        points.append(
            AccuracySweepPoint(
                theta=float(theta), accuracy=accuracy,
                q_keep_fraction=q_keep, k_keep_fraction=k_keep,
            )
        )
    detach_ecp(model)
    return tuple(points)
