"""Fig. 11 — layer-wise latency/energy of Bishop vs PTB.

The figure plots, for every encoder block, the four phases P1 (Q/K/V
projections), ATN (spiking self-attention), P2 (output projection) and MLP,
normalized by Bishop's first-block P1 values.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..arch import BishopAccelerator, BishopConfig
from ..baselines import PTBAccelerator
from ..bundles import BundleSpec
from ..model import model_config
from .synthetic import PROFILES, synthetic_trace

__all__ = ["PhaseCell", "LayerwiseComparison", "layerwise_comparison", "PHASES"]

PHASES = ("P1", "ATN", "P2", "MLP")


@dataclass(frozen=True)
class PhaseCell:
    """One (block, phase) cell of Fig. 11."""

    block: int
    phase: str
    bishop_latency: float   # normalized to Bishop block-0 P1
    ptb_latency: float
    bishop_energy: float
    ptb_energy: float

    @property
    def latency_ratio(self) -> float:
        return self.ptb_latency / self.bishop_latency if self.bishop_latency else 0.0

    @property
    def energy_ratio(self) -> float:
        return self.ptb_energy / self.bishop_energy if self.bishop_energy else 0.0


@dataclass(frozen=True)
class LayerwiseComparison:
    model: str
    cells: tuple[PhaseCell, ...]

    def phase_cells(self, phase: str) -> list[PhaseCell]:
        return [cell for cell in self.cells if cell.phase == phase]

    def mean_latency_ratio(self, phase: str | None = None) -> float:
        cells = self.cells if phase is None else self.phase_cells(phase)
        return sum(c.latency_ratio for c in cells) / len(cells)

    def mean_energy_ratio(self, phase: str | None = None) -> float:
        cells = self.cells if phase is None else self.phase_cells(phase)
        return sum(c.energy_ratio for c in cells) / len(cells)


@lru_cache(maxsize=16)
def layerwise_comparison(
    model: str, bsa: bool = False, bs_t: int = 2, bs_n: int = 4, seed: int = 0
) -> LayerwiseComparison:
    """Compute every Fig.-11 cell for one model."""
    spec = BundleSpec(bs_t, bs_n)
    config = model_config(model)
    profile = PROFILES[model]
    if bsa:
        profile = profile.bsa_variant()
    trace = synthetic_trace(config, profile, spec, seed=seed)

    bishop_report = BishopAccelerator(BishopConfig(bundle_spec=spec)).run_trace(trace)
    ptb_report = PTBAccelerator().run_trace(trace)

    bishop_cells = bishop_report.by_phase()
    ptb_cells = ptb_report.by_phase()

    # Normalization reference: Bishop's first-block P1 (as in the paper).
    ref = bishop_cells[(0, "P1")]
    ref_latency, ref_energy = ref.latency_s, ref.energy_pj

    cells = []
    for block in range(config.num_blocks):
        for phase in PHASES:
            bishop_cell = bishop_cells[(block, phase)]
            ptb_cell = ptb_cells[(block, phase)]
            cells.append(
                PhaseCell(
                    block=block,
                    phase=phase,
                    bishop_latency=bishop_cell.latency_s / ref_latency,
                    ptb_latency=ptb_cell.latency_s / ref_latency,
                    bishop_energy=bishop_cell.energy_pj / ref_energy,
                    ptb_energy=ptb_cell.energy_pj / ref_energy,
                )
            )
    return LayerwiseComparison(model=model, cells=tuple(cells))
