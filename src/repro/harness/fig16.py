"""Fig. 16 — sensitivity to the TTB bundle volume (BS_t, BS_n), Model 3.

Sweeps the bundle shape and reports, separately for the attention layers and
for the projection/MLP layers, total energy and latency, plus the memory-
energy shares of spiking activations vs multi-bit weights.  Expected shape
(Sec. 6.5.2): U-curves with a near-optimal band at volume ≈4-8; very small
volumes lose intra/inter-bundle reuse, very large ones bundle idle tokens so
activation traffic displaces the weight-traffic savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..algo import ECPConfig
from ..arch import BishopAccelerator, BishopConfig, EnergyModel
from ..bundles import BundleSpec
from ..model import model_config
from .endtoend import ECP_THETA
from .synthetic import PROFILES, synthetic_trace

__all__ = ["VolumePoint", "bundle_volume_sweep", "DEFAULT_VOLUMES"]

DEFAULT_VOLUMES: tuple[tuple[int, int], ...] = (
    (1, 2), (2, 1), (2, 2), (2, 4), (4, 2), (2, 7), (4, 4), (2, 14), (4, 14),
)


@dataclass(frozen=True)
class VolumePoint:
    """Bishop on Model 3 with one (BS_t, BS_n) bundle shape."""

    bs_t: int
    bs_n: int
    attention_latency_s: float
    attention_energy_mj: float
    matmul_latency_s: float
    matmul_energy_mj: float
    total_latency_s: float
    total_energy_mj: float
    weight_memory_share: float      # of total energy
    activation_memory_share: float

    @property
    def volume(self) -> int:
        return self.bs_t * self.bs_n


# The firing patterns cluster at a fixed intrinsic scale; the hardware's
# bundle grid regroups them.  (2, 4) matches the paper's default volume.
INTRINSIC_CLUSTER_SPEC = BundleSpec(2, 4)


@lru_cache(maxsize=8)
def bundle_volume_sweep(
    model: str = "model3",
    volumes: tuple[tuple[int, int], ...] = DEFAULT_VOLUMES,
    use_ecp: bool = True,
    seed: int = 0,
) -> tuple[VolumePoint, ...]:
    config = model_config(model)
    energy_model = EnergyModel()
    # One workload, generated at the intrinsic clustering scale; every swept
    # bundle shape sees the same spikes (oversized bundles then swallow idle
    # tokens, undersized ones fragment clusters — the Fig.-16 trade-off).
    trace = synthetic_trace(config, PROFILES[model], INTRINSIC_CLUSTER_SPEC, seed=seed)
    points = []
    for bs_t, bs_n in volumes:
        spec = BundleSpec(bs_t, bs_n)
        arch = BishopConfig(bundle_spec=spec)
        ecp = (
            ECPConfig(ECP_THETA[model], ECP_THETA[model], spec) if use_ecp else None
        )
        report = BishopAccelerator(arch).run_trace(trace, ecp=ecp)
        attention = [l for l in report.layers if l.phase == "ATN"]
        matmul = [l for l in report.layers if l.phase != "ATN"]
        shares = report.memory_energy_share_by_kind(energy_model)
        points.append(
            VolumePoint(
                bs_t=bs_t,
                bs_n=bs_n,
                attention_latency_s=sum(l.latency_s for l in attention),
                attention_energy_mj=sum(l.energy_pj for l in attention) * 1e-9,
                matmul_latency_s=sum(l.latency_s for l in matmul),
                matmul_energy_mj=sum(l.energy_pj for l in matmul) * 1e-9,
                total_latency_s=report.total_latency_s,
                total_energy_mj=report.total_energy_mj,
                weight_memory_share=shares.get("weight", 0.0),
                activation_memory_share=shares.get("activation", 0.0),
            )
        )
    return tuple(points)
