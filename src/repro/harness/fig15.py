"""Fig. 15 — impact of the stratification threshold θ_s (Model 3).

Different stratification strategies target different dense-to-sparse split
ratios; the resulting θ_s shifts workload between the dense and sparse cores.
Latency is minimized near the balance point, energy changes only mildly
(data movement dominates), so the EDP traces a U-shape — the paper reports
≈2.49× EDP gain over PTB at the balanced optimum and up to 1.65× EDP loss
under heavy imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..arch import BishopAccelerator, BishopConfig
from ..baselines import PTBAccelerator
from ..bundles import BundleSpec
from ..model import model_config
from .synthetic import PROFILES, synthetic_trace

__all__ = ["StratificationPoint", "StratificationSweep", "stratification_sweep"]


@dataclass(frozen=True)
class StratificationPoint:
    """Bishop at one targeted dense-fraction split."""

    dense_fraction_target: float
    latency_s: float
    energy_mj: float
    mean_dense_cycles: float
    mean_sparse_cycles: float

    @property
    def edp(self) -> float:
        return self.latency_s * self.energy_mj


@dataclass(frozen=True)
class StratificationSweep:
    model: str
    points: tuple[StratificationPoint, ...]
    balanced: StratificationPoint      # the auto-balancing policy
    ptb_edp: float

    def best_point(self) -> StratificationPoint:
        return min(self.points, key=lambda p: p.edp)

    @property
    def edp_gain_vs_ptb(self) -> float:
        """EDP improvement of the balanced policy over PTB."""
        return self.ptb_edp / self.balanced.edp

    @property
    def worst_imbalance_penalty(self) -> float:
        """EDP degradation of the worst split vs the best (paper: up to 1.65×)."""
        worst = max(self.points, key=lambda p: p.edp)
        return worst.edp / self.best_point().edp


@lru_cache(maxsize=8)
def stratification_sweep(
    model: str = "model3",
    fractions: tuple[float, ...] = (0.05, 0.15, 0.3, 0.5, 0.7, 0.85, 0.95),
    bsa: bool = False,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
) -> StratificationSweep:
    spec = BundleSpec(bs_t, bs_n)
    config = model_config(model)
    profile = PROFILES[model]
    if bsa:
        profile = profile.bsa_variant()
    trace = synthetic_trace(config, profile, spec, seed=seed)

    def matmul_totals(report) -> tuple[float, float]:
        layers = [l for l in report.layers if l.phase in ("P1", "P2", "MLP")]
        return (
            sum(l.latency_s for l in layers),
            sum(l.energy_pj for l in layers) * 1e-9,
        )

    def run(fraction: float | None) -> StratificationPoint:
        # Stratification only touches the MLP/projection layers, so the
        # sweep (like the paper's Fig. 15) is scored on those.
        arch = BishopConfig(bundle_spec=spec, stratify_dense_fraction=fraction)
        report = BishopAccelerator(arch).run_trace(trace)
        matmuls = [l for l in report.layers if l.phase in ("P1", "P2", "MLP")]
        dense = sum(l.notes.get("dense_cycles", 0.0) for l in matmuls) / len(matmuls)
        sparse = sum(l.notes.get("sparse_cycles", 0.0) for l in matmuls) / len(matmuls)
        latency, energy = matmul_totals(report)
        return StratificationPoint(
            dense_fraction_target=-1.0 if fraction is None else fraction,
            latency_s=latency,
            energy_mj=energy,
            mean_dense_cycles=dense,
            mean_sparse_cycles=sparse,
        )

    points = tuple(run(f) for f in fractions)
    balanced = run(None)
    ptb_latency, ptb_energy = matmul_totals(PTBAccelerator().run_trace(trace))
    return StratificationSweep(
        model=model, points=points, balanced=balanced,
        ptb_edp=ptb_latency * ptb_energy,
    )
