"""Architecture ablations: what each Bishop mechanism contributes.

DESIGN.md calls out the design choices behind Bishop; this harness isolates
them by toggling the simulator's policy switches on the same workload:

* ``full``            — stratifier + TTB skipping + balanced θ_s (default);
* ``no_stratifier``   — everything on the dense core (Sec. 6.4's ablation);
* ``no_skip``         — inactive bundles processed like active ones;
* ``no_skip_no_strat``— both off: a PTB-like homogeneous dense design with
  bundling only;
* ``tiny_bundles``    — (1,1) bundles: spike-level granularity (the
  conventional approach of Fig. 4a, no intra-bundle reuse).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..arch import BishopAccelerator, BishopConfig
from ..bundles import BundleSpec
from ..model import model_config
from .synthetic import PROFILES, synthetic_trace

__all__ = ["AblationPoint", "architecture_ablation", "ABLATION_VARIANTS"]

ABLATION_VARIANTS = (
    "full", "no_stratifier", "no_skip", "no_skip_no_strat", "tiny_bundles",
)


@dataclass(frozen=True)
class AblationPoint:
    variant: str
    latency_s: float
    energy_mj: float

    @property
    def edp(self) -> float:
        return self.latency_s * self.energy_mj


def _config_for(variant: str, spec: BundleSpec) -> BishopConfig:
    if variant == "full":
        return BishopConfig(bundle_spec=spec)
    if variant == "no_stratifier":
        return BishopConfig(bundle_spec=spec, use_stratifier=False)
    if variant == "no_skip":
        return BishopConfig(bundle_spec=spec, skip_inactive_bundles=False)
    if variant == "no_skip_no_strat":
        return BishopConfig(
            bundle_spec=spec, use_stratifier=False, skip_inactive_bundles=False
        )
    if variant == "tiny_bundles":
        return BishopConfig(bundle_spec=BundleSpec(1, 1))
    raise ValueError(f"unknown variant {variant!r}; options: {ABLATION_VARIANTS}")


@lru_cache(maxsize=8)
def architecture_ablation(
    model: str = "model3", bs_t: int = 2, bs_n: int = 4, seed: int = 0
) -> dict[str, AblationPoint]:
    """Run every variant on the same trace; returns per-variant totals."""
    spec = BundleSpec(bs_t, bs_n)
    trace = synthetic_trace(model_config(model), PROFILES[model], spec, seed=seed)
    points = {}
    for variant in ABLATION_VARIANTS:
        config = _config_for(variant, spec)
        report = BishopAccelerator(config).run_trace(trace)
        points[variant] = AblationPoint(
            variant=variant,
            latency_s=report.total_latency_s,
            energy_mj=report.total_energy_mj,
        )
    return points
