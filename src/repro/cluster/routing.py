"""Front-end routing policies: which chip serves the next request.

The router consults a policy with the request and the *eligible* chips
(active, accepting, hosting the model, queue not full — see
``repro.cluster.admission``).  Policies are deterministic: given the same
stream and fleet they always produce the same assignment, which keeps
cluster experiments cacheable by the runtime.

``round_robin``
    Cycle through eligible chips regardless of load or fit — the baseline.
``least_work``
    Join the chip with the least outstanding estimated work (queued plus
    in-flight single-request service estimates) — classic load balancing,
    blind to heterogeneity.
``sparsity``
    Sparsity-aware affinity: minimize *expected completion* — the chip's
    outstanding work **plus the model's service time on that chip**.  A
    chip's per-model service estimate encodes its core provisioning, so
    high-sparsity traces gravitate to sparse-core-heavy chips (where their
    stratified-up workload runs on 2× the TTB units) and dense traces to
    dense-core-heavy chips, while the outstanding-work term still spreads
    load when the preferred chips back up.
"""

from __future__ import annotations

from ..serve.simulate import ChipServer
from ..serve.workload import Request

__all__ = [
    "POLICIES",
    "LeastOutstanding",
    "RoundRobin",
    "RoutingPolicy",
    "SparsityAffinity",
    "make_policy",
]


class RoutingPolicy:
    """Base class: pick one chip among the eligible, or ``None`` to shed."""

    name = "?"

    def choose(
        self, request: Request, eligible: list[ChipServer]
    ) -> ChipServer | None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any routing state; called at the start of every run so a
        reused policy instance routes each stream identically."""


class RoundRobin(RoutingPolicy):
    """Cycle through eligible chips in fleet order."""

    name = "round_robin"

    def __init__(self):
        self._turn = 0

    def reset(self):
        self._turn = 0

    def choose(self, request, eligible):
        if not eligible:
            return None
        chip = eligible[self._turn % len(eligible)]
        self._turn += 1
        return chip


class LeastOutstanding(RoutingPolicy):
    """Join the chip with the least outstanding estimated work."""

    name = "least_work"

    def choose(self, request, eligible):
        if not eligible:
            return None
        # min() is stable: fleet order breaks exact ties deterministically.
        return min(eligible, key=lambda chip: chip.outstanding_s)


class SparsityAffinity(RoutingPolicy):
    """Minimize expected completion: outstanding work + service time on
    that chip (the heterogeneity-aware term)."""

    name = "sparsity"

    def choose(self, request, eligible):
        if not eligible:
            return None
        return min(
            eligible,
            key=lambda chip: chip.outstanding_s
            + chip.service_estimate_s(request.model),
        )


POLICIES: dict[str, type[RoutingPolicy]] = {
    policy.name: policy
    for policy in (RoundRobin, LeastOutstanding, SparsityAffinity)
}


def make_policy(policy: str | RoutingPolicy) -> RoutingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {policy!r}; options {sorted(POLICIES)}"
        ) from None
