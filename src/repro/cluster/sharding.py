"""Sharded fleet simulation: planet-scale clusters in bounded time windows.

The single-process :class:`~repro.cluster.simulate.ClusterSimulation`
shares one engine clock across every chip, so fleet size is bounded by
one core's event throughput — and its front-end router scans the whole
fleet per request.  This module partitions the fleet into **shards** that
advance independently:

* :func:`partition_fleet` deals chips to shards round-robin (chip ``i``
  → shard ``i % num_shards``), preserving global chip names;
* each :class:`ShardState` owns a private engine, its chips'
  :class:`~repro.serve.simulate.ChipServer` loops, and a shard-local
  routing policy; it advances in **windows** — ``step(requests, until)``
  feeds one window's arrivals, runs its engine exactly to the window
  edge (``Engine.run(until=...)``), and returns a picklable
  :class:`WindowDigest` of streaming latency sketches and counters;
* the **coordinator** (:func:`simulate_cluster_sharded`) walks the
  arrival stream window by window, assigns each request to a shard
  (:data:`SHARD_POLICIES`), dispatches the window to every busy shard
  through the :class:`~repro.runtime.executor.ShardPool` actor pool, and
  merges the digests — driving the windowed autoscaler and the
  SLO-attainment report between windows.

Chips are dealt round-robin (not in contiguous blocks) so that, with
``num_shards`` dividing the fleet size, shard-level round-robin over
round-robin shards reproduces the global round-robin assignment *request
for request* — the conformance anchor the sharded path is tested
against.  In-flight batches cross window boundaries naturally because a
shard's engine state persists in its worker process between calls.

Determinism: the arrival trace is generated once by the coordinator
(workload seeds are split with ``numpy.random.SeedSequence.spawn`` —
see :func:`repro.serve.workload.spawn_seeds`), shard assignment is a
pure function of the stream and prior digests, and digests merge in
shard order — so a sharded run's report is independent of worker
scheduling and, for the trace itself, of the shard count.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from .. import obs
from ..arch.engine.kernel import Engine, Hold
from ..arch.engine.machine import BishopMachine
from ..arch.energy import EnergyModel
from ..serve.profiles import request_profile
from ..serve.scheduler import SchedulerConfig
from ..serve.simulate import ChipServer
from ..serve.sketch import LatencySketch
from ..serve.workload import Request, TenantSpec
from .admission import (
    AdmissionConfig,
    ShedRecord,
    TenantAdmission,
    eligible_chips,
)
from .autoscale import AutoscaleConfig, ScalingEvent
from .fleet import ChipSpec, FleetSpec, chip_config
from .report import (
    ClusterReport,
    ShardChipStats,
    WindowStats,
    build_sharded_cluster_report,
)
from .routing import make_policy

__all__ = [
    "SHARD_POLICIES",
    "ShardInit",
    "ShardState",
    "ShardingConfig",
    "WindowDigest",
    "make_shard_state",
    "partition_fleet",
    "simulate_cluster_sharded",
]

SHARD_POLICIES = ("round_robin", "least_backlog")

# Give up if this many consecutive windows pass with busy shards making
# zero progress — a stalled shard engine is a bug, not a backlog.
_STALL_WINDOWS = 10_000


@dataclass(frozen=True)
class ShardingConfig:
    """How a fleet is sharded and windowed.

    ``window_s`` is the coordination quantum: routing across shards and
    autoscaling happen only at window edges, so smaller windows track
    load faster while larger ones amortize per-window dispatch cost.
    ``jobs`` sizes the actor pool (``1`` = run shards inline, ``0`` =
    one worker per core).
    """

    num_shards: int = 4
    window_s: float = 0.25
    jobs: int = 1
    shard_policy: str = "round_robin"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("need at least one shard")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0")
        if self.shard_policy not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {self.shard_policy!r};"
                f" options {sorted(SHARD_POLICIES)}"
            )


def partition_fleet(
    fleet: FleetSpec, num_shards: int
) -> list[tuple[tuple[int, ChipSpec], ...]]:
    """Deal chips to shards round-robin, keeping global indices.

    Chip ``i`` goes to shard ``i % num_shards``; the returned entries
    carry ``(global_index, spec)`` so shards name chips globally
    (``chip7`` is ``chip7`` in any sharding).  Interleaving — rather
    than contiguous blocks — is what makes shard-level round-robin
    compose with chip-level round-robin into the global round-robin
    order when ``num_shards`` divides the fleet size.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if num_shards > len(fleet):
        raise ValueError(
            f"cannot split {len(fleet)} chips into {num_shards} shards"
        )
    shards: list[list[tuple[int, ChipSpec]]] = [[] for _ in range(num_shards)]
    for index, spec in enumerate(fleet.chips):
        shards[index % num_shards].append((index, spec))
    return [tuple(shard) for shard in shards]


# ----------------------------------------------------------------------
# The shard actor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardInit:
    """Picklable construction payload of one shard (actor factory input)."""

    shard: int
    chip_names: tuple[str, ...]
    chip_kinds: tuple[str, ...]
    chip_models: tuple[tuple[str, ...] | None, ...]
    workload_models: tuple[str, ...]
    policy: str
    scheduler: SchedulerConfig
    queue_capacity: int | None
    bs_t: int
    bs_n: int
    seed: int
    passes: str | None
    tenants: tuple[TenantSpec, ...] = ()


@dataclass(frozen=True)
class WindowDigest:
    """One shard's window summary — everything the coordinator consumes.

    Sketches cover **this window's completions only**; the coordinator
    merges them into the cumulative fleet sketch (exact, order-free
    merges — see :mod:`repro.serve.sketch`), so per-window payloads stay
    small no matter how long the run gets.
    """

    shard: int
    until_s: float
    window_served: int
    window_shed: int
    served: int                   # cumulative
    shed: int                     # cumulative
    delivered: int                # cumulative requests fed to this shard
    pending: int                  # queued across chips at window end
    inflight: int
    outstanding_s: float
    accepting_chips: int
    hosted_models: tuple[str, ...]
    latency: LatencySketch
    wait: LatencySketch
    applied: tuple[tuple[str, str | None], ...] = ()   # command acks
    wall_s: float = 0.0           # worker wall time spent in this step

    @property
    def busy(self) -> bool:
        return self.pending > 0 or self.inflight > 0


@dataclass(frozen=True)
class ShardFinal:
    """End-of-run shard summary: per-chip counters for the fleet report."""

    shard: int
    served: int
    shed: int
    delivered: int
    shed_by_model: dict[str, int]
    last_finish_s: float
    chips: tuple[ShardChipStats, ...]
    # Multi-tenant runs: this shard's cumulative per-tenant latency
    # sketches (mergeable across shards), sheds, and service seconds.
    tenant_latency: dict[str, LatencySketch] = field(default_factory=dict)
    tenant_shed: dict[str, int] = field(default_factory=dict)
    tenant_service_s: dict[str, float] = field(default_factory=dict)


class ShardState:
    """One shard's private simulator, living in one worker process.

    The ``recorder`` seam of :class:`ChipServer` points back at the
    shard, so completions stream into per-window latency/wait sample
    buffers instead of accumulating ``ServedRequest`` lists — a shard's
    memory footprint is bounded by its in-flight window, not the run
    length.
    """

    def __init__(self, init: ShardInit):
        self.init = init
        self.engine = Engine()
        self.policy = make_policy(init.policy)
        self.policy.reset()
        self.chips: list[ChipServer] = []
        self.served = 0
        self.shed = 0
        self.delivered = 0
        self.shed_by_model: dict[str, int] = {}
        self.last_finish_s = 0.0
        # Tenant quotas are enforced per shard (shards admit independently
        # between coordination windows); sketches are cumulative and merge
        # exactly across shards at finalize.
        self.tenant_admission = TenantAdmission(init.tenants)
        self.tenant_latency: dict[str, LatencySketch] = {
            spec.name: LatencySketch() for spec in init.tenants
        }
        self.tenant_shed: dict[str, int] = {}
        self._window_latencies: list[float] = []
        self._window_waits: list[float] = []
        self._window_served = 0
        self._window_shed = 0
        for name, kind, models in zip(
            init.chip_names, init.chip_kinds, init.chip_models
        ):
            hosted = (
                tuple(init.workload_models)
                if models is None
                else tuple(m for m in models if m in init.workload_models)
            )
            self._add_chip(name, kind, hosted)

    def _add_chip(
        self, name: str, kind: str, models: tuple[str, ...]
    ) -> ChipServer:
        init = self.init
        config = chip_config(kind, init.bs_t, init.bs_n)
        profiles = {
            model: request_profile(
                model, seed=init.seed, config=config, passes=init.passes
            )
            for model in models
        }
        chip = ChipServer(
            self.engine,
            BishopMachine(self.engine, name=name),
            profiles,
            init.scheduler,
            name=name,
            kind=kind,
            queue_capacity=init.queue_capacity,
            recorder=self,
            tenants=init.tenants,
        )
        self.chips.append(chip)
        return chip

    # -- ChipServer recorder seam -----------------------------------------
    def observe(
        self,
        request: Request,
        start_s: float,
        finish_s: float,
        batch_size: int,
        chip: str,
    ) -> None:
        self._window_latencies.append(finish_s - request.arrival_s)
        self._window_waits.append(start_s - request.arrival_s)
        self._window_served += 1
        self.served += 1
        if finish_s > self.last_finish_s:
            self.last_finish_s = finish_s
        if request.tenant:
            sketch = self.tenant_latency.setdefault(
                request.tenant, LatencySketch()
            )
            sketch.add(finish_s - request.arrival_s)
        self.tenant_admission.release(request)

    # -- window advance ----------------------------------------------------
    def _feed(self, requests: tuple[Request, ...]):
        for request in requests:
            gap = request.arrival_s - self.engine.now
            if gap > 0:
                yield Hold(gap)
            chip = None
            if self.tenant_admission.admit(request):
                chip = self.policy.choose(
                    request, eligible_chips(request, self.chips)
                )
                if chip is None:
                    self.tenant_admission.release(request)
            if chip is None:
                self.shed += 1
                self._window_shed += 1
                self.shed_by_model[request.model] = (
                    self.shed_by_model.get(request.model, 0) + 1
                )
                if request.tenant:
                    self.tenant_shed[request.tenant] = (
                        self.tenant_shed.get(request.tenant, 0) + 1
                    )
            else:
                chip.enqueue(request)
            self.delivered += 1

    def _apply(self, command: tuple) -> tuple[str, str | None]:
        action = command[0]
        if action == "add":
            _, kind, name = command
            chip = self._add_chip(name, kind, tuple(self.init.workload_models))
            return ("add", chip.name)
        if action == "drain":
            victim = self._drainable_victim()
            if victim is None:
                return ("drain", None)
            victim.accepting = False
            victim.close()
            return ("drain", victim.name)
        raise ValueError(f"unknown shard command {command!r}")

    def _drainable_victim(self) -> ChipServer | None:
        """Least-loaded accepting chip whose models stay covered in-shard."""
        accepting = [chip for chip in self.chips if chip.accepting]
        candidates = []
        for chip in accepting:
            others = [c for c in accepting if c is not chip]
            if all(
                any(other.hosts(model) for other in others)
                for model in chip.profiles
            ):
                candidates.append(chip)
        if not candidates:
            return None
        return min(candidates, key=lambda c: (c.outstanding_s, c.name))

    def step(
        self,
        requests: tuple[Request, ...],
        until: float,
        commands: tuple[tuple, ...] = (),
    ) -> WindowDigest:
        """Advance this shard exactly to ``until``; returns the digest.

        Commands (autoscaler add/drain decisions from the coordinator)
        apply at the window start, before any of the window's arrivals.
        """
        wall_start = time.perf_counter()
        applied = tuple(self._apply(command) for command in commands)
        self._window_latencies = []
        self._window_waits = []
        self._window_served = 0
        self._window_shed = 0
        with obs.span(
            "cluster.shard.step", cat="cluster",
            shard=self.init.shard, arrivals=len(requests),
        ):
            if requests:
                self.engine.spawn(
                    self._feed(tuple(requests)),
                    name=f"shard{self.init.shard}:feed",
                )
            self.engine.run(until=until)
        latency = LatencySketch()
        latency.add_many(self._window_latencies)
        wait = LatencySketch()
        wait.add_many(self._window_waits)
        accepting = [chip for chip in self.chips if chip.accepting]
        hosted: set[str] = set()
        for chip in accepting:
            if chip.has_queue_capacity():
                hosted.update(chip.profiles)
        return WindowDigest(
            shard=self.init.shard,
            until_s=until,
            window_served=self._window_served,
            window_shed=self._window_shed,
            served=self.served,
            shed=self.shed,
            delivered=self.delivered,
            pending=sum(chip.queue_depth for chip in self.chips),
            inflight=sum(chip.inflight for chip in self.chips),
            outstanding_s=sum(chip.outstanding_s for chip in self.chips),
            accepting_chips=len(accepting),
            hosted_models=tuple(sorted(hosted)),
            latency=latency,
            wait=wait,
            applied=applied,
            wall_s=time.perf_counter() - wall_start,
        )

    def finalize(self) -> ShardFinal:
        """End-of-run per-chip counters (called once, after the last step)."""
        for resource in self.engine.resources.values():
            resource._integrate()
        chips = tuple(
            ShardChipStats(
                name=chip.name or "chip",
                kind=chip.kind,
                models=tuple(sorted(chip.profiles)),
                requests_served=chip.served_count,
                mean_batch_size=chip.mean_batch_size,
                busy_s={
                    unit: resource.stats.busy_s
                    for unit, resource in chip.machine.resources.items()
                },
                capacity={
                    unit: resource.capacity
                    for unit, resource in chip.machine.resources.items()
                },
                dynamic_energy_pj=chip.dynamic_energy_pj,
                started_s=chip.started_s,
                accepting=chip.accepting,
                drained_s=chip.drained_s,
            )
            for chip in self.chips
        )
        tenant_service: dict[str, float] = {}
        for chip in self.chips:
            for tenant, service in chip.tenant_service_s.items():
                if tenant:
                    tenant_service[tenant] = (
                        tenant_service.get(tenant, 0.0) + service
                    )
        return ShardFinal(
            shard=self.init.shard,
            served=self.served,
            shed=self.shed,
            delivered=self.delivered,
            shed_by_model=dict(self.shed_by_model),
            last_finish_s=self.last_finish_s,
            chips=chips,
            tenant_latency=dict(self.tenant_latency),
            tenant_shed=dict(self.tenant_shed),
            tenant_service_s=tenant_service,
        )


def make_shard_state(init: ShardInit) -> ShardState:
    """ShardPool actor factory (``repro.cluster.sharding:make_shard_state``)."""
    return ShardState(init)


# ----------------------------------------------------------------------
# Shard-level routing
# ----------------------------------------------------------------------
class _ShardRouter:
    """Assign one window's requests to shards, between-window state only.

    ``round_robin`` cycles the eligible shards per request — with
    interleaved partitioning and chip-level round-robin this reproduces
    the global round-robin assignment exactly (the conformance mode).
    ``least_backlog`` sends each request to the eligible shard with the
    least estimated outstanding work per accepting chip, where the
    estimate is the last digest's outstanding plus this window's
    assignments so far.
    """

    def __init__(
        self,
        policy: str,
        num_shards: int,
        estimates: dict[str, float],
    ):
        self.policy = policy
        self.num_shards = num_shards
        self.estimates = estimates       # model → single-request seconds
        self._turn = 0

    def assign(
        self,
        requests: list[Request],
        digests: dict[int, WindowDigest],
        hosted: list[set[str]],
        accepting: list[int],
    ) -> tuple[dict[int, list[Request]], list[Request]]:
        """Split ``requests`` across shards; returns (per-shard, unroutable)."""
        per_shard: dict[int, list[Request]] = {}
        unroutable: list[Request] = []
        backlog = {
            shard: digests[shard].outstanding_s if shard in digests else 0.0
            for shard in range(self.num_shards)
        }
        for request in requests:
            eligible = [
                shard
                for shard in range(self.num_shards)
                if request.model in hosted[shard]
            ]
            if not eligible:
                unroutable.append(request)
                continue
            if self.policy == "round_robin":
                shard = eligible[self._turn % len(eligible)]
                self._turn += 1
            else:
                shard = min(
                    eligible,
                    key=lambda s: (
                        backlog[s] / max(1, accepting[s]), s
                    ),
                )
            backlog[shard] += self.estimates.get(request.model, 0.0)
            per_shard.setdefault(shard, []).append(request)
        return per_shard, unroutable


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
def simulate_cluster_sharded(
    requests: list[Request],
    fleet: FleetSpec,
    scheduler: SchedulerConfig | None = None,
    policy: str = "round_robin",
    admission: AdmissionConfig | None = None,
    autoscale: AutoscaleConfig | None = None,
    sharding: ShardingConfig | None = None,
    *,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
    energy: EnergyModel | None = None,
    passes: str | None = None,
    slo_ms: float | None = None,
    slo_target: float = 0.99,
    burn_rules: tuple | None = None,
    alerts: bool = False,
    detectors: list | None = None,
    tenants: tuple[TenantSpec, ...] = (),
) -> ClusterReport:
    """Serve ``requests`` on a sharded fleet; returns the cluster report.

    The sharded counterpart of :func:`repro.cluster.simulate_cluster`:
    same fleet/scheduler/admission semantics, but chips are partitioned
    into ``sharding.num_shards`` independent engines coordinated at
    ``sharding.window_s`` boundaries on the actor pool.  ``policy`` (a
    name — instances don't cross process boundaries) routes *within*
    a shard; ``sharding.shard_policy`` routes *across* shards.  The
    optional ``autoscale`` control loop runs at window granularity on
    digest pressure.

    With ``slo_ms`` an :class:`~repro.obs.slo.SLOMonitor` runs
    *streaming* in the coordinator loop — each window's merged latency
    sketch feeds live attainment, error-budget, and multi-window
    burn-rate evaluation (``slo_target``/``burn_rules``), and the report
    carries the attainment series plus budget/alert record.  With
    ``alerts`` the :class:`~repro.obs.monitor.Monitor` detector set
    (``detectors`` to override) additionally watches the window stream
    for queue growth, shedding, saturation, and latency drift; all
    alert transitions land in ``report.alerts``.
    """
    if not isinstance(policy, str):
        raise TypeError(
            "sharded simulation needs a routing policy *name*"
            " (policy instances cannot cross process boundaries)"
        )
    scheduler = scheduler or SchedulerConfig()
    admission = admission or AdmissionConfig()
    sharding = sharding or ShardingConfig()
    energy = energy or EnergyModel()
    # Imported here: repro.runtime imports the harness registry, which
    # imports this package — runtime access must be deferred to call time.
    from ..runtime.executor import ShardPool

    stream = sorted(requests, key=lambda r: (r.arrival_s, r.index))
    models = tuple(sorted({r.model for r in stream}))
    if models:
        fleet.validate_placement(models)
    num_shards = sharding.num_shards
    shards = partition_fleet(fleet, num_shards)

    inits = [
        ShardInit(
            shard=index,
            chip_names=tuple(f"chip{i}" for i, _ in shard),
            chip_kinds=tuple(spec.kind for _, spec in shard),
            chip_models=tuple(spec.models for _, spec in shard),
            workload_models=models,
            policy=policy,
            scheduler=scheduler,
            queue_capacity=admission.queue_capacity,
            bs_t=bs_t,
            bs_n=bs_n,
            seed=seed,
            passes=passes,
            tenants=tuple(tenants),
        )
        for index, shard in enumerate(shards)
    ]
    # Static hosting sets; updated from digests (queue-full shards drop
    # out until a window frees capacity, drained chips stop counting).
    hosted: list[set[str]] = [
        {
            model
            for (_, spec) in shard
            for model in (spec.models if spec.models is not None else models)
            if model in models
        }
        for shard in shards
    ]
    accepting = [len(shard) for shard in shards]
    estimates = _service_estimates(fleet, models, bs_t, bs_n, seed, passes)
    router = _ShardRouter(sharding.shard_policy, num_shards, estimates)

    shed_records: list[ShedRecord] = []
    shed_by_model: dict[str, int] = {}
    scaling_events: list[ScalingEvent] = []
    windows: list[WindowStats] = []
    # Streaming analysis: the SLO monitor consumes each window's merged
    # sketch as the coordinator produces it (exactly equivalent to the
    # post-hoc pass — sketch merges are exact); the detector monitor
    # watches the fleet-aggregated window stats.
    slo_monitor = None
    if slo_ms is not None:
        slo_monitor = obs.SLOMonitor(
            obs.SLOObjective(slo_ms=float(slo_ms), target=slo_target),
            rules=burn_rules,
        )
    monitor = (
        obs.Monitor(detectors)
        if (alerts or detectors is not None)
        else None
    )
    total_latency = LatencySketch()
    total_wait = LatencySketch()
    digests: dict[int, WindowDigest] = {}
    pending_commands: dict[int, list[tuple]] = {}
    next_chip = len(fleet)
    next_scale_check = autoscale.interval_s if autoscale else None
    arrivals_done = False
    stalled = 0

    jobs = sharding.jobs if sharding.jobs else (os.cpu_count() or 1)
    pool = ShardPool(
        min(jobs, num_shards), "repro.cluster.sharding:make_shard_state"
    )
    # Entered manually: the span brackets the whole windowed run without
    # re-indenting the coordinator loop; closed in the finally below.
    run_span = obs.span(
        "cluster.sharded", cat="cluster",
        shards=num_shards, chips=len(fleet), requests=len(stream),
    )
    run_span.__enter__()
    try:
        position = 0
        window = 0
        while True:
            busy = {s for s, digest in digests.items() if digest.busy}
            if position >= len(stream) and not busy and window > 0:
                break
            start_s = window * sharding.window_s
            until = (window + 1) * sharding.window_s
            batch: list[Request] = []
            while (
                position < len(stream)
                and stream[position].arrival_s < until
            ):
                batch.append(stream[position])
                position += 1
            arrivals_done = position >= len(stream)
            per_shard, unroutable = router.assign(
                batch, digests, hosted, accepting
            )
            for request in unroutable:
                shed_records.append(ShedRecord(
                    request.index, request.model, request.arrival_s,
                    tenant=request.tenant,
                ))
                shed_by_model[request.model] = (
                    shed_by_model.get(request.model, 0) + 1
                )
            step_shards = sorted(
                busy | set(per_shard) | set(pending_commands)
            )
            window_span = obs.span(
                "cluster.window", cat="cluster",
                window=window, shards=len(step_shards), arrivals=len(batch),
            )
            with window_span:
                futures = {
                    shard: pool.submit(
                        shard,
                        inits[shard],
                        "step",
                        tuple(per_shard.get(shard, ())),
                        until,
                        tuple(pending_commands.get(shard, ())),
                    )
                    for shard in step_shards
                }
                pending_commands = {}
                window_served = 0
                window_shed = 0
                progressed = False
                for shard in step_shards:
                    digest = futures[shard].result()
                    digests[shard] = digest
                    # Per-worker window wall time, merged coordinator-side
                    # (workers on a process pool can't share the registry).
                    obs.observe("cluster.shard_window_s", digest.wall_s)
                    total_latency.update(digest.latency)
                    total_wait.update(digest.wait)
                    window_served += digest.window_served
                    window_shed += digest.window_shed
                    hosted[shard] = set(digest.hosted_models)
                    accepting[shard] = digest.accepting_chips
                    if digest.window_served or digest.window_shed:
                        progressed = True
                    for action, chip_name in digest.applied:
                        if chip_name is not None:
                            scaling_events.append(ScalingEvent(
                                t_s=start_s,
                                action=action,
                                chip=chip_name,
                                pressure=_pressure(
                                    digests, accepting, sharding.window_s
                                ),
                                accepting_chips=sum(accepting),
                            ))
            window_shed += len(unroutable)
            backlog = sum(d.pending + d.inflight for d in digests.values())
            window_p99 = (
                _window_percentile(digests, step_shards, 99.0) * 1e3
            )
            window_mean = (
                _window_mean(digests, step_shards) * 1e3
            )
            attainment = None
            budget_remaining = None
            burn_rate = None
            if slo_monitor is not None:
                merged = LatencySketch()
                for shard in step_shards:
                    merged.update(digests[shard].latency)
                state = slo_monitor.observe_window(
                    window, start_s, until, merged
                )
                attainment = state.attainment
                budget_remaining = state.budget_remaining
                burn_rate = state.burn_rate
            stats = WindowStats(
                index=window,
                start_s=start_s,
                end_s=until,
                arrivals=len(batch),
                served=window_served,
                shed=window_shed,
                backlog=backlog,
                p99_ms=window_p99,
                mean_ms=window_mean,
                slo_attainment=attainment,
                pressure=(
                    _pressure(digests, accepting, sharding.window_s)
                    if monitor is not None
                    else None
                ),
                pending=(
                    sum(d.pending for d in digests.values())
                    if monitor is not None
                    else None
                ),
                budget_remaining=budget_remaining,
                burn_rate=burn_rate,
            )
            windows.append(stats)
            if monitor is not None:
                monitor.observe_window(stats)
            if autoscale is not None and not arrivals_done:
                while next_scale_check <= until:
                    next_scale_check += autoscale.interval_s
                    command, target = _autoscale_decision(
                        autoscale, digests, accepting, sharding.window_s,
                        next_chip,
                    )
                    if command is not None:
                        pending_commands.setdefault(target, []).append(command)
                        if command[0] == "add":
                            next_chip += 1
            if busy and not progressed and not batch:
                stalled += 1
                if stalled > _STALL_WINDOWS:
                    raise RuntimeError(
                        "sharded cluster simulation stalled:"
                        f" {sum(d.served for d in digests.values())} served,"
                        f" backlog {backlog} after {window + 1} windows"
                    )
            else:
                stalled = 0
            window += 1

        finals: list[ShardFinal] = []
        futures = {
            shard: pool.submit(shard, inits[shard], "finalize")
            for shard in range(num_shards)
        }
        for shard in range(num_shards):
            finals.append(futures[shard].result())
    finally:
        pool.close()
        run_span.__exit__(None, None, None)

    served = sum(final.served for final in finals)
    shard_shed = sum(final.shed for final in finals)
    tenant_latency: dict[str, LatencySketch] = {
        spec.name: LatencySketch() for spec in tenants
    }
    tenant_shed_totals: dict[str, int] = {}
    tenant_service_totals: dict[str, float] = {}
    for final in finals:
        for model, count in final.shed_by_model.items():
            shed_by_model[model] = shed_by_model.get(model, 0) + count
        for tenant, sketch in final.tenant_latency.items():
            merged = tenant_latency.setdefault(tenant, LatencySketch())
            merged.update(sketch)
        for tenant, count in final.tenant_shed.items():
            tenant_shed_totals[tenant] = (
                tenant_shed_totals.get(tenant, 0) + count
            )
        for tenant, service in final.tenant_service_s.items():
            tenant_service_totals[tenant] = (
                tenant_service_totals.get(tenant, 0.0) + service
            )
    for record in shed_records:
        if record.tenant:
            tenant_shed_totals[record.tenant] = (
                tenant_shed_totals.get(record.tenant, 0) + 1
            )
    total_shed = shard_shed + len(shed_records)
    if served + total_shed != len(stream):  # pragma: no cover - invariant
        raise RuntimeError(
            f"sharded simulation lost requests: {served} served +"
            f" {total_shed} shed != {len(stream)} offered"
        )

    horizon = max((final.last_finish_s for final in finals), default=0.0)
    span = stream[-1].arrival_s - stream[0].arrival_s if stream else 0.0
    offered = (len(stream) - 1) / span if span > 0 else 0.0
    chip_stats = [chip for final in finals for chip in final.chips]
    chip_stats.sort(key=lambda c: c.name)
    alert_events = [
        *(slo_monitor.alerts if slo_monitor is not None else ()),
        *(monitor.alerts if monitor is not None else ()),
    ]
    alert_events.sort(
        key=lambda e: (e.window if e.window is not None else -1, e.rule)
    )
    return build_sharded_cluster_report(
        chip_stats,
        total_shed,
        shed_by_model,
        shed_records,
        total_latency,
        total_wait,
        offered_rps=offered,
        horizon_s=horizon,
        policy=policy,
        queue_capacity=admission.queue_capacity,
        initial_chips=len(fleet),
        scaling_events=scaling_events,
        static_pj_per_s=energy.static_pj(1.0),
        num_shards=num_shards,
        window_s=sharding.window_s,
        windows=windows,
        slo_ms=slo_ms,
        slo_summary=(
            slo_monitor.summary() if slo_monitor is not None else None
        ),
        alerts=[event.to_dict() for event in alert_events],
        tenants=tuple(tenants),
        tenant_latency=tenant_latency,
        tenant_shed=tenant_shed_totals,
        tenant_service_s=tenant_service_totals,
    )


def _service_estimates(
    fleet: FleetSpec,
    models: tuple[str, ...],
    bs_t: int,
    bs_n: int,
    seed: int,
    passes: str | None,
) -> dict[str, float]:
    """Per-model single-request latency on the first hosting chip's kind —
    the coordinator's backlog-estimate unit for ``least_backlog``."""
    estimates: dict[str, float] = {}
    for model in models:
        for spec in fleet.chips:
            if spec.models is None or model in spec.models:
                config = chip_config(spec.kind, bs_t, bs_n)
                estimates[model] = request_profile(
                    model, seed=seed, config=config, passes=passes
                ).single_latency_s
                break
    return estimates


def _pressure(
    digests: dict[int, WindowDigest],
    accepting: list[int],
    window_s: float,
) -> float:
    chips = sum(accepting)
    if not chips:
        return 0.0
    outstanding = sum(d.outstanding_s for d in digests.values())
    return outstanding / (chips * window_s)


def _window_percentile(
    digests: dict[int, WindowDigest], shards: list[int], q: float
) -> float:
    merged = LatencySketch()
    for shard in shards:
        merged.update(digests[shard].latency)
    return merged.percentile(q) if merged.count else 0.0


def _window_mean(
    digests: dict[int, WindowDigest], shards: list[int]
) -> float:
    merged = LatencySketch()
    for shard in shards:
        merged.update(digests[shard].latency)
    return merged.mean_s


def _autoscale_decision(
    config: AutoscaleConfig,
    digests: dict[int, WindowDigest],
    accepting: list[int],
    window_s: float,
    next_chip: int,
) -> tuple[tuple | None, int]:
    """One windowed control-loop tick: returns (command, target shard).

    The same pressure signal as the single-process
    :class:`~repro.cluster.autoscale.Autoscaler`, but normalized by the
    *autoscale interval* and evaluated on window-edge digests: add a
    replica to the emptiest shard under high pressure, drain from the
    least-loaded shard under low pressure (the shard itself picks — and
    may refuse — the placement-safe victim).
    """
    total_accepting = sum(accepting)
    if not total_accepting or not digests:
        return None, 0
    outstanding = sum(d.outstanding_s for d in digests.values())
    pressure = outstanding / (total_accepting * config.interval_s)
    if pressure > config.high_pressure and total_accepting < config.max_chips:
        target = min(
            range(len(accepting)), key=lambda s: (accepting[s], s)
        )
        return ("add", config.kind, f"chip{next_chip}"), target
    if pressure < config.low_pressure and total_accepting > config.min_chips:
        candidates = [
            shard for shard, count in enumerate(accepting) if count > 0
        ]
        if not candidates:
            return None, 0
        target = min(
            candidates,
            key=lambda s: (
                digests[s].outstanding_s if s in digests else 0.0, s
            ),
        )
        return ("drain",), target
    return None, 0
