"""Fleet specification: chip kinds, model placement, and parsing.

A *fleet* is an ordered list of chips.  Each chip has a **kind** — a named
Bishop configuration variant — and an optional **placement**: the subset
of Table-2 models whose weights it hosts.  Kinds extend the paper's
intra-chip heterogeneity (dense/sparse/attention cores) to inter-chip
heterogeneity: a ``sparse_heavy`` chip doubles the sparse-core TTB units
and stratifies more of the workload onto them, so high-sparsity traces
(model2/model5-like) run fastest there, while ``dense_heavy`` trades
sparse units for a wider dense core, which suits low-sparsity traces.
All kinds keep the paper's attention core, spike generator, DRAM
channel, and clock; the total PE budget stays within ~15% of the
Sec.-6.1 chip so fleets compare like-for-like.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from ..arch import BishopConfig, resolve_overrides
from ..model import MODEL_ZOO
from ..serve.profiles import profile_config, request_profile

__all__ = [
    "CHIP_KINDS",
    "ChipSpec",
    "FleetSpec",
    "chip_config",
    "fleet_capacity_rps",
    "homogeneous_fleet",
    "load_chip_kinds",
    "parse_fleet",
    "register_chip_kind",
]

# Kind name → overrides on the standard serving-chip configuration.
# dense_rows scales the dense core (rows × 32 output features);
# sparse_units counts parallel TTB units; stratify_dense_fraction moves
# the stratification threshold so the workload split matches the silicon.
CHIP_KINDS: dict[str, dict] = {
    "standard": {},
    "sparse_heavy": {
        "sparse_units": 256,
        "stratify_dense_fraction": 0.35,
    },
    "dense_heavy": {
        "sparse_units": 64,
        "dense_rows": 24,
        "stratify_dense_fraction": 0.65,
    },
}


def chip_config(kind: str, bs_t: int = 2, bs_n: int = 4) -> BishopConfig:
    """The :class:`BishopConfig` of one chip kind at a bundle shape.

    ``standard`` is byte-identical to the single-chip serving
    configuration (:func:`repro.serve.profiles.profile_config`), which is
    what makes an N=1 standard fleet reproduce ``simulate_serving``.
    Registered kinds may carry nested ``bundle_spec``/``dram`` dicts (the
    DSE fleet-export format); an explicit ``bundle_spec`` override wins
    over the ``bs_t``/``bs_n`` arguments.
    """
    key = (kind, int(bs_t), int(bs_n))
    cached = _CONFIG_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        overrides = CHIP_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown chip kind {kind!r}; options {sorted(CHIP_KINDS)}"
        ) from None
    base = profile_config(bs_t, bs_n)
    config = resolve_overrides(base, overrides) if overrides else base
    _CONFIG_CACHE[key] = config
    return config


# Memoization over the mutable CHIP_KINDS registry: a 10,000-chip fleet
# has a handful of distinct kinds, so per-kind results are cached and
# invalidated whenever a kind is (re)registered.
_CONFIG_CACHE: dict[tuple[str, int, int], BishopConfig] = {}


def _invalidate_kind_caches() -> None:
    _CONFIG_CACHE.clear()
    _chip_capacity_rps.cache_clear()


def register_chip_kind(name: str, overrides: dict) -> None:
    """Register (or replace) a chip kind from a config-override dict.

    The overrides are validated eagerly — a kind that cannot build a
    valid :class:`BishopConfig` is rejected at registration, not at first
    use deep inside a fleet simulation.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"bad chip kind name {name!r}")
    try:
        resolve_overrides(profile_config(), dict(overrides))
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"chip kind {name!r} has invalid overrides: {error}"
        ) from error
    CHIP_KINDS[name] = dict(overrides)
    _invalidate_kind_caches()


def load_chip_kinds(path: Path | str) -> list[str]:
    """Register every chip kind in a kinds file (``repro dse --export-fleet``).

    Accepts either the DSE export payload (``{"kinds": {name: overrides}}``)
    or a bare ``{name: overrides}`` mapping.  Returns the registered names
    in file order.
    """
    payload = json.loads(Path(path).read_text())
    kinds = payload.get("kinds", payload) if isinstance(payload, dict) else None
    if not isinstance(kinds, dict) or not kinds:
        raise ValueError(f"{path}: expected a JSON object of chip kinds")
    # Validate the whole file before touching the registry: a bad Nth kind
    # must not leave kinds 1..N-1 registered.
    for name, overrides in kinds.items():
        if not isinstance(overrides, dict):
            raise ValueError(f"{path}: kind {name!r} overrides must be an object")
        try:
            resolve_overrides(profile_config(), dict(overrides))
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"{path}: chip kind {name!r} has invalid overrides: {error}"
            ) from error
    names = []
    for name, overrides in kinds.items():
        register_chip_kind(name, overrides)
        names.append(name)
    return names


@dataclass(frozen=True)
class ChipSpec:
    """One chip in a fleet: its kind and the models it hosts.

    ``models=None`` means the chip replicates every model of the workload
    (full replication); a tuple restricts placement — requests for models
    this chip does not host are never routed to it.
    """

    kind: str = "standard"
    models: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in CHIP_KINDS:
            raise ValueError(
                f"unknown chip kind {self.kind!r}; options {sorted(CHIP_KINDS)}"
            )
        if self.models is not None:
            if not self.models:
                raise ValueError("a chip's placement cannot be empty")
            unknown = [m for m in self.models if m not in MODEL_ZOO]
            if unknown:
                raise ValueError(
                    f"unknown model(s) {unknown} in placement;"
                    f" options {sorted(MODEL_ZOO)}"
                )

    def hosted_models(self, workload_models: tuple[str, ...]) -> tuple[str, ...]:
        """Models this chip serves, resolved against the workload's set."""
        if self.models is None:
            return tuple(workload_models)
        return tuple(m for m in self.models if m in workload_models)


@dataclass(frozen=True)
class FleetSpec:
    """An ordered fleet of chips (order fixes router determinism)."""

    chips: tuple[ChipSpec, ...]

    def __post_init__(self) -> None:
        if not self.chips:
            raise ValueError("a fleet needs at least one chip")

    def __len__(self) -> int:
        return len(self.chips)

    def validate_placement(self, workload_models: tuple[str, ...]) -> None:
        """Every workload model must be hosted by at least one chip."""
        unplaced = [
            model
            for model in workload_models
            if not any(chip.hosted_models((model,)) for chip in self.chips)
        ]
        if unplaced:
            raise ValueError(
                f"model(s) {unplaced} are not placed on any chip; add a"
                " replica hosting them or use models=None (full replication)"
            )


def homogeneous_fleet(size: int, kind: str = "standard") -> FleetSpec:
    """``size`` identical fully-replicated chips of one kind."""
    if size < 1:
        raise ValueError("fleet size must be >= 1")
    return FleetSpec(tuple(ChipSpec(kind=kind) for _ in range(size)))


def fleet_capacity_rps(
    fleet: FleetSpec,
    weights: dict[str, float],
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
    passes: str | None = None,
) -> float:
    """Aggregate fleet capacity on a model mix: Σ chips 1/mean-latency.

    Each chip's mean single-request latency is evaluated with *its own*
    configuration over the part of the mix it actually hosts (weights
    renormalized; a chip hosting none of the mix contributes nothing), so
    heterogeneous and placement-restricted fleets are rated fairly.
    Experiments and the CLI derive arrival rates from this
    (``rate = rho × capacity``).  This is a service-rate rating, not an
    exact capacity bound: under heavily skewed placement the achievable
    rate also depends on how the mix balance matches the placement.

    Per-(kind, placement) results are memoized: a 10,000-chip
    homogeneous fleet rates at the cost of one chip, instead of
    recomputing identical profiles per chip.
    """
    mix_items = tuple(sorted(weights.items()))
    return sum(
        _chip_capacity_rps(
            spec.kind, spec.models, mix_items, int(bs_t), int(bs_n),
            int(seed), passes,
        )
        for spec in fleet.chips
    )


@lru_cache(maxsize=None)
def _chip_capacity_rps(
    kind: str,
    placement: tuple[str, ...] | None,
    mix_items: tuple[tuple[str, float], ...],
    bs_t: int,
    bs_n: int,
    seed: int,
    passes: str | None,
) -> float:
    """One chip's rated capacity (1/mean-latency on its hosted mix share).

    Cleared by :func:`_invalidate_kind_caches` whenever the kind registry
    changes, so stale configurations never leak across registrations.
    """
    hosted = {
        model: weight
        for model, weight in mix_items
        if placement is None or model in placement
    }
    share = sum(hosted.values())
    if share == 0.0:
        return 0.0
    config = chip_config(kind, bs_t, bs_n)
    mean_latency = sum(
        (weight / share)
        * request_profile(
            model, seed=seed, config=config, passes=passes
        ).single_latency_s
        for model, weight in hosted.items()
    )
    return 1.0 / mean_latency


def parse_fleet(spec: str) -> FleetSpec:
    """Parse ``"standard:4"`` / ``"dense_heavy:2+sparse_heavy:2"``.

    ``+`` separates entries (``,`` already delimits sweep-axis values on
    the CLI); an entry without a count means one chip of that kind.
    """
    chips: list[ChipSpec] = []
    for entry in spec.split("+"):
        entry = entry.strip()
        if not entry:
            continue
        kind, sep, raw_count = entry.partition(":")
        kind = kind.strip()
        count = int(raw_count) if sep else 1
        if count < 1:
            raise ValueError(f"chip count must be positive in {spec!r}")
        chips.extend(ChipSpec(kind=kind) for _ in range(count))
    if not chips:
        raise ValueError(f"empty fleet spec {spec!r}")
    return FleetSpec(tuple(chips))
