"""Cluster-level results: per-chip and fleet-aggregate statistics.

Reuses the serving layer's percentile machinery
(:func:`repro.serve.report.latency_stats`) so single-chip and cluster
reports quote identical statistics, and stays well-defined on degenerate
outcomes (a fully-shed stream reports zeros, not errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.engine.timeline import EngineRun
from ..serve.report import ServedRequest, latency_stats, slo_block
from ..serve.simulate import ChipServer
from ..serve.sketch import LatencySketch
from ..serve.workload import TenantSpec
from .admission import ShedRecord
from .autoscale import ScalingEvent

__all__ = [
    "ChipReport",
    "ClusterReport",
    "ShardChipStats",
    "WindowStats",
    "build_cluster_report",
    "build_sharded_cluster_report",
    "tenant_report",
]


@dataclass(frozen=True)
class ChipReport:
    """One chip's contribution to a cluster run."""

    name: str
    kind: str
    models: tuple[str, ...]
    requests_served: int
    mean_batch_size: float
    utilization: dict[str, float]     # busy fraction over the chip's active span
    dynamic_energy_mj: float
    static_energy_mj: float
    active_span_s: float
    added_s: float                    # 0.0 for the initial fleet
    drained: bool

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "models": list(self.models),
            "requests_served": self.requests_served,
            "mean_batch_size": self.mean_batch_size,
            "utilization": dict(self.utilization),
            "energy_mj": {
                "dynamic": self.dynamic_energy_mj,
                "static": self.static_energy_mj,
            },
            "active_span_s": self.active_span_s,
            "added_s": self.added_s,
            "drained": self.drained,
        }


def tenant_report(
    specs: tuple[TenantSpec, ...],
    latency: dict[str, LatencySketch],
    shed: dict[str, int],
    service_s: dict[str, float],
) -> dict[str, dict]:
    """Per-tenant report blocks from per-tenant latency sketches.

    Covers the union of declared tenants and tenants actually observed —
    a declared tenant that served zero requests still gets a row (empty
    sketch → all-zero latency stats, zero share), never a ``KeyError`` or
    ``NaN``: "tenant was idle" must be distinguishable from "tenant was
    dropped from the report".
    """
    by_name = {spec.name: spec for spec in specs}
    names = sorted(set(by_name) | set(latency) | set(shed) | set(service_s))
    total_service = sum(service_s.values())
    blocks: dict[str, dict] = {}
    for name in names:
        spec = by_name.get(name)
        sketch = latency.get(name) or LatencySketch()
        stats = latency_stats(sketch)
        service = service_s.get(name, 0.0)
        blocks[name] = {
            "weight": spec.weight if spec else 1.0,
            "quota": spec.quota if spec else None,
            "served": stats.count,
            "shed": shed.get(name, 0),
            "service_s": service,
            "service_share": (
                service / total_service if total_service > 0 else 0.0
            ),
            "latency_ms": {
                "mean": stats.mean_ms,
                "max": stats.max_ms,
                **stats.percentiles_ms,
            },
        }
    return blocks


@dataclass(frozen=True)
class ShardChipStats:
    """One chip's summary counters, as shipped in a shard's final digest.

    The sharded simulation never moves ``ServedRequest`` lists between
    processes; these counters (plus the shard's latency sketches) are all
    the coordinator needs to build :class:`ChipReport`-equivalent rows.
    """

    name: str
    kind: str
    models: tuple[str, ...]
    requests_served: int
    mean_batch_size: float
    busy_s: dict[str, float]          # per engine unit
    capacity: dict[str, int]
    dynamic_energy_pj: float
    started_s: float
    accepting: bool
    drained_s: float | None

    def active_span_s(self, horizon_s: float) -> float:
        end = horizon_s
        if not self.accepting and self.drained_s is not None:
            end = self.drained_s
        return max(0.0, end - self.started_s)


@dataclass(frozen=True)
class WindowStats:
    """One coordination window of a sharded run, fleet-aggregated."""

    index: int
    start_s: float
    end_s: float
    arrivals: int
    served: int
    shed: int
    backlog: int                 # queued + in-flight across shards at window end
    p99_ms: float                # this window's completions
    mean_ms: float
    slo_attainment: float | None = None
    # Streaming-monitor series (populated when the SLO monitor / alert
    # detectors run alongside the coordinator loop).
    pressure: float | None = None        # outstanding work / fleet capacity
    pending: int | None = None           # queued-only (backlog minus in-flight)
    budget_remaining: float | None = None
    burn_rate: float | None = None

    def to_dict(self) -> dict:
        payload = {
            "index": self.index,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "arrivals": self.arrivals,
            "served": self.served,
            "shed": self.shed,
            "backlog": self.backlog,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
        }
        if self.slo_attainment is not None:
            payload["slo_attainment"] = self.slo_attainment
        for key in ("pressure", "pending", "budget_remaining", "burn_rate"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


@dataclass
class ClusterReport:
    """Aggregate view of one cluster simulation."""

    num_requests: int
    served: int
    shed: int
    offered_rps: float
    horizon_s: float                  # last completion time
    throughput_rps: float
    latency_percentiles_ms: dict[str, float]
    latency_mean_ms: float
    latency_max_ms: float
    queue_wait_mean_ms: float
    policy: str
    queue_capacity: int | None
    initial_chips: int
    final_accepting_chips: int
    chips: dict[str, ChipReport]
    shed_by_model: dict[str, int]
    scaling_events: tuple[ScalingEvent, ...]
    dynamic_energy_mj: float
    static_energy_mj: float
    requests: tuple[ServedRequest, ...] = field(default_factory=tuple, repr=False)
    shed_records: tuple[ShedRecord, ...] = field(default_factory=tuple, repr=False)
    run: EngineRun | None = field(default=None, repr=False)
    # Sharded runs only (defaults keep the single-process path unchanged).
    num_shards: int = 1
    window_s: float | None = None
    windows: tuple[WindowStats, ...] = field(default_factory=tuple, repr=False)
    latency_sketch: LatencySketch | None = field(default=None, repr=False)
    slo: dict | None = None
    alerts: tuple[dict, ...] = field(default_factory=tuple)
    # Multi-tenant runs: per-tenant report blocks (tenant_report) and the
    # underlying mergeable latency sketches (empty for idle tenants).
    tenants: dict[str, dict] = field(default_factory=dict)
    tenant_sketches: dict[str, LatencySketch] = field(
        default_factory=dict, repr=False
    )

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.num_requests if self.num_requests else 0.0

    @property
    def energy_per_request_mj(self) -> float:
        if not self.served:
            return 0.0
        return (self.dynamic_energy_mj + self.static_energy_mj) / self.served

    def to_dict(self) -> dict:
        """JSON-ready payload (drops raw request records and the timeline)."""
        payload = {
            "num_requests": self.num_requests,
            "served": self.served,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "shed_by_model": dict(self.shed_by_model),
            "offered_rps": self.offered_rps,
            "horizon_s": self.horizon_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "mean": self.latency_mean_ms,
                "max": self.latency_max_ms,
                **self.latency_percentiles_ms,
            },
            "queue_wait_mean_ms": self.queue_wait_mean_ms,
            "router": {
                "policy": self.policy,
                "queue_capacity": self.queue_capacity,
            },
            "fleet": {
                "initial_chips": self.initial_chips,
                "final_accepting_chips": self.final_accepting_chips,
                "chips": {name: chip.to_dict() for name, chip in self.chips.items()},
            },
            "autoscaler_events": [event.to_dict() for event in self.scaling_events],
            "energy_mj": {
                "dynamic": self.dynamic_energy_mj,
                "static": self.static_energy_mj,
                "per_request": self.energy_per_request_mj,
            },
        }
        if self.num_shards > 1 or self.windows:
            payload["sharding"] = {
                "num_shards": self.num_shards,
                "window_s": self.window_s,
                "num_windows": len(self.windows),
                "windows": [window.to_dict() for window in self.windows],
            }
        if self.slo is not None:
            payload["slo"] = dict(self.slo)
        if self.alerts:
            payload["alerts"] = [dict(alert) for alert in self.alerts]
        if self.tenants:
            payload["tenants"] = {
                name: dict(block) for name, block in self.tenants.items()
            }
        return payload


def _chip_report(chip: ChipServer, horizon_s: float, static_pj_per_s: float) -> ChipReport:
    span = chip.active_span_s(horizon_s)
    batch_sizes = [r.batch_size for r in chip.served]
    return ChipReport(
        name=chip.name or "chip",
        kind=chip.kind,
        models=tuple(sorted(chip.profiles)),
        requests_served=len(chip.served),
        mean_batch_size=float(np.mean(batch_sizes)) if batch_sizes else 0.0,
        utilization={
            unit: resource.stats.utilization(span, resource.capacity)
            for unit, resource in chip.machine.resources.items()
        },
        dynamic_energy_mj=chip.dynamic_energy_pj * 1e-9,
        static_energy_mj=static_pj_per_s * span * 1e-9,
        active_span_s=span,
        added_s=chip.started_s,
        drained=chip.drained_s is not None and not chip.accepting,
    )


def build_cluster_report(
    chips: list[ChipServer],
    shed: list[ShedRecord],
    offered_rps: float,
    policy: str,
    queue_capacity: int | None,
    initial_chips: int,
    scaling_events: list[ScalingEvent],
    static_pj_per_s: float,
    run: EngineRun | None = None,
    tenants: tuple[TenantSpec, ...] = (),
    tenant_shed: dict[str, int] | None = None,
) -> ClusterReport:
    served = sorted(
        (r for chip in chips for r in chip.served), key=lambda r: r.index
    )
    tenant_shed = dict(tenant_shed or {})
    tenant_sketches: dict[str, LatencySketch] = {
        spec.name: LatencySketch() for spec in tenants
    }
    tenant_service: dict[str, float] = {
        spec.name: 0.0 for spec in tenants
    }
    for chip in chips:
        for tenant, service in chip.tenant_service_s.items():
            if tenant:
                tenant_service[tenant] = (
                    tenant_service.get(tenant, 0.0) + service
                )
    for record in served:
        if record.tenant:
            sketch = tenant_sketches.setdefault(record.tenant, LatencySketch())
            sketch.add(record.latency_s)
    tenant_blocks = (
        tenant_report(tenants, tenant_sketches, tenant_shed, tenant_service)
        if tenants or tenant_sketches or tenant_shed
        else {}
    )
    stats = latency_stats([r.latency_s for r in served])
    waits = np.array([r.queue_wait_s for r in served])
    horizon = max((r.finish_s for r in served), default=0.0)
    chip_reports = {
        report.name: report
        for report in (
            _chip_report(chip, horizon, static_pj_per_s) for chip in chips
        )
    }
    shed_by_model: dict[str, int] = {}
    for record in shed:
        shed_by_model[record.model] = shed_by_model.get(record.model, 0) + 1
    return ClusterReport(
        num_requests=len(served) + len(shed),
        served=len(served),
        shed=len(shed),
        offered_rps=offered_rps,
        horizon_s=horizon,
        throughput_rps=len(served) / horizon if horizon > 0 else 0.0,
        latency_percentiles_ms=stats.percentiles_ms,
        latency_mean_ms=stats.mean_ms,
        latency_max_ms=stats.max_ms,
        queue_wait_mean_ms=float(waits.mean()) * 1e3 if served else 0.0,
        policy=policy,
        queue_capacity=queue_capacity,
        initial_chips=initial_chips,
        final_accepting_chips=sum(1 for chip in chips if chip.accepting),
        chips=chip_reports,
        shed_by_model=shed_by_model,
        scaling_events=tuple(scaling_events),
        dynamic_energy_mj=sum(chip.dynamic_energy_pj for chip in chips) * 1e-9,
        static_energy_mj=sum(
            report.static_energy_mj for report in chip_reports.values()
        ),
        requests=tuple(served),
        shed_records=tuple(shed),
        run=run,
        tenants=tenant_blocks,
        tenant_sketches=tenant_sketches,
    )


def _sharded_chip_report(
    stats: ShardChipStats, horizon_s: float, static_pj_per_s: float
) -> ChipReport:
    span = stats.active_span_s(horizon_s)
    return ChipReport(
        name=stats.name,
        kind=stats.kind,
        models=stats.models,
        requests_served=stats.requests_served,
        mean_batch_size=stats.mean_batch_size,
        utilization={
            unit: (
                busy / (span * stats.capacity.get(unit, 1)) if span > 0 else 0.0
            )
            for unit, busy in stats.busy_s.items()
        },
        dynamic_energy_mj=stats.dynamic_energy_pj * 1e-9,
        static_energy_mj=static_pj_per_s * span * 1e-9,
        active_span_s=span,
        added_s=stats.started_s,
        drained=stats.drained_s is not None and not stats.accepting,
    )


def build_sharded_cluster_report(
    chip_stats: list[ShardChipStats],
    shed_total: int,
    shed_by_model: dict[str, int],
    shed_records: list[ShedRecord],
    latency: LatencySketch,
    wait: LatencySketch,
    *,
    offered_rps: float,
    horizon_s: float,
    policy: str,
    queue_capacity: int | None,
    initial_chips: int,
    scaling_events: list[ScalingEvent],
    static_pj_per_s: float,
    num_shards: int,
    window_s: float,
    windows: list[WindowStats],
    slo_ms: float | None = None,
    slo_summary: dict | None = None,
    alerts: list[dict] | None = None,
    tenants: tuple[TenantSpec, ...] = (),
    tenant_latency: dict[str, LatencySketch] | None = None,
    tenant_shed: dict[str, int] | None = None,
    tenant_service_s: dict[str, float] | None = None,
) -> ClusterReport:
    """The sharded counterpart of :func:`build_cluster_report`.

    Built from merged shard digests instead of ``ServedRequest`` lists:
    latency statistics come from the fleet's merged
    :class:`~repro.serve.sketch.LatencySketch` (bounded-error
    percentiles, exact count/mean/max), per-chip rows from
    :class:`ShardChipStats` counters.  ``shed_records`` carries only the
    coordinator-level sheds (models no accepting shard hosts);
    shard-level sheds are counted in ``shed_total`` / ``shed_by_model``.
    """
    stats = latency_stats(latency)
    served = stats.count
    tenant_sketches = {
        spec.name: LatencySketch() for spec in tenants
    }
    tenant_sketches.update(tenant_latency or {})
    tenant_blocks = (
        tenant_report(
            tenants,
            tenant_sketches,
            dict(tenant_shed or {}),
            dict(tenant_service_s or {}),
        )
        if tenants or tenant_sketches
        else {}
    )
    chip_reports = {
        report.name: report
        for report in (
            _sharded_chip_report(chip, horizon_s, static_pj_per_s)
            for chip in chip_stats
        )
    }
    slo = None
    if slo_ms is not None:
        slo = slo_block(latency, slo_ms)
        if slo_summary is not None:
            # The streaming monitor's extras (budget, burn-rate rules,
            # alert transitions) layered over the post-hoc block.  The
            # attainment/violations keys stay post-hoc — the streaming
            # values agree exactly (sketch merges are exact integer
            # addition), which tests assert rather than assume.
            slo.update({
                key: value for key, value in slo_summary.items()
                if key in (
                    "target", "budget", "rules", "alerts",
                    "alerts_fired", "active_rules",
                )
            })
    return ClusterReport(
        num_requests=served + shed_total,
        served=served,
        shed=shed_total,
        offered_rps=offered_rps,
        horizon_s=horizon_s,
        throughput_rps=served / horizon_s if horizon_s > 0 else 0.0,
        latency_percentiles_ms=stats.percentiles_ms,
        latency_mean_ms=stats.mean_ms,
        latency_max_ms=stats.max_ms,
        queue_wait_mean_ms=wait.mean_s * 1e3,
        policy=policy,
        queue_capacity=queue_capacity,
        initial_chips=initial_chips,
        final_accepting_chips=sum(1 for chip in chip_stats if chip.accepting),
        chips=chip_reports,
        shed_by_model=dict(shed_by_model),
        scaling_events=tuple(scaling_events),
        dynamic_energy_mj=sum(
            chip.dynamic_energy_pj for chip in chip_stats
        ) * 1e-9,
        static_energy_mj=sum(
            report.static_energy_mj for report in chip_reports.values()
        ),
        shed_records=tuple(shed_records),
        num_shards=num_shards,
        window_s=window_s,
        windows=tuple(windows),
        latency_sketch=latency,
        slo=slo,
        alerts=tuple(alerts or ()),
        tenants=tenant_blocks,
        tenant_sketches=tenant_sketches,
    )
