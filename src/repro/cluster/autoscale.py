"""Reactive autoscaling: grow and drain chip replicas from load signals.

The autoscaler is one more engine process: every ``interval_s`` of
simulated time it samples the fleet's **queue pressure** — outstanding
estimated work per accepting chip, normalized by the sampling interval
(pressure 1.0 ≡ each chip is backlogged by a full interval of work) — and
reacts:

* pressure above ``high_pressure`` and headroom under ``max_chips`` →
  **add** a fully-replicated chip of the template ``kind`` (a fresh
  :class:`~repro.arch.engine.machine.BishopMachine` joins the shared
  engine clock mid-run);
* pressure below ``low_pressure`` with more than ``min_chips`` accepting →
  **drain** the least-loaded removable chip: it stops accepting new work,
  finishes its queue, and from then on accrues no static energy.

A chip is only drainable if every model it hosts stays available on some
other accepting chip, so scaling down never strands a placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.engine.kernel import Hold
from ..serve.simulate import ChipServer

__all__ = ["AutoscaleConfig", "Autoscaler", "ScalingEvent"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Control-loop parameters of the reactive autoscaler."""

    interval_s: float
    high_pressure: float = 1.0
    low_pressure: float = 0.1
    max_chips: int = 8
    min_chips: int = 1
    kind: str = "standard"      # template kind for added replicas

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("autoscale interval must be positive")
        if self.low_pressure >= self.high_pressure:
            raise ValueError("low_pressure must be below high_pressure")
        if not 1 <= self.min_chips <= self.max_chips:
            raise ValueError("need 1 <= min_chips <= max_chips")


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler decision, for the cluster report."""

    t_s: float
    action: str            # "add" | "drain"
    chip: str
    pressure: float
    accepting_chips: int   # after the action

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "action": self.action,
            "chip": self.chip,
            "pressure": self.pressure,
            "accepting_chips": self.accepting_chips,
        }


class Autoscaler:
    """The reactive control loop, bound to one cluster simulation."""

    def __init__(self, config: AutoscaleConfig, cluster):
        self.config = config
        self.cluster = cluster
        self.events: list[ScalingEvent] = []

    def _pressure(self, accepting: list[ChipServer]) -> float:
        if not accepting:
            return 0.0
        outstanding = sum(chip.outstanding_s for chip in accepting)
        return outstanding / (len(accepting) * self.config.interval_s)

    def _drainable(self, accepting: list[ChipServer]) -> list[ChipServer]:
        """Chips whose hosted models all remain covered elsewhere."""
        candidates = []
        for chip in accepting:
            others = [c for c in accepting if c is not chip]
            covered = all(
                any(other.hosts(model) for other in others)
                for model in chip.profiles
            )
            if covered:
                candidates.append(chip)
        return candidates

    def process(self):
        """The engine process: sample every interval, act, stop when done."""
        config = self.config
        while True:
            yield Hold(config.interval_s)
            if self.cluster.finished:
                return
            # Both actions are gated on arrivals still flowing: once the
            # router closed the chips, add/drain decisions would only add
            # post-traffic noise to the report.
            accepting = [c for c in self.cluster.chips if c.accepting]
            pressure = self._pressure(accepting)
            now = self.cluster.engine.now
            if (
                pressure > config.high_pressure
                and len(accepting) < config.max_chips
                and not self.cluster.arrivals_done
            ):
                chip = self.cluster.add_replica(config.kind)
                self.events.append(ScalingEvent(
                    t_s=now, action="add", chip=chip.name,
                    pressure=pressure, accepting_chips=len(accepting) + 1,
                ))
            elif (
                pressure < config.low_pressure
                and len(accepting) > config.min_chips
                and not self.cluster.arrivals_done
            ):
                drainable = self._drainable(accepting)
                if not drainable:
                    continue
                victim = min(drainable, key=lambda c: c.outstanding_s)
                victim.accepting = False
                victim.close()
                self.events.append(ScalingEvent(
                    t_s=now, action="drain", chip=victim.name,
                    pressure=pressure, accepting_chips=len(accepting) - 1,
                ))
