"""Multi-chip cluster serving: sharded Bishop fleets on one engine clock.

``fleet``
    Chip kinds (standard / sparse-heavy / dense-heavy), model placement,
    fleet parsing.
``routing``
    Front-end policies: round-robin, least-outstanding-work,
    sparsity-aware affinity.
``admission``
    Bounded per-chip queues and load shedding.
``autoscale``
    Reactive replica scaling from queue-pressure signals.
``simulate``
    :class:`ClusterSimulation`: N chips + router (+ autoscaler) on one
    shared discrete-event engine.
``report``
    Fleet-aggregate and per-chip statistics, reusing the serving layer's
    percentile machinery.

Registered experiments: ``cluster_scaling_curve`` and
``cluster_routing_ablation`` (see ``repro.harness.experiments``);
docs/CLUSTER.md describes the fleet model, routing policies, and
autoscaler semantics.
"""

from .admission import (
    AdmissionConfig,
    ShedRecord,
    TenantAdmission,
    eligible_chips,
)
from .autoscale import AutoscaleConfig, Autoscaler, ScalingEvent
from .fleet import (
    CHIP_KINDS,
    ChipSpec,
    FleetSpec,
    chip_config,
    fleet_capacity_rps,
    homogeneous_fleet,
    load_chip_kinds,
    parse_fleet,
    register_chip_kind,
)
from .report import (
    ChipReport,
    ClusterReport,
    ShardChipStats,
    WindowStats,
    build_cluster_report,
    build_sharded_cluster_report,
    tenant_report,
)
from .routing import (
    POLICIES,
    LeastOutstanding,
    RoundRobin,
    RoutingPolicy,
    SparsityAffinity,
    make_policy,
)
from .sharding import (
    SHARD_POLICIES,
    ShardInit,
    ShardState,
    ShardingConfig,
    WindowDigest,
    partition_fleet,
    simulate_cluster_sharded,
)
from .simulate import ClusterSimulation, simulate_cluster

__all__ = [
    "AdmissionConfig",
    "AutoscaleConfig",
    "Autoscaler",
    "CHIP_KINDS",
    "ChipReport",
    "ChipSpec",
    "ClusterReport",
    "ClusterSimulation",
    "FleetSpec",
    "LeastOutstanding",
    "POLICIES",
    "RoundRobin",
    "RoutingPolicy",
    "SHARD_POLICIES",
    "ScalingEvent",
    "ShardChipStats",
    "ShardInit",
    "ShardState",
    "ShardingConfig",
    "ShedRecord",
    "SparsityAffinity",
    "TenantAdmission",
    "WindowDigest",
    "WindowStats",
    "build_cluster_report",
    "build_sharded_cluster_report",
    "chip_config",
    "eligible_chips",
    "fleet_capacity_rps",
    "homogeneous_fleet",
    "load_chip_kinds",
    "make_policy",
    "parse_fleet",
    "partition_fleet",
    "register_chip_kind",
    "simulate_cluster",
    "simulate_cluster_sharded",
    "tenant_report",
]
