"""Admission control: bounded per-chip queues and load shedding.

Every chip's pending queue is bounded by ``queue_capacity``; a request is
only routable to chips with a free slot.  When *no* eligible chip exists
— every replica of the model is full (or draining) — the request is shed
at the front door instead of growing an unbounded backlog, and the
cluster report accounts for it (``shed`` count and per-model breakdown).
``queue_capacity=None`` disables shedding (unbounded queues), which is
what capacity-measurement experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..serve.simulate import ChipServer
from ..serve.workload import Request

__all__ = ["AdmissionConfig", "ShedRecord", "eligible_chips"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Front-door policy of the cluster router."""

    queue_capacity: int | None = None   # per-chip pending bound; None = unbounded

    def __post_init__(self) -> None:
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None: unbounded)")


@dataclass(frozen=True)
class ShedRecord:
    """One request rejected by admission control."""

    index: int
    model: str
    arrival_s: float


def eligible_chips(request: Request, chips: list[ChipServer]) -> list[ChipServer]:
    """Chips the router may send ``request`` to, in fleet order:
    accepting (not draining), hosting the model, and queue not full."""
    return [
        chip
        for chip in chips
        if chip.accepting and chip.hosts(request.model) and chip.has_queue_capacity()
    ]
