"""Admission control: bounded per-chip queues, tenant quotas, shedding.

Every chip's pending queue is bounded by ``queue_capacity``; a request is
only routable to chips with a free slot.  When *no* eligible chip exists
— every replica of the model is full (or draining) — the request is shed
at the front door instead of growing an unbounded backlog, and the
cluster report accounts for it (``shed`` count and per-model breakdown).
``queue_capacity=None`` disables shedding (unbounded queues), which is
what capacity-measurement experiments use.

Multi-tenant runs additionally bound each tenant's **outstanding**
requests (admitted but not yet completed) by its
:class:`~repro.serve.workload.TenantSpec` quota — the
:class:`TenantAdmission` tracker sits in front of chip eligibility, so a
tenant at quota is shed even when chips have room (the contract that
stops one tenant's burst from displacing everyone else's queue slots).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..serve.simulate import ChipServer
from ..serve.workload import Request, TenantSpec

__all__ = [
    "AdmissionConfig",
    "ShedRecord",
    "TenantAdmission",
    "eligible_chips",
]


@dataclass(frozen=True)
class AdmissionConfig:
    """Front-door policy of the cluster router."""

    queue_capacity: int | None = None   # per-chip pending bound; None = unbounded

    def __post_init__(self) -> None:
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None: unbounded)")


@dataclass(frozen=True)
class ShedRecord:
    """One request rejected by admission control."""

    index: int
    model: str
    arrival_s: float
    tenant: str = ""


class TenantAdmission:
    """Per-tenant outstanding-request quota tracker (front-door side).

    ``admit`` reserves a slot when the tenant is under quota; ``release``
    returns it on completion.  Tenants without a declared quota (or
    requests with no tenant tag) are always admitted.  Both the
    single-process router and each shard's feed loop enforce quotas
    through one of these — in sharded runs the quota is per shard, since
    shards admit independently between coordination windows.
    """

    def __init__(self, tenants: tuple[TenantSpec, ...] = ()):
        self.quotas = {t.name: t.quota for t in tenants if t.quota is not None}
        self.outstanding: dict[str, int] = {t.name: 0 for t in tenants}
        self.shed: dict[str, int] = {}

    def admit(self, request: Request) -> bool:
        tenant = request.tenant
        quota = self.quotas.get(tenant)
        if quota is not None and self.outstanding.get(tenant, 0) >= quota:
            self.shed[tenant] = self.shed.get(tenant, 0) + 1
            return False
        if tenant:
            self.outstanding[tenant] = self.outstanding.get(tenant, 0) + 1
        return True

    def release(self, request: Request) -> None:
        tenant = request.tenant
        if tenant and self.outstanding.get(tenant, 0) > 0:
            self.outstanding[tenant] -= 1


def eligible_chips(request: Request, chips: list[ChipServer]) -> list[ChipServer]:
    """Chips the router may send ``request`` to, in fleet order:
    accepting (not draining), hosting the model, and queue not full."""
    return [
        chip
        for chip in chips
        if chip.accepting and chip.hosts(request.model) and chip.has_queue_capacity()
    ]
