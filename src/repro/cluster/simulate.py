"""The cluster simulation: N Bishop chips behind a front-end router.

One shared :class:`~repro.arch.engine.kernel.Engine` is the **cluster
clock**; every chip is an independent
:class:`~repro.arch.engine.machine.BishopMachine` whose five resources
are registered under the chip's namespace (``chip0.dense_core``, …), so
chips contend only with themselves while all event ordering is globally
deterministic.  Chips may be heterogeneous — each kind's per-model task
graphs are built from its own :class:`~repro.arch.BishopConfig` (core
provisioning and clock), then composed on the shared clock in seconds.

Processes:

* the **router** walks the arrival stream, filters eligible chips
  (placement + admission control), and asks the routing policy to pick
  one — or sheds the request when every replica is full;
* each chip's :class:`~repro.serve.simulate.ChipServer` scheduler
  dispatches batches exactly as in the single-chip simulator (the N=1
  special case);
* the optional **autoscaler** samples queue pressure and adds or drains
  replicas mid-run.
"""

from __future__ import annotations

from .. import obs
from ..arch.engine.kernel import Engine, Hold
from ..arch.engine.machine import BishopMachine
from ..arch.engine.timeline import EngineRun, TimelineEntry, merge_timelines
from ..arch.energy import EnergyModel
from ..serve.profiles import request_profile
from ..serve.scheduler import SchedulerConfig
from ..serve.simulate import ChipServer
from ..serve.workload import Request, TenantSpec
from .admission import (
    AdmissionConfig,
    ShedRecord,
    TenantAdmission,
    eligible_chips,
)
from .autoscale import AutoscaleConfig, Autoscaler
from .fleet import FleetSpec, chip_config
from .report import ClusterReport, build_cluster_report
from .routing import RoutingPolicy, make_policy

__all__ = ["ClusterSimulation", "simulate_cluster"]


class ClusterSimulation:
    """A fleet of Bishop chips serving one arrival stream.

    Parameters
    ----------
    fleet:
        The chips: kinds and model placement (``repro.cluster.fleet``).
    scheduler:
        Per-chip dispatch policy, identical semantics to single-chip
        serving (``max_batch`` / ``max_inflight``).
    policy:
        Routing policy name (``round_robin`` / ``least_work`` /
        ``sparsity``) or a :class:`RoutingPolicy` instance.
    admission:
        Bounded-queue admission control; default unbounded.
    autoscale:
        Reactive replica scaling; default off (fixed fleet).
    bs_t / bs_n / seed:
        Bundle shape and trace seed for per-chip model profiles; ``seed``
        also only enters workload generation upstream, so one seed
        reproduces the whole experiment.
    passes:
        Compiler pass spec for the per-chip programs (``"all"`` /
        ``"none"`` / ``"packing+stratify+schedule"`` …); chips of the
        same kind share one compiled program through the program cache.
    """

    def __init__(
        self,
        fleet: FleetSpec,
        scheduler: SchedulerConfig | None = None,
        policy: str | RoutingPolicy = "least_work",
        admission: AdmissionConfig | None = None,
        autoscale: AutoscaleConfig | None = None,
        *,
        bs_t: int = 2,
        bs_n: int = 4,
        seed: int = 0,
        energy: EnergyModel | None = None,
        record_timeline: bool = False,
        passes: str | None = None,
        tenants: tuple[TenantSpec, ...] = (),
    ):
        self.fleet = fleet
        self.scheduler = scheduler or SchedulerConfig()
        self._policy_spec = policy
        self.admission = admission or AdmissionConfig()
        self.tenants = tuple(tenants)
        self.autoscale = autoscale
        self.bs_t = bs_t
        self.bs_n = bs_n
        self.seed = seed
        self.passes = passes
        self.energy = energy or EnergyModel()
        self.record_timeline = record_timeline

        # Per-run state, (re)initialized by run().
        self.engine: Engine | None = None
        self.chips: list[ChipServer] = []
        self.shed: list[ShedRecord] = []
        self.tenant_admission = TenantAdmission(self.tenants)
        self.arrivals_done = False
        self._resolved = 0
        self._total = 0
        self._models: tuple[str, ...] = ()
        self._timeline: list[TimelineEntry] | None = None

    # -- state the autoscaler consults ------------------------------------
    @property
    def finished(self) -> bool:
        return self._resolved >= self._total

    def add_replica(self, kind: str) -> ChipServer:
        """Join a fully-replicated chip of ``kind`` to the running fleet."""
        return self._add_chip(kind, self._models)

    # -- internals ---------------------------------------------------------
    def _add_chip(self, kind: str, models: tuple[str, ...]) -> ChipServer:
        name = f"chip{len(self.chips)}"
        config = chip_config(kind, self.bs_t, self.bs_n)
        profiles = {
            model: request_profile(
                model, seed=self.seed, config=config, passes=self.passes
            )
            for model in models
        }
        machine = BishopMachine(self.engine, name=name)
        chip = ChipServer(
            self.engine,
            machine,
            profiles,
            self.scheduler,
            name=name,
            kind=kind,
            queue_capacity=self.admission.queue_capacity,
            timeline=self._timeline,
            on_complete=self._on_complete,
            tenants=self.tenants,
        )
        self.chips.append(chip)
        return chip

    def _on_complete(self, batch: list[Request]) -> None:
        self._resolved += len(batch)
        for request in batch:
            self.tenant_admission.release(request)

    def _router(self, stream: list[Request], policy: RoutingPolicy):
        for request in stream:
            gap = request.arrival_s - self.engine.now
            if gap > 0:
                yield Hold(gap)
            chip = None
            if self.tenant_admission.admit(request):
                chip = policy.choose(
                    request, eligible_chips(request, self.chips)
                )
                if chip is None:
                    self.tenant_admission.release(request)
            if chip is None:
                obs.inc("serve.shed")
                self.shed.append(ShedRecord(
                    request.index, request.model, request.arrival_s,
                    tenant=request.tenant,
                ))
                self._resolved += 1
            else:
                chip.enqueue(request)
        self.arrivals_done = True
        for chip in self.chips:
            if not chip.closed:
                chip.close()

    # -- the simulation ----------------------------------------------------
    def run(self, requests: list[Request]) -> ClusterReport:
        """Serve ``requests`` on the fleet; returns the cluster report."""
        with obs.span(
            "cluster.run", cat="cluster",
            chips=len(self.fleet), requests=len(requests),
        ):
            return self._run(requests)

    def _run(self, requests: list[Request]) -> ClusterReport:
        stream = sorted(requests, key=lambda r: (r.arrival_s, r.index))
        self._models = tuple(sorted({r.model for r in stream}))
        if self._models:
            self.fleet.validate_placement(self._models)

        self.engine = Engine()
        self._timeline = [] if self.record_timeline else None
        self.chips = []
        self.shed = []
        self.tenant_admission = TenantAdmission(self.tenants)
        self.arrivals_done = False
        self._resolved = 0
        self._total = len(stream)
        policy = make_policy(self._policy_spec)
        policy.reset()

        for spec in self.fleet.chips:
            self._add_chip(spec.kind, spec.hosted_models(self._models))

        autoscaler = None
        if self.autoscale is not None:
            autoscaler = Autoscaler(self.autoscale, self)
            self.engine.spawn(autoscaler.process(), name="autoscaler")
        self.engine.spawn(self._router(stream, policy), name="router")
        self.engine.run()

        if not self.finished:  # pragma: no cover - engine invariant
            raise RuntimeError(
                f"cluster simulation stalled: {self._resolved}/{self._total}"
                " requests resolved"
            )

        run = EngineRun.capture(
            self.engine,
            timeline=merge_timelines(self._timeline) if self._timeline else None,
        )
        served = self._total - len(self.shed)
        # The engine clock may outlive the last completion by one autoscaler
        # tick; the run's makespan is the serving horizon, and its energy
        # honours the EngineRun contract (dynamic + static over the chips'
        # powered spans) so an N=1 run matches the single-chip simulator.
        horizon = max(
            (r.finish_s for chip in self.chips for r in chip.served),
            default=0.0,
        )
        run.makespan_s = horizon
        static_pj_per_s = self.energy.static_pj(1.0)
        run.energy_pj = sum(
            chip.dynamic_energy_pj + static_pj_per_s * chip.active_span_s(horizon)
            for chip in self.chips
        )
        span = stream[-1].arrival_s - stream[0].arrival_s if stream else 0.0
        offered = (self._total - 1) / span if span > 0 else 0.0
        tenant_shed: dict[str, int] = {}
        for record in self.shed:
            if record.tenant:
                tenant_shed[record.tenant] = (
                    tenant_shed.get(record.tenant, 0) + 1
                )
        report = build_cluster_report(
            self.chips,
            self.shed,
            offered_rps=offered,
            policy=policy.name,
            queue_capacity=self.admission.queue_capacity,
            initial_chips=len(self.fleet),
            scaling_events=autoscaler.events if autoscaler else [],
            static_pj_per_s=static_pj_per_s,
            run=run,
            tenants=self.tenants,
            tenant_shed=tenant_shed,
        )
        assert report.served == served  # bookkeeping cross-check
        return report


def simulate_cluster(
    requests: list[Request],
    fleet: FleetSpec,
    scheduler: SchedulerConfig | None = None,
    policy: str | RoutingPolicy = "least_work",
    admission: AdmissionConfig | None = None,
    autoscale: AutoscaleConfig | None = None,
    *,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
    energy: EnergyModel | None = None,
    record_timeline: bool = False,
    passes: str | None = None,
    tenants: tuple[TenantSpec, ...] = (),
) -> ClusterReport:
    """One-call form of :class:`ClusterSimulation` (mirrors
    :func:`repro.serve.simulate_serving`)."""
    return ClusterSimulation(
        fleet,
        scheduler,
        policy,
        admission,
        autoscale,
        bs_t=bs_t,
        bs_n=bs_n,
        seed=seed,
        energy=energy,
        record_timeline=record_timeline,
        passes=passes,
        tenants=tenants,
    ).run(requests)
