"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show every registered experiment with its paper artifact, cost tier,
    and parameter schema.
run <experiment-id> [--param k=v ...] [--output FILE]
    Run one experiment and print (or write) its JSON result.
run-all [--jobs N] [--force] [--only a,b,...] [--smoke] [--artifacts DIR]
    Run every experiment through the parallel runtime: process-pool
    execution, content-addressed result cache, ``artifacts/<id>.json``
    plus a ``manifest.json`` with timings and cache hits.
    ``--jobs 0`` resolves to one worker per CPU core.
sweep <experiment-id> --param k=v1,v2,... [--jobs N] [--output FILE]
    Cartesian-product parameter sweep of one experiment.
bench [--jobs N] [--only a,b,...] [--smoke] [--output FILE]
    Force-run experiments and record per-experiment wall-clock timings
    from the runtime manifest to ``BENCH_<timestamp>.json`` (repo root),
    so the perf trajectory accumulates across PRs.
zoo
    Print the Table-2 model zoo.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .harness import EXPERIMENTS, get_experiment
from .model import MODEL_ZOO
from .runtime import ExperimentRunner, RunSummary, canonical_json, parse_param_specs

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bishop (ISCA 2025) reproduction: run paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiment ids")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id (see `repro list`)")
    run.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="override one experiment parameter (repeatable)",
    )
    run.add_argument(
        "--output", type=Path, default=None, help="write JSON here instead of stdout"
    )

    run_all = sub.add_parser(
        "run-all", help="run every experiment via the parallel cached runtime"
    )
    run_all.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for cache misses (default: 1; 0 = one per core)",
    )
    run_all.add_argument(
        "--force", action="store_true", help="ignore and overwrite cached results"
    )
    run_all.add_argument(
        "--only", default=None, metavar="ID,ID,...",
        help="comma-separated subset of experiment ids",
    )
    run_all.add_argument(
        "--smoke", action="store_true",
        help="run each experiment under its cheap smoke params (CI)",
    )
    run_all.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR",
        help="artifact/cache root (default: ./artifacts)",
    )

    sweep = sub.add_parser("sweep", help="parameter sweep of one experiment")
    sweep.add_argument("experiment", help="experiment id (see `repro list`)")
    sweep.add_argument(
        "--param", action="append", default=[], metavar="K=V1,V2,...",
        help="sweep axis: parameter name and comma-separated values (repeatable)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default: 1; 0 = one per core)",
    )
    sweep.add_argument("--force", action="store_true")
    sweep.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR"
    )
    sweep.add_argument(
        "--output", type=Path, default=None,
        help="also write the sweep payload JSON here",
    )

    bench = sub.add_parser(
        "bench", help="measure per-experiment wall-clock timings"
    )
    bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default: 1; 0 = one per core)",
    )
    bench.add_argument(
        "--only", default=None, metavar="ID,ID,...",
        help="comma-separated subset of experiment ids",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="time each experiment under its cheap smoke params (CI)",
    )
    bench.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR",
        help="artifact root for the underlying run-all",
    )
    bench.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="bench JSON path (default: ./BENCH_<timestamp>.json)",
    )

    sub.add_parser("zoo", help="print the Table-2 model zoo")
    return parser


def _parse_only(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [name.strip() for name in raw.split(",") if name.strip()]


def _run_registry(args, force: bool) -> tuple[int, RunSummary | None]:
    """Shared run-all/bench body: build the runner, run, print the summary.

    Returns ``(exit_code, summary)``; a bad id or option yields
    ``(2, None)`` with the message already on stderr.
    """
    try:
        runner = ExperimentRunner(
            artifacts_root=args.artifacts, jobs=args.jobs, force=force
        )
        summary = runner.run_all(only=_parse_only(args.only), smoke=args.smoke)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2, None
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2, None
    _print_summary(summary)
    return (0 if summary.ok else 1), summary


def _parse_single_params(name: str, specs: list[str]) -> dict:
    grid = parse_param_specs(get_experiment(name), specs)
    multi = [k for k, values in grid.items() if len(values) > 1]
    if multi:
        raise ValueError(
            f"`run` takes single values; {multi} have several (use `sweep`)"
        )
    return {k: values[0] for k, values in grid.items()}


def _print_summary(summary: RunSummary) -> None:
    for outcome in summary.outcomes:
        source = "hit " if outcome.cache_hit else ("FAIL" if not outcome.ok else "run ")
        print(f"  {outcome.experiment:<16} {source}  {outcome.duration_s:7.2f}s")
        if not outcome.ok:
            print(outcome.error, file=sys.stderr)
    print(
        f"{len(summary.outcomes)} experiments: {summary.hits} cache hits,"
        f" {summary.misses} runs, {summary.errors} errors"
        f" (hit rate {summary.hit_rate:.0%}) in {summary.wall_time_s:.1f}s"
        f" with {summary.jobs} job(s)"
    )
    if summary.manifest_path:
        print(f"manifest: {summary.manifest_path}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[name]
            params = ",".join(sorted(experiment.params)) or "-"
            print(
                f"{name:<{width}}  {experiment.artifact:<9} {experiment.cost:<7}"
                f" params:{params:<24} {experiment.description}"
            )
        return 0

    if args.command == "zoo":
        for name, config in MODEL_ZOO.items():
            print(
                f"{name}: {config.name}  B={config.num_blocks} T={config.timesteps}"
                f" N={config.num_tokens} D={config.embed_dim}"
                f" ({config.input_kind})"
            )
        return 0

    if args.command == "run":
        try:
            params = _parse_single_params(args.experiment, args.param)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        outcome = ExperimentRunner(artifacts_root=None).run(args.experiment, params)
        if not outcome.ok:
            print(outcome.error, file=sys.stderr)
            return 1
        text = json.dumps(outcome.result, indent=2, default=float, sort_keys=True)
        if args.output is not None:
            args.output.write_text(text)
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0

    if args.command == "run-all":
        code, _ = _run_registry(args, force=args.force)
        return code

    if args.command == "bench":
        # Benchmarks force-run: cache hits report ~0s and would poison the
        # timing series.
        code, summary = _run_registry(args, force=True)
        if summary is None:
            return code
        payload = {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "smoke": args.smoke,
            "jobs": summary.jobs,
            "code_hash": summary.code_hash,
            "wall_time_s": summary.wall_time_s,
            "experiments": {
                o.experiment: {
                    "duration_s": o.duration_s,
                    "status": o.status,
                    "params": o.params,
                }
                for o in summary.outcomes
            },
        }
        target = args.output
        if target is None:
            target = Path(f"BENCH_{time.strftime('%Y%m%d-%H%M%S')}.json")
        target.write_text(json.dumps(payload, indent=2, sort_keys=True, default=float))
        print(f"bench: {target}")
        return code

    if args.command == "sweep":
        try:
            runner = ExperimentRunner(
                artifacts_root=args.artifacts, jobs=args.jobs, force=args.force
            )
            grid = parse_param_specs(get_experiment(args.experiment), args.param)
            summary = runner.sweep(args.experiment, grid)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        _print_summary(summary)
        if runner.store is not None:
            sweep_path = runner.store.sweep_path(args.experiment)
            print(f"sweep: {sweep_path}")
            if args.output is not None:
                args.output.write_text(sweep_path.read_text())
                print(f"wrote {args.output}")
        elif args.output is not None:  # pragma: no cover - store always set here
            args.output.write_text(canonical_json([vars(o) for o in summary.outcomes]))
        return 0 if summary.ok else 1

    return 1  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
