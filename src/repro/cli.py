"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show every registered experiment with its paper artifact, cost tier,
    and parameter schema.
run <experiment-id> [--param k=v ...] [--output FILE]
    Run one experiment and print (or write) its JSON result.
run-all [--jobs N] [--force] [--only a,b,...] [--smoke] [--artifacts DIR]
    Run every experiment through the parallel runtime: process-pool
    execution, content-addressed result cache, ``artifacts/<id>.json``
    plus a ``manifest.json`` with timings and cache hits.
    ``--jobs 0`` resolves to one worker per CPU core.
sweep <experiment-id> --param k=v1,v2,... [--jobs N] [--output FILE]
    Cartesian-product parameter sweep of one experiment.
bench [--jobs N] [--only a,b,...] [--smoke] [--output FILE]
      [--compare BENCH_old.json] [--gate RATIO]
    Force-run experiments and record per-experiment wall-clock timings
    from the runtime manifest to ``BENCH_<timestamp>.json`` (repo root),
    so the perf trajectory accumulates across PRs.  ``--compare`` prints
    a per-experiment regression/speedup diff against an older bench file
    (added/removed/failed experiments are listed explicitly and excluded
    from the totals); ``--gate RATIO`` additionally exits 3 when the
    shared-experiment total runs slower than RATIO x the old file — the
    CI regression gate against the committed ``BENCH_baseline.json``.
compile <model> [--chip KIND] [--passes SPEC] [--dump FILE]
    Compile one Table-2 model through the pass pipeline
    (``repro.compiler``) and print the program summary: stages, tile
    counts per core class, bundle occupancy, estimated makespans.
    ``--dump`` writes the IR as JSON (``-`` for stdout).
cluster [--fleet SPEC] [--policy P] [--mix MIX] [--rho R] [--seed N]
        [--passes SPEC] [--kinds-file FILE] ...
    Simulate a multi-chip fleet behind the front-end router directly
    (no registry round-trip): prints the fleet summary and per-chip
    breakdown, optionally writing the full report JSON.
    ``--kinds-file`` registers extra chip kinds (e.g. a DSE fleet
    export) before the fleet spec is parsed.  ``--shards K`` partitions
    the fleet into K windowed shard engines on the actor pool (the
    planet-scale path); ``--arrival diurnal|flash_crowd|regional``
    selects the trace-driven workloads and ``--slo-ms`` adds an
    SLO-attainment report.  ``--scheduler continuous`` switches chips
    to continuous batching (stage-boundary join/leave + preemption);
    ``--tenants 'gold:3@64+silver:1'`` enables multi-tenant WFQ with
    admission quotas and a per-tenant report block, and
    ``--priority-mix '0:0.8+1:0.2'`` tags priority tiers.
dse <model> [--strategy S] [--budget N] [--objectives SPEC] [--seed N]
    [--jobs N] [--export-fleet FILE] [--output FILE]
    Multi-objective design-space exploration over Bishop chip
    configurations (``repro.dse``): every candidate compiles through
    the pass pipeline and replays on the event engine, evaluated as
    ``dse_point`` experiments through the parallel cached runtime —
    re-runs are served from the result/program caches.  Prints the
    Pareto frontier and where the paper's chip lands relative to it;
    ``--export-fleet`` writes frontier chips as cluster kind profiles.
cache ls|gc
    Inspect or garbage-collect the runtime's content-addressed result
    cache (``artifacts/cache``); ``gc --keep-latest N`` bounds long
    sweep campaigns.  ``ls --stats`` adds a per-store summary line
    (entry counts and bytes for the result and program caches).
trace <experiment-id> [--param k=v ...] [--smoke] [--output FILE]
    Run one experiment with telemetry on and write a Chrome trace-event
    JSON (wall-clock spans plus simulated-time tracks) loadable at
    https://ui.perfetto.dev.  ``run``/``run-all``/``cluster``/``dse``
    accept ``--trace`` to do the same alongside their normal output.
metrics <experiment-id> | --manifest FILE
    Dump the metrics registry (counters, gauges, sketch-backed
    histograms): either run one experiment with metrics on, or read the
    ``metrics`` block a ``run-all --trace`` recorded in its manifest.
analyze <trace|artifact> [--critical-path] [--self-time] [--diff OTHER]
    Offline analysis of a saved trace or experiment artifact (a file
    path or an artifact id under ``--artifacts``): ``--critical-path``
    extracts the binding-resource chain whose durations sum exactly to
    the makespan (per-resource blocking attribution), ``--self-time``
    rolls the span tree up per name, ``--diff OTHER`` localizes a bench
    regression to the spans that slowed down (OTHER is the baseline).
    With no mode flags, every analysis that applies to the input runs.
slo <artifact> [--slo-ms MS] [--target T]
    Replay the saved window series of a cluster artifact through the
    SLO monitor: attainment, error-budget burn-down, and burn-rate
    alert transitions, window by window.
zoo
    Print the Table-2 model zoo.

Alerting: ``cluster --alerts`` runs the detector rule engine
(queue-growth, shed-rate, saturation, latency-drift) streaming in the
shard coordinator and writes a JSON incident report;
``run-all --alerts`` records registry health rules and experiment
failures as an ``alerts`` block in the manifest.

Reproducibility: ``run``/``sweep``/``cluster`` accept ``--seed N``,
threaded end-to-end into workload generation and synthetic traces (for
registry experiments it sets the ``seed`` parameter unless one is given
explicitly via ``--param``).

Observability: see docs/OBSERVABILITY.md for the span/metric naming
convention and the ``repro.obs`` API the instrumented layers use.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from . import obs
from .harness import EXPERIMENTS, get_experiment
from .model import MODEL_ZOO
from .runtime import (
    ExperimentRunner,
    ResultCache,
    RunSummary,
    canonical_json,
    format_provenance,
    parse_param_specs,
    provenance,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bishop (ISCA 2025) reproduction: run paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiment ids")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id (see `repro list`)")
    run.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="override one experiment parameter (repeatable)",
    )
    run.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="set the experiment's seed parameter (reproducible workloads)",
    )
    run.add_argument(
        "--output", type=Path, default=None, help="write JSON here instead of stdout"
    )
    run.add_argument(
        "--trace", action="store_true",
        help="run with telemetry on and write TRACE_<experiment>.json",
    )

    run_all = sub.add_parser(
        "run-all", help="run every experiment via the parallel cached runtime"
    )
    run_all.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for cache misses (default: 1; 0 = one per core)",
    )
    run_all.add_argument(
        "--force", action="store_true", help="ignore and overwrite cached results"
    )
    run_all.add_argument(
        "--only", default=None, metavar="ID,ID,...",
        help="comma-separated subset of experiment ids",
    )
    run_all.add_argument(
        "--smoke", action="store_true",
        help="run each experiment under its cheap smoke params (CI)",
    )
    run_all.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR",
        help="artifact/cache root (default: ./artifacts)",
    )
    run_all.add_argument(
        "--trace", action="store_true",
        help="run with telemetry on: write trace.json under the artifact"
        " root and record the metrics registry in the manifest",
    )
    run_all.add_argument(
        "--alerts", action="store_true",
        help="record an alerts block in the manifest: registry health"
        " rules (dropped spans, corrupt cache entries), failed"
        " experiments, and alerts fired inside simulated runs",
    )

    sweep = sub.add_parser("sweep", help="parameter sweep of one experiment")
    sweep.add_argument("experiment", help="experiment id (see `repro list`)")
    sweep.add_argument(
        "--param", action="append", default=[], metavar="K=V1,V2,...",
        help="sweep axis: parameter name and comma-separated values (repeatable)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default: 1; 0 = one per core)",
    )
    sweep.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="set the experiment's seed parameter on every grid point",
    )
    sweep.add_argument("--force", action="store_true")
    sweep.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR"
    )
    sweep.add_argument(
        "--output", type=Path, default=None,
        help="also write the sweep payload JSON here",
    )

    bench = sub.add_parser(
        "bench", help="measure per-experiment wall-clock timings"
    )
    bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default: 1; 0 = one per core)",
    )
    bench.add_argument(
        "--only", default=None, metavar="ID,ID,...",
        help="comma-separated subset of experiment ids",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="time each experiment under its cheap smoke params (CI)",
    )
    bench.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR",
        help="artifact root for the underlying run-all",
    )
    bench.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="bench JSON path (default: ./BENCH_<timestamp>.json)",
    )
    bench.add_argument(
        "--compare", type=Path, default=None, metavar="BENCH.json",
        help="print per-experiment speedup/regression vs an older bench file",
    )
    bench.add_argument(
        "--gate", type=float, default=None, metavar="RATIO",
        help="with --compare: exit 3 when the shared-experiment total runs"
        " slower than RATIO x the old file (the CI regression gate)",
    )

    compile_cmd = sub.add_parser(
        "compile", help="compile one zoo model into a chip program"
    )
    compile_cmd.add_argument("model", help="Table-2 model id (see `repro zoo`)")
    compile_cmd.add_argument(
        "--chip", default="standard",
        help="chip kind: standard | sparse_heavy | dense_heavy",
    )
    compile_cmd.add_argument("--bs-t", type=int, default=2, metavar="N")
    compile_cmd.add_argument("--bs-n", type=int, default=4, metavar="N")
    compile_cmd.add_argument(
        "--passes", default="all", metavar="SPEC",
        help="compiler passes: all | none | '+'-joined subset of"
        " packing,stratify,ecp,schedule",
    )
    compile_cmd.add_argument("--seed", type=int, default=0, metavar="N")
    compile_cmd.add_argument(
        "--dram-gbps", type=float, default=None, metavar="G",
        help="override the chip's DRAM bandwidth (GB/s)",
    )
    compile_cmd.add_argument(
        "--theta-q", type=float, default=None, metavar="T",
        help="enable ECP with this Q threshold (requires --theta-k)",
    )
    compile_cmd.add_argument(
        "--theta-k", type=float, default=None, metavar="T",
        help="enable ECP with this K threshold (requires --theta-q)",
    )
    compile_cmd.add_argument(
        "--dump", type=Path, default=None, metavar="FILE",
        help="write the program IR as JSON ('-' for stdout)",
    )
    compile_cmd.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk program cache",
    )

    cluster = sub.add_parser(
        "cluster", help="simulate a multi-chip fleet behind the router"
    )
    cluster.add_argument(
        "--fleet", default="standard:4", metavar="SPEC",
        help="chips, e.g. 'standard:4' or 'dense_heavy:2+sparse_heavy:2'",
    )
    cluster.add_argument(
        "--policy", default="least_work",
        help="routing policy: round_robin | least_work | sparsity",
    )
    cluster.add_argument(
        "--mix", default="model4", metavar="MIX",
        help="model mix, e.g. 'model4' or 'model4:0.7+model2:0.3'",
    )
    cluster.add_argument(
        "--rho", type=float, default=0.7,
        help="offered load relative to fleet aggregate capacity",
    )
    cluster.add_argument("--requests", type=int, default=400, metavar="N")
    cluster.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="workload + synthetic-trace seed (one seed fixes the run)",
    )
    cluster.add_argument(
        "--arrival", default="poisson",
        choices=("poisson", "bursty", "diurnal", "flash_crowd", "regional"),
        help="arrival trace; diurnal/flash_crowd/regional are the"
        " planet-scale trace workloads (--rho applies at trace peak)",
    )
    cluster.add_argument(
        "--period-s", type=float, default=0.0, metavar="S",
        help="diurnal/regional day-curve period (0 = one cycle per trace)",
    )
    cluster.add_argument(
        "--regions", default="us:0.5@0.0+eu:0.3@0.33+apac:0.2@0.66",
        metavar="SPEC", help="regional trace spec: name:weight@phase '+'-joined",
    )
    cluster.add_argument(
        "--shards", type=int, default=0, metavar="K",
        help="partition the fleet into K shard engines coordinated in"
        " windows (0 = single-process simulation)",
    )
    cluster.add_argument(
        "--window-ms", type=float, default=0.0, metavar="W",
        help="shard coordination window (0 = trace span / 32)",
    )
    cluster.add_argument(
        "--shard-jobs", type=int, default=1, metavar="N",
        help="shard worker processes (default: 1 = inline; 0 = one per core)",
    )
    cluster.add_argument(
        "--shard-policy", default="round_robin",
        choices=("round_robin", "least_backlog"),
        help="cross-shard request routing (within-shard routing is --policy)",
    )
    cluster.add_argument(
        "--slo-ms", type=float, default=0.0, metavar="MS",
        help="latency SLO: streaming attainment / error-budget /"
        " burn-rate report (0 = off; sharded runs evaluate it live in"
        " the coordinator loop)",
    )
    cluster.add_argument(
        "--slo-target", type=float, default=0.99, metavar="T",
        help="SLO attainment target in (0,1) (default: 0.99)",
    )
    cluster.add_argument(
        "--alerts", action="store_true",
        help="run the detector rule engine (queue-growth, shed-rate,"
        " saturation, latency-drift) streaming in the shard coordinator"
        " and write INCIDENT_cluster.json (requires --shards)",
    )
    cluster.add_argument(
        "--scheduler", default="auto",
        choices=("auto", "fifo", "batch", "continuous"),
        help="per-chip dispatch: auto (static, --max-batch decides"
        " fifo/batch) | fifo (static, batch 1) | batch (static) |"
        " continuous (stage-boundary join/leave, priority preemption,"
        " per-tenant WFQ)",
    )
    cluster.add_argument(
        "--tenants", default=None, metavar="SPEC",
        help="multi-tenant serving: 'name[:weight][@quota]' '+'-joined,"
        " e.g. 'gold:3@64+silver:1'; requests are assigned uniformly,"
        " WFQ shapes served shares by weight, quotas bound outstanding"
        " requests per tenant at admission",
    )
    cluster.add_argument(
        "--priority-mix", default=None, metavar="MIX",
        help="priority tiers: 'tier:weight' '+'-joined, e.g."
        " '0:0.8+2:0.2'; higher tiers preempt at stage boundaries under"
        " --scheduler continuous",
    )
    cluster.add_argument("--max-batch", type=int, default=1, metavar="B")
    cluster.add_argument("--max-inflight", type=int, default=2, metavar="I")
    cluster.add_argument(
        "--queue-capacity", type=int, default=0, metavar="Q",
        help="per-chip admission bound (0 = unbounded, no shedding)",
    )
    cluster.add_argument(
        "--autoscale-max", type=int, default=0, metavar="N",
        help="enable the reactive autoscaler up to N chips (0 = off);"
        " replicas clone the fleet's first chip kind",
    )
    cluster.add_argument(
        "--passes", default="all", metavar="SPEC",
        help="compiler passes for the chip programs: all | none |"
        " '+'-joined subset of packing,stratify,ecp,schedule",
    )
    cluster.add_argument(
        "--kinds-file", type=Path, default=None, metavar="FILE",
        help="register chip kinds from a JSON kinds file (e.g. a"
        " `repro dse --export-fleet` export) before parsing --fleet",
    )
    cluster.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="also write the full cluster report JSON here",
    )
    cluster.add_argument(
        "--trace", action="store_true",
        help="run with telemetry on and write TRACE_cluster.json"
        " (wall-clock spans plus simulated-time window tracks)",
    )

    dse = sub.add_parser(
        "dse", help="Pareto search over Bishop chip configurations"
    )
    dse.add_argument("model", help="Table-2 model id (see `repro zoo`)")
    dse.add_argument(
        "--strategy", default="random",
        help="search strategy: grid | random | evolutionary",
    )
    dse.add_argument(
        "--budget", type=int, default=64, metavar="N",
        help="searched candidate chips (the paper chip is always evaluated"
        " in addition)",
    )
    dse.add_argument(
        "--objectives", default="latency_ms+energy_mj+area_mm2", metavar="SPEC",
        help="'+'-separated frontier axes: latency_ms, energy_mj,"
        " edp_uj_ms, area_mm2",
    )
    dse.add_argument("--seed", type=int, default=0, metavar="N")
    dse.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for candidate evaluation (default: 1;"
        " 0 = one per core)",
    )
    dse.add_argument(
        "--batch", type=int, default=16, metavar="N",
        help="proposal batch size (the parallelism grain)",
    )
    dse.add_argument("--force", action="store_true",
                     help="ignore cached candidate evaluations")
    dse.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR",
        help="artifact/cache root (default: ./artifacts)",
    )
    dse.add_argument(
        "--top", type=int, default=8, metavar="N",
        help="frontier rows to print (default: 8)",
    )
    dse.add_argument(
        "--export-fleet", type=Path, default=None, metavar="FILE",
        help="write frontier chips as cluster chip-kind profiles",
    )
    dse.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="write the full frontier report JSON here",
    )
    dse.add_argument(
        "--trace", action="store_true",
        help="run with telemetry on and write TRACE_dse_<model>.json",
    )

    cache = sub.add_parser(
        "cache", help="inspect / garbage-collect the result cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser("ls", help="list cache entries, newest first")
    cache_ls.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR",
        help="artifact root holding the cache (default: ./artifacts)",
    )
    cache_ls.add_argument(
        "--stats", action="store_true",
        help="append a per-store summary line (result vs program cache)",
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="delete all but the most recent entries"
    )
    cache_gc.add_argument(
        "--keep-latest", type=int, required=True, metavar="N",
        help="number of most-recent entries to keep",
    )
    cache_gc.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR"
    )

    trace = sub.add_parser(
        "trace", help="run one experiment with tracing on; write Perfetto JSON"
    )
    trace.add_argument("experiment", help="experiment id (see `repro list`)")
    trace.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="override one experiment parameter (repeatable)",
    )
    trace.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="set the experiment's seed parameter (reproducible workloads)",
    )
    trace.add_argument(
        "--smoke", action="store_true",
        help="start from the experiment's cheap smoke params (CI)",
    )
    trace.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="trace path (default: ./TRACE_<experiment>.json)",
    )

    metrics = sub.add_parser(
        "metrics", help="dump the metrics registry from a run or a manifest"
    )
    metrics.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id to run with metrics on (see `repro list`)",
    )
    metrics.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="override one experiment parameter (repeatable)",
    )
    metrics.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="set the experiment's seed parameter (reproducible workloads)",
    )
    metrics.add_argument(
        "--smoke", action="store_true",
        help="start from the experiment's cheap smoke params (CI)",
    )
    metrics.add_argument(
        "--manifest", type=Path, default=None, metavar="FILE",
        help="read the metrics block out of a `run-all --trace` manifest"
        " instead of running an experiment",
    )
    metrics.add_argument(
        "--json", action="store_true",
        help="print the raw registry snapshot as JSON",
    )

    analyze = sub.add_parser(
        "analyze", help="analyze a saved trace or artifact offline"
    )
    analyze.add_argument(
        "target",
        help="trace/artifact JSON path, or an artifact id under --artifacts",
    )
    analyze.add_argument(
        "--critical-path", action="store_true",
        help="extract the binding-resource chain (durations sum to the"
        " makespan) with per-resource blocking attribution",
    )
    analyze.add_argument(
        "--self-time", action="store_true",
        help="span-tree rollup: wall-clock total and self time per span name",
    )
    analyze.add_argument(
        "--diff", default=None, metavar="OTHER",
        help="diff self-times against a baseline trace (path or artifact"
        " id): localizes a bench regression to specific spans",
    )
    analyze.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR",
        help="artifact root for id resolution (default: ./artifacts)",
    )
    analyze.add_argument(
        "--top", type=int, default=12, metavar="N",
        help="rows to print per table (default: 12)",
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="print the full analysis payload as JSON",
    )

    slo = sub.add_parser(
        "slo", help="replay a cluster artifact's window series through the SLO monitor"
    )
    slo.add_argument(
        "artifact",
        help="cluster report JSON path, or an artifact id under --artifacts",
    )
    slo.add_argument(
        "--slo-ms", type=float, default=0.0, metavar="MS",
        help="latency SLO override (default: the artifact's slo block)",
    )
    slo.add_argument(
        "--target", type=float, default=0.0, metavar="T",
        help="attainment target override in (0,1) (default: the"
        " artifact's, else 0.99)",
    )
    slo.add_argument(
        "--artifacts", type=Path, default=Path("artifacts"), metavar="DIR",
        help="artifact root for id resolution (default: ./artifacts)",
    )
    slo.add_argument(
        "--json", action="store_true",
        help="print the full SLO replay payload as JSON",
    )

    sub.add_parser("zoo", help="print the Table-2 model zoo")
    return parser


def _parse_only(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [name.strip() for name in raw.split(",") if name.strip()]


def _run_registry(args, force: bool) -> tuple[int, RunSummary | None]:
    """Shared run-all/bench body: build the runner, run, print the summary.

    Returns ``(exit_code, summary)``; a bad id or option yields
    ``(2, None)`` with the message already on stderr.
    """
    try:
        runner = ExperimentRunner(
            artifacts_root=args.artifacts, jobs=args.jobs, force=force
        )
        summary = runner.run_all(
            only=_parse_only(args.only), smoke=args.smoke,
            alerts=getattr(args, "alerts", False),
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2, None
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2, None
    _print_summary(summary)
    return (0 if summary.ok else 1), summary


def _parse_single_params(name: str, specs: list[str], seed: int | None = None) -> dict:
    experiment = get_experiment(name)
    grid = parse_param_specs(experiment, specs)
    multi = [k for k, values in grid.items() if len(values) > 1]
    if multi:
        raise ValueError(
            f"`run` takes single values; {multi} have several (use `sweep`)"
        )
    params = {k: values[0] for k, values in grid.items()}
    return _apply_seed(experiment, params, seed)


def _seed_applies(experiment, explicit: bool, seed: int | None) -> bool:
    """Whether ``--seed`` should set the experiment's seed parameter.

    An explicit ``--param seed=...`` (or sweep axis) wins; a seed flag on
    a seedless experiment warns rather than failing, so sweep scripts can
    pass one uniformly.
    """
    if seed is None or explicit:
        return False
    if "seed" not in experiment.params:
        print(
            f"--seed ignored: experiment {experiment.id!r} has no seed parameter",
            file=sys.stderr,
        )
        return False
    return True


def _apply_seed(experiment, params: dict, seed: int | None) -> dict:
    if _seed_applies(experiment, "seed" in params, seed):
        params["seed"] = seed
    return params


def _print_summary(summary: RunSummary) -> None:
    for outcome in summary.outcomes:
        source = "hit " if outcome.cache_hit else ("FAIL" if not outcome.ok else "run ")
        print(f"  {outcome.experiment:<16} {source}  {outcome.duration_s:7.2f}s")
        if not outcome.ok:
            print(outcome.error, file=sys.stderr)
    print(
        f"{len(summary.outcomes)} experiments: {summary.hits} cache hits,"
        f" {summary.misses} runs, {summary.errors} errors"
        f" (hit rate {summary.hit_rate:.0%}) in {summary.wall_time_s:.1f}s"
        f" with {summary.jobs} job(s)"
    )
    if summary.manifest_path:
        print(f"manifest: {summary.manifest_path}")


def _write_trace(path: Path, extra_events: list | None = None) -> None:
    """Serialize the global tracer to ``path`` and print a summary line."""
    payload = obs.tracer.write(path, extra_events)
    spans = sum(1 for e in payload["traceEvents"] if e.get("ph") == "X")
    print(f"trace: {path} ({spans} spans; open at https://ui.perfetto.dev)")


def _traced_params(args) -> dict:
    """Params for `trace`/`metrics`: the experiment's smoke params (when
    ``--smoke``) under any explicit ``--param``/``--seed`` overrides."""
    params = _parse_single_params(args.experiment, args.param, args.seed)
    if args.smoke:
        params = {**get_experiment(args.experiment).smoke_params, **params}
    return params


def _run_traced_experiment(args):
    """Run one experiment uncached with telemetry on.

    Returns the outcome, or ``None`` (error already printed).  Bypassing
    the result cache matters: a cache hit would execute nothing and
    record an empty trace.
    """
    params = _traced_params(args)
    obs.enable()
    outcome = ExperimentRunner(artifacts_root=None).run(args.experiment, params)
    if not outcome.ok:
        print(outcome.error, file=sys.stderr)
        return None
    return outcome


def _run_trace(args) -> int:
    """The `repro trace` body: one traced run, one Perfetto JSON out."""
    outcome = _run_traced_experiment(args)
    if outcome is None:
        return 1
    output = args.output or Path(f"TRACE_{args.experiment}.json")
    _write_trace(output, obs.result_events(outcome.result))
    return 0


def _run_metrics(args) -> int:
    """The `repro metrics` body: dump a registry snapshot, live or saved."""
    if args.manifest is not None:
        try:
            payload = json.loads(args.manifest.read_text())
        except FileNotFoundError:
            print(f"--manifest: {args.manifest} not found", file=sys.stderr)
            return 2
        except json.JSONDecodeError as error:
            print(f"--manifest: {args.manifest}: {error}", file=sys.stderr)
            return 2
        snapshot = payload.get("metrics") if isinstance(payload, dict) else None
        if not snapshot:
            print(
                f"{args.manifest}: no metrics block (record one with"
                " `repro run-all --trace`)",
                file=sys.stderr,
            )
            return 1
    else:
        if args.experiment is None:
            print(
                "metrics: give an experiment id or --manifest FILE",
                file=sys.stderr,
            )
            return 2
        if _run_traced_experiment(args) is None:
            return 1
        snapshot = obs.registry.to_dict()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True, default=float))
    else:
        for line in obs.format_metrics(snapshot):
            print(line)
    return 0


def _resolve_artifact(target: str, artifacts_root: Path) -> Path:
    """Resolve a CLI target to a JSON file: a path, or an artifact id.

    Ids are looked up under the artifact root and its ``smoke/``
    subdirectory.  Unknown ids raise ``KeyError`` with the available ids
    in the message (the caller maps that to exit 2) — never a traceback.
    """
    path = Path(target)
    if path.is_file():
        return path
    roots = [artifacts_root, artifacts_root / "smoke"]
    for root in roots:
        candidate = root / f"{target}.json"
        if candidate.is_file():
            return candidate
    available = sorted({
        entry.stem
        for root in roots
        if root.is_dir()
        for entry in root.glob("*.json")
        if entry.stem != "manifest"
    })
    listing = ", ".join(available) if available else "(none)"
    raise KeyError(
        f"unknown artifact {target!r} under {artifacts_root};"
        f" available ids: {listing} — or pass a JSON file path"
    )


def _load_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from None


def _print_critical_path(label: str, cp, top: int) -> None:
    print(
        f"critical path [{label}]: {len(cp.segments)} segments,"
        f" path {cp.total_s * 1e3:.6f} ms / makespan {cp.makespan_s * 1e3:.6f} ms"
    )
    for resource, share in sorted(
        cp.blocking_shares().items(), key=lambda kv: -kv[1]
    ):
        bar = "#" * int(round(share * 40))
        print(f"  {resource:<18} {share:7.2%}  {bar}")
    for seg in cp.segments[:top]:
        print(
            f"    {seg.start_s * 1e3:10.4f} -> {seg.end_s * 1e3:10.4f} ms"
            f"  {seg.resource:<18} {seg.label}"
        )
    if len(cp.segments) > top:
        print(f"    ... {len(cp.segments) - top} more segments (--top N)")


def _run_analyze(args) -> int:
    """The `repro analyze` body: critical path / self time / trace diff."""
    path = _resolve_artifact(args.target, args.artifacts)
    doc = _load_json(path)
    is_trace = isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list)
    modes = [
        mode for mode, wanted in (
            ("critical-path", args.critical_path),
            ("self-time", args.self_time),
            ("diff", args.diff is not None),
        ) if wanted
    ]
    if not modes:        # default: everything that applies to the input
        modes = ["critical-path"] + (["self-time"] if is_trace else [])
    payload: dict = {"input": str(path)}

    if "critical-path" in modes:
        paths: list[tuple[str, object]] = []
        if is_trace:
            paths.append(("trace", obs.critical_path_trace(doc)))
        else:
            timelines = obs.analyze.find_timelines(doc)
            if not timelines:
                raise ValueError(
                    f"{path}: no engine timeline found (artifacts carry one"
                    " when the experiment records an EngineRun; traces always"
                    " analyze)"
                )
            paths.extend(
                (label, obs.critical_path(sub)) for label, sub in timelines
            )
        payload["critical_path"] = {
            label: cp.to_dict() for label, cp in paths
        }
        if not args.json:
            for label, cp in paths:
                _print_critical_path(label, cp, args.top)

    if "self-time" in modes:
        if not is_trace:
            raise ValueError(
                f"{path}: --self-time needs a Chrome trace document"
                " (written by `repro trace` or any --trace flag)"
            )
        rows = obs.self_time(doc)
        payload["self_time"] = rows
        if not args.json:
            print(f"self time [{path.name}]: {len(rows)} span names")
            width = max((len(r["name"]) for r in rows[:args.top]), default=4)
            for row in rows[:args.top]:
                print(
                    f"  {row['name']:<{width}}  x{row['count']:<5}"
                    f" self {row['self_us'] / 1e3:10.3f} ms"
                    f"  total {row['total_us'] / 1e3:10.3f} ms"
                )

    if "diff" in modes:
        other = _resolve_artifact(args.diff, args.artifacts)
        old_doc = _load_json(other)
        if not is_trace or not isinstance(old_doc.get("traceEvents"), list):
            raise ValueError(
                "--diff compares two Chrome trace documents"
                f" ({path} vs {other})"
            )
        rows = obs.diff_traces(old_doc, doc)
        payload["diff"] = {"baseline": str(other), "rows": rows}
        if not args.json:
            print(f"trace diff [{other.name} -> {path.name}]:")
            width = max((len(r["name"]) for r in rows[:args.top]), default=4)
            for row in rows[:args.top]:
                delta_ms = row["delta_self_us"] / 1e3
                print(
                    f"  {row['name']:<{width}}  {delta_ms:+10.3f} ms self"
                    f"  ({row['old_self_us'] / 1e3:.3f} ->"
                    f" {row['new_self_us'] / 1e3:.3f} ms) {row['status']}"
                )

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=float))
    return 0


def _run_slo(args) -> int:
    """The `repro slo` body: offline SLO replay over a saved window series."""
    path = _resolve_artifact(args.artifact, args.artifacts)
    doc = _load_json(path)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a cluster report payload")
    windows = doc.get("windows")
    if not isinstance(windows, list):
        windows = (doc.get("sharding") or {}).get("windows")
    if not isinstance(windows, list) or not windows:
        raise ValueError(
            f"{path}: no window series (sharded cluster artifacts carry"
            " one; run `repro cluster --shards K --slo-ms MS --output ...`)"
        )
    saved = doc.get("slo") if isinstance(doc.get("slo"), dict) else {}
    slo_ms = args.slo_ms or saved.get("slo_ms")
    if not slo_ms:
        raise ValueError(
            f"{path}: no SLO in the artifact; pass --slo-ms MS"
        )
    target = args.target or saved.get("target", 0.99)
    monitor = obs.SLOMonitor(
        obs.SLOObjective(slo_ms=float(slo_ms), target=float(target))
    )
    for row in windows:
        served = int(row.get("served", 0))
        attainment = row.get("slo_attainment")
        # Offline replay reduces each window to (served, good) counts;
        # windows recorded without attainment count as all-good.
        good = served * float(attainment) if attainment is not None else served
        monitor.observe_counts(
            int(row.get("index", 0)),
            float(row.get("start_s", 0.0)),
            float(row.get("end_s", 0.0)),
            served,
            good,
        )
    summary = monitor.summary()
    if args.json:
        print(json.dumps(
            {"input": str(path), "slo": summary,
             "windows": [s.to_dict() for s in monitor.states]},
            indent=2, sort_keys=True, default=float,
        ))
        return 0
    budget = summary["budget"]
    print(
        f"slo [{path.name}]: {summary['slo_ms']:g} ms @"
        f" target {summary['target']:g} over {len(windows)} windows"
    )
    print(
        f"  attainment {summary['attainment']:.4f}"
        f" ({summary['violations']} violations)"
    )
    print(
        f"  error budget: consumed {budget['consumed']:.2f}x,"
        f" remaining {budget['remaining']:.2%}"
    )
    worst = max(monitor.states, key=lambda s: s.burn_rate, default=None)
    if worst is not None:
        print(
            f"  peak burn rate {worst.burn_rate:.2f}x"
            f" (window {worst.index} @ {worst.end_s * 1e3:.2f} ms)"
        )
    if summary["alerts"]:
        for event in summary["alerts"]:
            print(
                f"  alert {event['rule']} {event['kind']}"
                f" @ window {event.get('window')}"
                f" (burn {event['value']:.2f}x)"
            )
    else:
        print("  no burn-rate alerts")
    return 0


def _run_cluster(args) -> int:
    """The `repro cluster` body: build the fleet, serve the stream, print."""
    # Imported lazily: the cluster layer pulls the whole simulator stack,
    # which `repro list`/`repro cache` don't need.
    from .cluster import (
        AdmissionConfig,
        AutoscaleConfig,
        ClusterSimulation,
        fleet_capacity_rps,
        homogeneous_fleet,
        parse_fleet,
    )
    from .serve import (
        SchedulerConfig,
        assign_priorities,
        assign_tenants,
        bursty_arrivals,
        parse_model_mix,
        parse_priority_mix,
        parse_tenants,
        poisson_arrivals,
    )

    if args.alerts and not args.shards:
        raise ValueError(
            "--alerts needs the windowed coordinator: add --shards K"
        )
    if args.trace:
        obs.enable()
    if args.kinds_file is not None:
        from .cluster import load_chip_kinds

        names = load_chip_kinds(args.kinds_file)
        print(f"registered chip kind(s) from {args.kinds_file}: {', '.join(names)}")
    weights = parse_model_mix(args.mix)
    fleet = parse_fleet(args.fleet)
    capacity = fleet_capacity_rps(fleet, weights, seed=args.seed, passes=args.passes)
    rate = args.rho * capacity
    if args.arrival == "poisson":
        stream = poisson_arrivals(args.requests, rate, weights, args.seed)
    elif args.arrival == "bursty":
        stream = bursty_arrivals(args.requests, rate, weights, args.seed)
    else:
        from .harness.experiments import _planet_trace

        stream = _planet_trace(
            args.arrival, args.requests, rate, weights, args.seed,
            args.period_s, args.regions, spike_factor=4.0,
        )
    tenants = parse_tenants(args.tenants) if args.tenants else ()
    if tenants:
        stream = assign_tenants(stream, tenants, seed=args.seed)
    if args.priority_mix:
        stream = assign_priorities(
            stream, parse_priority_mix(args.priority_mix), seed=args.seed
        )

    autoscale = None
    if args.autoscale_max:
        # Sampling interval ~20x the mix's mean service time on one chip
        # of the fleet's leading kind — replicas are of that kind too, so
        # a sparse_heavy fleet scales with sparse_heavy chips.
        template_kind = fleet.chips[0].kind
        mean_latency = 1.0 / fleet_capacity_rps(
            homogeneous_fleet(1, template_kind), weights, seed=args.seed,
            passes=args.passes,
        )
        autoscale = AutoscaleConfig(
            interval_s=20 * mean_latency,
            max_chips=args.autoscale_max,
            kind=template_kind,
        )
    scheduler = SchedulerConfig(
        max_batch=1 if args.scheduler == "fifo" else args.max_batch,
        max_inflight=args.max_inflight,
        mode="continuous" if args.scheduler == "continuous" else "static",
    )
    admission = AdmissionConfig(queue_capacity=args.queue_capacity or None)
    if args.shards:
        from .cluster import ShardingConfig, simulate_cluster_sharded

        span = stream[-1].arrival_s if stream else 0.0
        window_s = (
            args.window_ms * 1e-3
            if args.window_ms > 0
            else max(span / 32.0, 1e-9)
        )
        report = simulate_cluster_sharded(
            stream,
            fleet,
            scheduler,
            policy=args.policy,
            admission=admission,
            autoscale=autoscale,
            sharding=ShardingConfig(
                num_shards=args.shards,
                window_s=window_s,
                jobs=args.shard_jobs,
                shard_policy=args.shard_policy,
            ),
            seed=args.seed,
            passes=args.passes,
            slo_ms=args.slo_ms or None,
            slo_target=args.slo_target,
            alerts=args.alerts,
            tenants=tenants,
        )
    else:
        report = ClusterSimulation(
            fleet,
            scheduler,
            policy=args.policy,
            admission=admission,
            autoscale=autoscale,
            seed=args.seed,
            passes=args.passes,
            tenants=tenants,
        ).run(stream)

    p = report.latency_percentiles_ms
    print(
        f"fleet {args.fleet} policy {report.policy} mix {args.mix}"
        f" seed {args.seed} passes {args.passes}"
    )
    print(
        f"  offered {report.offered_rps:,.0f} rps (rho {args.rho} of"
        f" {capacity:,.0f} rps capacity)"
    )
    print(
        f"  served {report.served}/{report.num_requests}"
        f" (shed {report.shed}), throughput {report.throughput_rps:,.0f} rps"
    )
    print(
        f"  latency ms: p50 {p['p50']:.3f}  p95 {p['p95']:.3f}"
        f"  p99 {p['p99']:.3f}  max {report.latency_max_ms:.3f}"
    )
    print(f"  energy/request {report.energy_per_request_mj:.4f} mJ")
    if report.tenants:
        print(f"  tenants ({args.scheduler} scheduler):")
        for name, block in report.tenants.items():
            quota = block["quota"]
            print(
                f"    {name:<10} w={block['weight']:g}"
                f" quota={quota if quota is not None else '-'}"
                f" served {block['served']:>5} shed {block['shed']:>4}"
                f"  share {block['service_share']:6.2%}"
                f"  p99 {block['latency_ms']['p99']:.3f} ms"
            )
    if report.num_shards > 1:
        print(
            f"  sharded: {report.num_shards} shards,"
            f" {len(report.windows)} windows of"
            f" {report.window_s * 1e3:.4f} ms"
            f" ({args.shard_jobs or 'all'} job(s),"
            f" shard policy {args.shard_policy})"
        )
    if report.slo is not None:
        print(
            f"  slo {report.slo['slo_ms']:.3f} ms: attainment"
            f" {report.slo['attainment']:.4f}"
            f" ({report.slo['violations']} violations)"
        )
        budget = report.slo.get("budget")
        if budget is not None:
            print(
                f"  error budget: consumed {budget['consumed']:.2f}x,"
                f" remaining {budget['remaining']:.2%}"
                f" (target {report.slo.get('target', 0.99):g})"
            )
    if report.alerts:
        fired = [a for a in report.alerts if a.get("kind") == "fired"]
        rules = sorted({a["rule"] for a in fired})
        print(
            f"  alerts: {len(fired)} fired"
            + (f" ({', '.join(rules)})" if rules else "")
        )
        for alert in report.alerts:
            window = alert.get("window")
            at = f" @ window {window}" if window is not None else ""
            print(
                f"    {alert['severity']:<8} {alert['rule']}"
                f" {alert['kind']}{at}: {alert['message']}"
            )
    elif args.alerts or (report.slo or {}).get("rules"):
        print("  alerts: none fired")
    if len(report.chips) <= 16:
        for name, chip in report.chips.items():
            util = chip.utilization
            print(
                f"  {name:<7} {chip.kind:<12} served {chip.requests_served:>5}"
                f"  dense {util['dense_core']:.2f} sparse {util['sparse_core']:.2f}"
                f" attn {util['attention_core']:.2f} dram {util['dram']:.2f}"
                + ("  (drained)" if chip.drained else "")
            )
    else:
        served_counts = [c.requests_served for c in report.chips.values()]
        print(
            f"  {len(report.chips)} chips: served"
            f" min {min(served_counts)} / mean"
            f" {sum(served_counts) / len(served_counts):.1f} /"
            f" max {max(served_counts)} per chip"
            " (per-chip rows elided; see --output JSON)"
        )
    for event in report.scaling_events:
        print(
            f"  autoscaler t={event.t_s * 1e3:8.2f}ms {event.action:<5}"
            f" {event.chip} (pressure {event.pressure:.2f},"
            f" {event.accepting_chips} accepting)"
        )
    if args.output is not None:
        args.output.write_text(canonical_json(report.to_dict()))
        print(f"wrote {args.output}")
    if args.alerts:
        # Reconstruct incident episodes from the recorded transitions and
        # write the JSON incident report alongside the run.
        monitor = obs.Monitor(detectors=[])
        monitor.alerts = [
            obs.AlertEvent.from_dict(alert) for alert in report.alerts
        ]
        incident_path = Path("INCIDENT_cluster.json")
        incident_path.write_text(canonical_json(
            monitor.incident_report(slo_summary=report.slo)
        ))
        print(f"incident report: {incident_path}")
    if args.trace:
        _write_trace(
            Path("TRACE_cluster.json"), obs.result_events(report.to_dict())
        )
    return 0


def _run_compile(args) -> int:
    """The `repro compile` body: compile one model, print the summary."""
    import dataclasses

    # Imported lazily, like the cluster layer: compilation pulls the full
    # simulator stack, which `repro list`/`repro cache` don't need.
    from .algo import ECPConfig
    from .cluster import chip_config
    from .compiler import PassConfig, ProgramCache, compile_model, default_program_cache, program_key
    from .model import MODEL_ZOO

    if args.model not in MODEL_ZOO:
        print(
            f"unknown model {args.model!r}; options {sorted(MODEL_ZOO)}",
            file=sys.stderr,
        )
        return 2
    if (args.theta_q is None) != (args.theta_k is None):
        print("--theta-q and --theta-k must be given together", file=sys.stderr)
        return 2
    config = chip_config(args.chip, args.bs_t, args.bs_n)
    if args.dram_gbps is not None:
        if args.dram_gbps <= 0:
            print("--dram-gbps must be positive", file=sys.stderr)
            return 2
        config = config.with_overrides(
            dram=dataclasses.replace(
                config.dram, bandwidth_bytes_per_s=args.dram_gbps * 1e9
            )
        )
    ecp = None
    if args.theta_q is not None:
        ecp = ECPConfig(
            theta_q=args.theta_q, theta_k=args.theta_k, spec=config.bundle_spec
        )
    pass_config = PassConfig.parse(args.passes)
    cache = ProgramCache(None) if args.no_cache else default_program_cache()
    key = program_key(args.model, config, pass_config, seed=args.seed, ecp=ecp)
    # get(), not `in`: a corrupted on-disk entry is a miss (and self-heals).
    cached = cache.get(key) is not None
    program = compile_model(
        args.model, config, seed=args.seed, ecp=ecp, passes=pass_config,
        cache=cache,
    )

    if args.dump is not None and str(args.dump) == "-":
        print(canonical_json(program.to_dict()))
        return 0

    counts = program.tile_counts()
    phases = program.stage_counts()
    scheduled = program.scheduled_latency_s
    print(
        f"{args.model} on {args.chip} chip (bs {args.bs_t}x{args.bs_n},"
        f" seed {args.seed}), passes {pass_config.spec()}"
        + (f", ecp θq={args.theta_q:g} θk={args.theta_k:g}" if ecp else "")
    )
    print(f"  pipeline: {' -> '.join(program.passes)}")
    print(
        f"  stages {len(program.stages)} ("
        + " ".join(f"{phase} {n}" for phase, n in sorted(phases.items()))
        + ")"
    )
    print(
        "  tiles: "
        + "  ".join(f"{core} {counts[core]}" for core in sorted(counts))
    )
    print(f"  bundle occupancy {program.bundle_occupancy():.3f}")
    print(
        f"  est. makespan: serial {program.serial_latency_s * 1e3:.4f} ms"
        + (
            f" | scheduled {scheduled * 1e3:.4f} ms"
            if scheduled is not None
            else ""
        )
        + f" | lower bound {program.pipelined_bound_s * 1e3:.4f} ms"
    )
    print(
        f"  dynamic energy {program.dynamic_pj * 1e-9:.4f} mJ,"
        f" DRAM traffic {program.dram_bytes / 1e6:.2f} MB"
    )
    print(
        f"  program cache: {'hit' if cached else 'miss'} @{key[:12]}"
        + (" (bypassed)" if args.no_cache else "")
    )
    if args.dump is not None:
        args.dump.write_text(canonical_json(program.to_dict()))
        print(f"wrote {args.dump}")
    return 0


def _run_dse(args) -> int:
    """The `repro dse` body: search, print the frontier, export winners."""
    # Imported lazily: the DSE layer pulls the compiler + engine stack,
    # which `repro list`/`repro cache` don't need.
    from .dse import (
        DSEConfig,
        export_fleet_kinds,
        format_frontier_report,
        parse_objectives,
        run_dse,
    )
    from .model import MODEL_ZOO

    if args.model not in MODEL_ZOO:
        print(
            f"unknown model {args.model!r}; options {sorted(MODEL_ZOO)}",
            file=sys.stderr,
        )
        return 2
    if args.trace:
        obs.enable()
    objectives = parse_objectives(args.objectives)
    config = DSEConfig(
        model=args.model,
        strategy=args.strategy,
        budget=args.budget,
        objectives=objectives,
        seed=args.seed,
        batch=args.batch,
    )
    runner = ExperimentRunner(
        artifacts_root=args.artifacts, jobs=args.jobs, force=args.force
    )
    started = time.perf_counter()
    report = run_dse(config, runner=runner)
    wall = time.perf_counter() - started

    print(
        f"{args.model} dse: strategy {args.strategy}, budget {args.budget},"
        f" seed {args.seed}, objectives {'+'.join(objectives)}"
    )
    print(
        f"  evaluated {report['evaluated']} chips"
        f" ({report['cache_hits']} cache hits) in {wall:.1f}s"
        f" with {runner.jobs} job(s); space size {report['space']['size']:,}"
    )
    for line in format_frontier_report(report, top=args.top):
        print(f"  {line}")
    if args.export_fleet is not None:
        kinds = export_fleet_kinds(report, args.export_fleet)
        print(
            f"  exported {len(kinds)} chip kind(s) to {args.export_fleet}"
            f" (use: repro cluster --kinds-file {args.export_fleet}"
            f" --fleet {next(iter(kinds))}:2)"
        )
    if args.output is not None:
        args.output.write_text(canonical_json(report))
        print(f"wrote {args.output}")
    if args.trace:
        _write_trace(Path(f"TRACE_dse_{args.model}.json"))
    return 0


def _bench_record(table: dict, name: str, side: str) -> tuple[float, str]:
    """One experiment's (duration, status) out of a bench payload, with a
    clear error instead of a crash on malformed entries."""
    entry = table[name]
    if not isinstance(entry, dict):
        raise ValueError(f"{side}: experiment {name!r} is not an object")
    try:
        duration = float(entry.get("duration_s", 0.0))
    except (TypeError, ValueError):
        raise ValueError(
            f"{side}: experiment {name!r} has a non-numeric duration_s"
            f" {entry.get('duration_s')!r}"
        ) from None
    return duration, str(entry.get("status", "ok"))


def _print_bench_compare(
    old_payload: dict, payload: dict, old_path: Path
) -> float | None:
    """Per-experiment wall-clock diff of two bench files (new vs old).

    Experiments that failed on either side are excluded from the timing
    totals and listed explicitly, as are experiments present on only one
    side (added/removed) — a differing experiment set must never crash or
    silently skip.  Returns the total new/old duration ratio over the
    shared passing experiments (``None`` when there is no timed overlap);
    ``--gate`` turns that ratio into the CI exit code.  Raises
    ``ValueError`` on structurally malformed payloads.
    """
    old_experiments = old_payload.get("experiments")
    if not isinstance(old_experiments, dict):
        raise ValueError(f"{old_path}: no experiments table (not a bench file?)")
    new_experiments = payload.get("experiments", {})
    print(
        f"vs {old_path} (generated {old_payload.get('generated_at', '?')},"
        f" code {str(old_payload.get('code_hash', '?'))[:12]})"
    )
    print(f"  old: {format_provenance(old_payload.get('provenance'))}")
    print(f"  new: {format_provenance(payload.get('provenance'))}")
    shared = sorted(name for name in new_experiments if name in old_experiments)
    failed: list[tuple[str, str, str]] = []
    timed: list[tuple[str, float, float]] = []
    for name in shared:
        old_s, old_status = _bench_record(old_experiments, name, str(old_path))
        new_s, new_status = _bench_record(new_experiments, name, "new bench")
        if old_status != "ok" or new_status != "ok":
            failed.append((name, old_status, new_status))
        else:
            timed.append((name, old_s, new_s))
    width = max((len(name) for name in shared), default=10)
    old_total = new_total = 0.0
    for name, old_s, new_s in timed:
        old_total += old_s
        new_total += new_s
        if new_s > 0:
            ratio = old_s / new_s
            verdict = f"{ratio:6.2f}x " + ("faster" if ratio >= 1.0 else "SLOWER")
        else:
            verdict = "      -"
        print(f"  {name:<{width}}  {old_s:8.2f}s -> {new_s:8.2f}s  {verdict}")
    total_ratio = None
    if old_total > 0 and new_total > 0:
        total_ratio = new_total / old_total
        ratio = old_total / new_total
        print(
            f"  {'total':<{width}}  {old_total:8.2f}s -> {new_total:8.2f}s"
            f"  {ratio:6.2f}x " + ("faster" if ratio >= 1.0 else "SLOWER")
        )
    for name, old_status, new_status in failed:
        print(
            f"  failed (excluded from totals): {name}"
            f" [{old_path.name}: {old_status}, new: {new_status}]"
        )
    new_only = sorted(set(new_experiments) - set(old_experiments))
    gone = sorted(set(old_experiments) - set(new_experiments))
    if new_only:
        print(f"  added since {old_path.name}: {', '.join(new_only)}")
    if gone:
        print(f"  removed vs {old_path.name}: {', '.join(gone)}")
    return total_ratio


def _run_cache(args) -> int:
    """The `repro cache ls|gc` body.

    Covers both content-addressed stores under the artifact root: the
    experiment result cache (``cache/``) and the compiler's program cache
    (``programs/``, when present).
    """
    from .compiler import ProgramCache

    cache = ResultCache(Path(args.artifacts) / "cache")
    programs = ProgramCache(Path(args.artifacts) / "programs")
    if args.cache_command == "ls":
        entries = cache.list_entries()
        total = sum(entry.size_bytes for entry in entries)
        for entry in entries:
            age_s = max(0.0, time.time() - entry.mtime)
            params = ",".join(
                f"{k}={v}" for k, v in sorted(entry.params.items())
            ) or "-"
            if len(params) > 48:
                params = params[:45] + "..."
            print(
                f"{entry.key[:12]}  {entry.experiment:<24}"
                f" {entry.size_bytes:>9}B  {age_s:>8.0f}s ago  {params}"
            )
        print(f"{len(entries)} entries, {total} bytes ({cache.root})")
        program_entries, program_bytes = programs.disk_usage()
        if program_entries:
            print(
                f"programs: {program_entries} entries,"
                f" {program_bytes} bytes ({programs.root})"
            )
        if args.stats:
            result_stats = cache.stats()
            print(
                "stats: "
                f"{result_stats.entries + program_entries} entries,"
                f" {result_stats.total_bytes + program_bytes} bytes"
                f" | result {result_stats.entries} / {result_stats.total_bytes}B"
                f" | program {program_entries} / {program_bytes}B"
            )
        return 0
    if args.keep_latest < 0:
        print("--keep-latest must be >= 0", file=sys.stderr)
        return 2
    result = cache.gc(args.keep_latest)
    print(
        f"kept {result.kept}, removed {result.removed},"
        f" freed {result.freed_bytes} bytes ({cache.root})"
    )
    kept, removed, freed = programs.gc(args.keep_latest)
    if kept or removed:
        print(
            f"programs: kept {kept}, removed {removed},"
            f" freed {freed} bytes ({programs.root})"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    # Honour REPRO_TRACE/REPRO_METRICS from the environment for every
    # command (the same contract as REPRO_ENGINE: strict values, an
    # unrecognized spelling is exit 2, never a silent fall-through).
    try:
        obs.enable_from_env()
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[name]
            params = ",".join(sorted(experiment.params)) or "-"
            print(
                f"{name:<{width}}  {experiment.artifact:<9} {experiment.cost:<7}"
                f" params:{params:<24} {experiment.description}"
            )
        return 0

    if args.command == "zoo":
        for name, config in MODEL_ZOO.items():
            print(
                f"{name}: {config.name}  B={config.num_blocks} T={config.timesteps}"
                f" N={config.num_tokens} D={config.embed_dim}"
                f" ({config.input_kind})"
            )
        return 0

    if args.command == "run":
        try:
            params = _parse_single_params(args.experiment, args.param, args.seed)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        if args.trace:
            obs.enable()
        outcome = ExperimentRunner(artifacts_root=None).run(args.experiment, params)
        if not outcome.ok:
            print(outcome.error, file=sys.stderr)
            return 1
        text = json.dumps(outcome.result, indent=2, default=float, sort_keys=True)
        if args.output is not None:
            args.output.write_text(text)
            print(f"wrote {args.output}")
        else:
            print(text)
        if args.trace:
            _write_trace(
                Path(f"TRACE_{args.experiment}.json"),
                obs.result_events(outcome.result),
            )
        return 0

    if args.command == "run-all":
        if args.trace:
            obs.enable()
        code, summary = _run_registry(args, force=args.force)
        if args.trace and summary is not None:
            root = (
                Path(summary.manifest_path).parent
                if summary.manifest_path
                else Path(args.artifacts)
            )
            _write_trace(root / "trace.json")
        return code

    if args.command == "bench":
        if args.gate is not None and args.compare is None:
            print("--gate requires --compare", file=sys.stderr)
            return 2
        if args.gate is not None and args.gate <= 0:
            print("--gate must be > 0", file=sys.stderr)
            return 2
        # Benchmarks force-run: cache hits report ~0s and would poison the
        # timing series.
        code, summary = _run_registry(args, force=True)
        if summary is None:
            return code
        payload = {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "provenance": provenance(),
            "smoke": args.smoke,
            "jobs": summary.jobs,
            "code_hash": summary.code_hash,
            "wall_time_s": summary.wall_time_s,
            "experiments": {
                o.experiment: {
                    "duration_s": o.duration_s,
                    "status": o.status,
                    "params": o.params,
                    # experiments may publish headline numbers (e.g. the
                    # engine fastpath speedup) into the bench record
                    **(
                        {"metrics": o.result["bench_metrics"]}
                        if isinstance(o.result, dict)
                        and "bench_metrics" in o.result
                        else {}
                    ),
                }
                for o in summary.outcomes
            },
        }
        target = args.output
        if target is None:
            target = Path(f"BENCH_{time.strftime('%Y%m%d-%H%M%S')}.json")
        target.write_text(json.dumps(payload, indent=2, sort_keys=True, default=float))
        print(f"bench: {target}")
        if args.compare is not None:
            try:
                old_payload = json.loads(args.compare.read_text())
            except FileNotFoundError:
                print(f"--compare: {args.compare} not found", file=sys.stderr)
                return 2
            except json.JSONDecodeError as error:
                print(f"--compare: {args.compare}: {error}", file=sys.stderr)
                return 2
            if not isinstance(old_payload, dict):
                print(
                    f"--compare: {args.compare}: not a bench payload",
                    file=sys.stderr,
                )
                return 2
            try:
                ratio = _print_bench_compare(old_payload, payload, args.compare)
            except ValueError as error:
                print(f"--compare: {error}", file=sys.stderr)
                return 2
            if args.gate is not None:
                if ratio is None:
                    print(
                        "--gate: no shared passing experiments to compare",
                        file=sys.stderr,
                    )
                    return 2
                if ratio > args.gate:
                    print(
                        f"bench gate FAILED: {ratio:.2f}x the"
                        f" {args.compare.name} total (gate {args.gate:.2f}x)",
                        file=sys.stderr,
                    )
                    return 3
                print(
                    f"bench gate ok: {ratio:.2f}x the {args.compare.name}"
                    f" total (gate {args.gate:.2f}x)"
                )
        return code

    if args.command == "compile":
        try:
            return _run_compile(args)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2

    if args.command == "cluster":
        try:
            return _run_cluster(args)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2

    if args.command == "dse":
        try:
            return _run_dse(args)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2

    if args.command == "cache":
        return _run_cache(args)

    if args.command in ("trace", "metrics", "analyze", "slo"):
        handler = {
            "trace": _run_trace,
            "metrics": _run_metrics,
            "analyze": _run_analyze,
            "slo": _run_slo,
        }[args.command]
        try:
            return handler(args)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2

    if args.command == "sweep":
        try:
            runner = ExperimentRunner(
                artifacts_root=args.artifacts, jobs=args.jobs, force=args.force
            )
            experiment = get_experiment(args.experiment)
            grid = parse_param_specs(experiment, args.param)
            if _seed_applies(experiment, "seed" in grid, args.seed):
                grid = {**grid, "seed": [args.seed]}
            summary = runner.sweep(args.experiment, grid)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        _print_summary(summary)
        if runner.store is not None:
            sweep_path = runner.store.sweep_path(args.experiment)
            print(f"sweep: {sweep_path}")
            if args.output is not None:
                args.output.write_text(sweep_path.read_text())
                print(f"wrote {args.output}")
        elif args.output is not None:  # pragma: no cover - store always set here
            args.output.write_text(canonical_json([vars(o) for o in summary.outcomes]))
        return 0 if summary.ok else 1

    return 1  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
