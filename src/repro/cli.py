"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show every registered experiment (paper table/figure) id.
run <experiment-id> [--output FILE]
    Run one experiment and print (or write) its JSON result.
zoo
    Print the Table-2 model zoo.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .harness import EXPERIMENTS, run_experiment
from .model import MODEL_ZOO

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bishop (ISCA 2025) reproduction: run paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiment ids")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id (see `repro list`)")
    run.add_argument(
        "--output", type=Path, default=None, help="write JSON here instead of stdout"
    )

    sub.add_parser("zoo", help="print the Table-2 model zoo")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.command == "zoo":
        for name, config in MODEL_ZOO.items():
            print(
                f"{name}: {config.name}  B={config.num_blocks} T={config.timesteps}"
                f" N={config.num_tokens} D={config.embed_dim}"
                f" ({config.input_kind})"
            )
        return 0

    if args.command == "run":
        try:
            result = run_experiment(args.experiment)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        text = json.dumps(result, indent=2, default=float, sort_keys=True)
        if args.output is not None:
            args.output.write_text(text)
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0

    return 1  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
