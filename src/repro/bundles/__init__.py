"""Token-Time Bundle representation and statistics (system S5)."""

from .stats import (
    ActiveBundleDistribution,
    DensityReport,
    active_bundle_distribution,
    density_report,
)
from .ttb import BundleSpec, TTBGrid, pad_to_bundle_grid

__all__ = [
    "BundleSpec",
    "TTBGrid",
    "pad_to_bundle_grid",
    "ActiveBundleDistribution",
    "active_bundle_distribution",
    "DensityReport",
    "density_report",
]
