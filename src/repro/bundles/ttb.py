"""Token-Time Bundles (TTBs) — the paper's fundamental unit of work (Sec. 3).

A TTB packs the binary spiking activity of ``BS_n`` tokens across ``BS_t``
time points for one feature.  A spike tensor of shape ``(T, N, D)`` therefore
splits into ``ceil(T/BS_t) × ceil(N/BS_n) × D`` bundles.  A bundle is *active*
if it contains at least one spike (its Eq.-9 tag, the L0 norm of its
contents, is nonzero); inactive bundles are skipped wholesale by the
accelerator dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["BundleSpec", "TTBGrid", "pad_to_bundle_grid"]


@dataclass(frozen=True)
class BundleSpec:
    """Bundle volume: ``bs_t`` time points × ``bs_n`` tokens (Fig. 4).

    The paper's design-space exploration (Fig. 16) sweeps this volume; values
    of 4-8 total are reported near-optimal.
    """

    bs_t: int = 2
    bs_n: int = 4

    def __post_init__(self) -> None:
        if self.bs_t < 1 or self.bs_n < 1:
            raise ValueError(f"bundle sizes must be >= 1, got ({self.bs_t}, {self.bs_n})")

    @property
    def volume(self) -> int:
        """Spikes per bundle per feature."""
        return self.bs_t * self.bs_n

    def grid_shape(self, timesteps: int, tokens: int) -> tuple[int, int]:
        """Number of (time, token) bundle slots covering ``(T, N)``."""
        return (-(-timesteps // self.bs_t), -(-tokens // self.bs_n))


def pad_to_bundle_grid(spikes: np.ndarray, spec: BundleSpec) -> np.ndarray:
    """Zero-pad ``(T, N, D)`` so T, N are multiples of the bundle sizes.

    Padding with zeros never creates active bundles, so all tag statistics
    are invariant under this operation.
    """
    t, n, _ = spikes.shape
    bt, bn = spec.grid_shape(t, n)
    pad_t = bt * spec.bs_t - t
    pad_n = bn * spec.bs_n - n
    if pad_t == 0 and pad_n == 0:
        return spikes
    return np.pad(spikes, ((0, pad_t), (0, pad_n), (0, 0)))


class TTBGrid:
    """The bundle decomposition of one spike tensor ``(T, N, D)``.

    Exposes the Eq.-9 activity tags, the derived active-bundle masks, and the
    counts used by the stratifier (per-feature) and by ECP (per bundle-row).

    Parameters
    ----------
    spikes:
        Binary array of shape ``(T, N, D)`` — time × tokens × features.
        Batched inputs should construct one grid per sample (the accelerator
        processes one inference at a time, as in the paper's evaluation).
    spec:
        The bundle volume.
    """

    def __init__(self, spikes: np.ndarray, spec: BundleSpec):
        spikes = np.asarray(spikes)
        if spikes.ndim != 3:
            raise ValueError(f"expected (T, N, D) spikes, got shape {spikes.shape}")
        if spikes.size and not np.isin(np.unique(spikes), (0, 1)).all():
            raise ValueError("spike tensor must be binary")
        self.spec = spec
        self.timesteps, self.tokens, self.features = spikes.shape
        self.spikes = spikes.astype(np.float64, copy=False)
        self.n_bt, self.n_bn = spec.grid_shape(self.timesteps, self.tokens)

    # ------------------------------------------------------------------
    # Tags and masks
    # ------------------------------------------------------------------
    @cached_property
    def bundled(self) -> np.ndarray:
        """Padded view ``(n_bt, bs_t, n_bn, bs_n, D)`` of the spike tensor."""
        padded = pad_to_bundle_grid(self.spikes, self.spec)
        return padded.reshape(
            self.n_bt, self.spec.bs_t, self.n_bn, self.spec.bs_n, self.features
        )

    @cached_property
    def tags(self) -> np.ndarray:
        """Eq. 9 activity tags ``Z[bt, bn, d]``: spikes (L0 norm) per bundle."""
        return self.bundled.sum(axis=(1, 3))

    @cached_property
    def active(self) -> np.ndarray:
        """Boolean mask of active bundles, shape ``(n_bt, n_bn, D)``."""
        return self.tags > 0

    # ------------------------------------------------------------------
    # Scalar statistics
    # ------------------------------------------------------------------
    @property
    def num_bundles(self) -> int:
        return self.n_bt * self.n_bn * self.features

    @property
    def num_active_bundles(self) -> int:
        return int(self.active.sum())

    @property
    def bundle_density(self) -> float:
        """Fraction of bundles that are active ("TTB density" in Fig. 6)."""
        return self.num_active_bundles / self.num_bundles if self.num_bundles else 0.0

    @property
    def spike_density(self) -> float:
        """Fraction of nonzero entries ("density" in Fig. 6)."""
        return float(self.spikes.mean()) if self.spikes.size else 0.0

    # ------------------------------------------------------------------
    # Aggregations used downstream
    # ------------------------------------------------------------------
    @cached_property
    def active_per_feature(self) -> np.ndarray:
        """Active-bundle count per feature ``(D,)`` — the stratifier's and
        Fig. 5's per-feature statistic."""
        return self.active.sum(axis=(0, 1)).astype(np.int64)

    @cached_property
    def active_per_bundle_row(self) -> np.ndarray:
        """``n_ab[bt, bn]``: active bundles across features for each bundle
        row — ECP's pruning statistic (Sec. 5.1).

        For binary spikes, every token-time point inside bundle row
        ``(bt, bn)`` has at most ``n_ab`` active features, which bounds every
        attention score in that row by ``n_ab``.
        """
        return self.active.sum(axis=2).astype(np.int64)

    def sparsity_loss_value(self) -> float:
        """Plain value of Eq. 10's inner sum for this tensor (L0 tags)."""
        return float(self.tags.sum())

    def feature_slice(self, feature_indices: np.ndarray) -> "TTBGrid":
        """Grid restricted to a subset of features (stratifier output)."""
        return TTBGrid(self.spikes[:, :, feature_indices], self.spec)
