"""Bundle-level statistics behind the paper's Figs. 5 and 6.

* Fig. 5 plots, per input feature, the number of active bundles — BSA shifts
  this distribution toward zero and raises the fraction of features with *no*
  active bundle.
* Fig. 6 reports overall spike density and TTB density for the raw workload
  and for the stratified dense ("down") and sparse ("up") partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ttb import BundleSpec, TTBGrid

__all__ = [
    "ActiveBundleDistribution",
    "active_bundle_distribution",
    "DensityReport",
    "density_report",
]


@dataclass(frozen=True)
class ActiveBundleDistribution:
    """Histogram of active-bundle counts across features (one Fig. 5 panel)."""

    counts: np.ndarray           # (D,) active bundles per feature
    histogram: np.ndarray        # (max_bundles+1,) features per count value
    zero_fraction: float         # fraction of features with no active bundle
    mean_active: float           # mean active bundles per feature

    def quantile(self, q: float) -> float:
        """Quantile of the per-feature active-bundle counts."""
        return float(np.quantile(self.counts, q))


def active_bundle_distribution(
    spikes: np.ndarray, spec: BundleSpec
) -> ActiveBundleDistribution:
    """Compute the Fig.-5 statistic for one spike tensor ``(T, N, D)``."""
    grid = TTBGrid(spikes, spec)
    counts = grid.active_per_feature
    max_slots = grid.n_bt * grid.n_bn
    histogram = np.bincount(counts, minlength=max_slots + 1)
    zero_fraction = float((counts == 0).mean()) if counts.size else 0.0
    mean_active = float(counts.mean()) if counts.size else 0.0
    return ActiveBundleDistribution(
        counts=counts,
        histogram=histogram,
        zero_fraction=zero_fraction,
        mean_active=mean_active,
    )


@dataclass(frozen=True)
class DensityReport:
    """Fig.-6 style density summary of a (possibly stratified) workload."""

    spike_density: float
    bundle_density: float
    num_features: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.spike_density * 100:.2f}% density; "
            f"{self.bundle_density * 100:.2f}% TTB density "
            f"({self.num_features} features)"
        )


def density_report(
    spikes: np.ndarray,
    spec: BundleSpec,
    feature_indices: np.ndarray | None = None,
) -> DensityReport:
    """Density summary of ``spikes`` restricted to ``feature_indices``.

    With ``feature_indices=None`` this is the "w/o stratified" row of Fig. 6;
    passing the stratifier's sparse/dense index sets produces the
    "stratified up"/"stratified down" rows.
    """
    if feature_indices is not None:
        spikes = spikes[:, :, np.asarray(feature_indices, dtype=np.int64)]
    if spikes.shape[-1] == 0:
        return DensityReport(spike_density=0.0, bundle_density=0.0, num_features=0)
    grid = TTBGrid(spikes, spec)
    return DensityReport(
        spike_density=grid.spike_density,
        bundle_density=grid.bundle_density,
        num_features=grid.features,
    )
