"""Spiking MLP block: two projections with BN+LIF between them.

Complexity ``O(T·N·D·D_h)`` per matmul (Sec. 2.2); dominant when ``D ≫ N``
(the CIFAR models), which is why the dense/sparse TTB cores target it.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Tensor
from ..snn import LIF, TimeBatchNorm, TimeLinear
from .config import SpikingTransformerConfig
from .trace import TraceRecorder

__all__ = ["SpikingMLP"]


class SpikingMLP(Module):
    """``current = W2 · LIF(BN(W1 · x))`` — returns a synaptic current."""

    def __init__(self, config: SpikingTransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        d, hidden = config.embed_dim, config.hidden_dim
        self.fc1 = TimeLinear(d, hidden, rng, bias=False)
        self.norm1 = TimeBatchNorm(hidden)
        self.lif1 = LIF(config.v_threshold, config.v_leak, config.surrogate)
        self.fc2 = TimeLinear(hidden, d, rng, bias=False)

    def forward(
        self,
        x: Tensor,
        recorder: TraceRecorder | None = None,
        taps: list[tuple[str, Tensor]] | None = None,
        block: int = 0,
    ) -> Tensor:
        d, hidden = self.config.embed_dim, self.config.hidden_dim
        if recorder is not None:
            recorder.add_matmul(block, "mlp1", x.data, (d, hidden))
        h = self.lif1(self.norm1(self.fc1(x)))
        if taps is not None:
            taps.append((f"block{block}.mlp_hidden", h))
        if recorder is not None:
            recorder.add_matmul(block, "mlp2", h.data, (hidden, d))
        return self.fc2(h)
