"""Spiking transformer configurations, including the paper's Table-2 zoo."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["SpikingTransformerConfig", "MODEL_ZOO", "model_config", "tiny_config"]


@dataclass(frozen=True)
class SpikingTransformerConfig:
    """Architecture hyperparameters of one spiking transformer.

    Mirrors Table 2: ``num_blocks`` (B), ``timesteps`` (T), ``num_tokens``
    (N), ``embed_dim`` (D); the remaining fields fill in details the paper
    inherits from Spikformer.
    """

    name: str
    num_blocks: int
    timesteps: int
    num_tokens: int
    embed_dim: int
    num_heads: int = 8
    mlp_ratio: float = 4.0
    num_classes: int = 10
    # --- input/tokenizer ---
    input_kind: str = "image"          # "image" | "event" | "sequence"
    in_channels: int = 3               # image channels or event polarities
    image_size: int = 32               # H = W for image/event inputs
    patch_size: int = 4
    tokenizer_depth: int = 2           # conv stages before patch projection
    sequence_features: int = 64        # per-token input features ("sequence")
    # --- neuron / attention ---
    v_threshold: float = 1.0
    v_leak: float = 0.0
    surrogate: str = "atan"
    attn_scale_bits: int = 3           # s = 2**-attn_scale_bits (Eq. 6)

    def __post_init__(self) -> None:
        if self.embed_dim % self.num_heads:
            raise ValueError(
                f"embed_dim {self.embed_dim} not divisible by num_heads {self.num_heads}"
            )
        if self.input_kind not in ("image", "event", "sequence"):
            raise ValueError(f"unknown input_kind {self.input_kind!r}")
        if self.input_kind in ("image", "event"):
            grid = self.image_size // self.patch_size
            if grid * grid != self.num_tokens:
                raise ValueError(
                    f"(image_size/patch_size)^2 = {grid * grid} must equal "
                    f"num_tokens = {self.num_tokens}"
                )

    @property
    def head_dim(self) -> int:
        return self.embed_dim // self.num_heads

    @property
    def hidden_dim(self) -> int:
        """MLP hidden width."""
        return int(self.embed_dim * self.mlp_ratio)

    @property
    def attn_scale(self) -> float:
        """Power-of-two attention scale ``s`` of Eq. 6 (a bit shift in HW)."""
        return 2.0 ** (-self.attn_scale_bits)

    def with_overrides(self, **kwargs) -> "SpikingTransformerConfig":
        return replace(self, **kwargs)


def _table2() -> dict[str, SpikingTransformerConfig]:
    """The five workload models of Table 2."""
    return {
        "model1": SpikingTransformerConfig(
            name="model1-cifar10",
            num_blocks=4, timesteps=10, num_tokens=64, embed_dim=384,
            num_heads=8, num_classes=10,
            input_kind="image", in_channels=3, image_size=32, patch_size=4,
        ),
        "model2": SpikingTransformerConfig(
            name="model2-cifar100",
            num_blocks=4, timesteps=8, num_tokens=64, embed_dim=384,
            num_heads=8, num_classes=100,
            input_kind="image", in_channels=3, image_size=32, patch_size=4,
        ),
        # The large-resolution models use a plain patch-embedding tokenizer
        # (depth 1): the paper's tokenizer downsamples between conv stages,
        # so full-resolution pre-convs would overstate its FLOPs share.
        "model3": SpikingTransformerConfig(
            name="model3-imagenet100",
            num_blocks=8, timesteps=4, num_tokens=196, embed_dim=128,
            num_heads=8, num_classes=100, tokenizer_depth=1,
            input_kind="image", in_channels=3, image_size=224, patch_size=16,
        ),
        "model4": SpikingTransformerConfig(
            name="model4-dvsgesture",
            num_blocks=2, timesteps=20, num_tokens=64, embed_dim=128,
            num_heads=8, num_classes=11, tokenizer_depth=1,
            input_kind="event", in_channels=2, image_size=128, patch_size=16,
        ),
        "model5": SpikingTransformerConfig(
            name="model5-googlesc",
            num_blocks=4, timesteps=8, num_tokens=256, embed_dim=384,
            num_heads=8, num_classes=35,
            input_kind="sequence", sequence_features=64,
        ),
    }


MODEL_ZOO: dict[str, SpikingTransformerConfig] = _table2()


def model_config(name: str) -> SpikingTransformerConfig:
    """Look up one of the Table-2 models by key (``model1`` .. ``model5``)."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; options: {sorted(MODEL_ZOO)}") from None


def tiny_config(
    input_kind: str = "image",
    num_classes: int = 4,
    timesteps: int = 4,
    num_blocks: int = 2,
    embed_dim: int = 32,
    num_heads: int = 2,
    image_size: int = 16,
    patch_size: int = 4,
    num_tokens: int | None = None,
    tokenizer_depth: int = 1,
    **overrides,
) -> SpikingTransformerConfig:
    """A laptop-scale configuration for tests and trained-accuracy figures.

    Same topology as the Table-2 models, shrunk so that NumPy BPTT training
    converges in seconds.
    """
    if input_kind in ("image", "event"):
        tokens = (image_size // patch_size) ** 2
    else:
        tokens = num_tokens if num_tokens is not None else 16
    return SpikingTransformerConfig(
        name=f"tiny-{input_kind}",
        num_blocks=num_blocks,
        timesteps=timesteps,
        num_tokens=tokens,
        embed_dim=embed_dim,
        num_heads=num_heads,
        mlp_ratio=2.0,
        num_classes=num_classes,
        input_kind=input_kind,
        in_channels=2 if input_kind == "event" else 3,
        image_size=image_size,
        patch_size=patch_size,
        tokenizer_depth=tokenizer_depth,
        sequence_features=overrides.pop("sequence_features", 16),
        **overrides,
    )
