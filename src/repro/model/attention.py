"""Multi-head Spiking Self-Attention (SSA) — paper Eq. 3-8.

Per head ``i``::

    Q = LIF(BN(X · W_Q));  K = LIF(BN(X · W_K));  V = LIF(BN(X · W_V))
    O = (Q · K^T · s) · V                      # s a power-of-two scale
    O_temp = LIF(BN(Concat{O_1..O_H}))         # LIF *before* the last linear
    O_attn = O_temp · W_O

Q, K, V are binary spike tensors, so ``Q·K^T`` is an integer count computed
with AND-accumulate on the hardware, and ``(S·s)·V`` is select-accumulate —
no multipliers and no softmax.  The repositioned final LIF (Eq. 7) keeps the
``W_O`` input binary, which the paper highlights versus Spikformer.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Tensor, as_tensor
from ..snn import LIF, TimeBatchNorm, TimeLinear
from .config import SpikingTransformerConfig
from .trace import TraceRecorder

__all__ = ["SpikingSelfAttention", "split_heads", "merge_heads"]


def split_heads(x: Tensor, num_heads: int) -> Tensor:
    """``(T, B, N, D)`` → ``(T, B, H, N, D/H)``."""
    t, b, n, d = x.shape
    return x.reshape(t, b, n, num_heads, d // num_heads).transpose(0, 1, 3, 2, 4)


def merge_heads(x: Tensor) -> Tensor:
    """``(T, B, H, N, d)`` → ``(T, B, N, H·d)``."""
    t, b, h, n, d = x.shape
    return x.transpose(0, 1, 3, 2, 4).reshape(t, b, n, h * d)


class SpikingSelfAttention(Module):
    """One multi-head SSA block returning the synaptic current ``O_attn``.

    The surrounding encoder block adds the residual and applies BN+LIF, so
    every tensor this module feeds to a weight matrix is binary.

    Attributes
    ----------
    ecp:
        Optional :class:`repro.algo.ecp.ECPAttentionPruner`.  When set, Q and
        K bundle rows below the error-constrained thresholds are zeroed
        before the attention product — both at inference (matching the
        accelerator) and during ECP-aware training (masks are constants, so
        gradients flow only through surviving activations).
    """

    def __init__(self, config: SpikingTransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        d = config.embed_dim
        self.q_proj = TimeLinear(d, d, rng, bias=False)
        self.k_proj = TimeLinear(d, d, rng, bias=False)
        self.v_proj = TimeLinear(d, d, rng, bias=False)
        self.q_norm = TimeBatchNorm(d)
        self.k_norm = TimeBatchNorm(d)
        self.v_norm = TimeBatchNorm(d)
        self.q_lif = LIF(config.v_threshold, config.v_leak, config.surrogate)
        self.k_lif = LIF(config.v_threshold, config.v_leak, config.surrogate)
        self.v_lif = LIF(config.v_threshold, config.v_leak, config.surrogate)
        self.attn_norm = TimeBatchNorm(d)
        self.attn_lif = LIF(config.v_threshold, config.v_leak, config.surrogate)
        self.o_proj = TimeLinear(d, d, rng, bias=False)
        self.ecp = None  # set by repro.algo.ecp.attach_ecp

    def forward(
        self,
        x: Tensor,
        recorder: TraceRecorder | None = None,
        taps: list[tuple[str, Tensor]] | None = None,
        block: int = 0,
    ) -> Tensor:
        config = self.config
        q = self.q_lif(self.q_norm(self.q_proj(x)))
        k = self.k_lif(self.k_norm(self.k_proj(x)))
        v = self.v_lif(self.v_norm(self.v_proj(x)))

        if taps is not None:
            taps.append((f"block{block}.q", q))
            taps.append((f"block{block}.k", k))

        if self.ecp is not None:
            mask_q, mask_k = self.ecp.token_masks(q.data, k.data)
            # Masks are (T, B, N); broadcast over features.  They are data,
            # not graph nodes: ECP-aware training backpropagates only through
            # the surviving rows (straight-through pruning).
            q = q * as_tensor(mask_q[..., None])
            k = k * as_tensor(mask_k[..., None])

        qh = split_heads(q, config.num_heads)
        kh = split_heads(k, config.num_heads)
        vh = split_heads(v, config.num_heads)

        if recorder is not None:
            recorder.add_matmul(block, "proj_q", x.data, (config.embed_dim, config.embed_dim))
            recorder.add_matmul(block, "proj_k", x.data, (config.embed_dim, config.embed_dim))
            recorder.add_matmul(block, "proj_v", x.data, (config.embed_dim, config.embed_dim))
            recorder.add_attention(block, qh.data, kh.data, vh.data)

        scores = (qh @ kh.swapaxes(-1, -2)) * config.attn_scale   # (T,B,H,N,N)
        out = scores @ vh                                         # (T,B,H,N,d)
        merged = merge_heads(out)
        o_temp = self.attn_lif(self.attn_norm(merged))

        if taps is not None:
            taps.append((f"block{block}.otemp", o_temp))
        if recorder is not None:
            recorder.add_matmul(
                block, "proj_o", o_temp.data, (config.embed_dim, config.embed_dim)
            )
        return self.o_proj(o_temp)
