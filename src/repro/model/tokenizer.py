"""Spiking tokenizers: raw input → binary token tensor ``(T, B, N, D)``.

Fig. 2: the tokenizer transforms a static image or DVS stream
``I ∈ R^{T×C×H×W}`` into ``I' ∈ R^{T×N×D}`` — N D-dimensional spiking tokens
per time point.  Following Spikformer it is a stack of CONV+BN+LIF stages
finishing with a patch-sized strided convolution; the sequence variant (used
for Google Speech Commands-style inputs) replaces convolutions with a linear
patch embedding.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, ModuleList, Parameter, Tensor
from ..snn import LIF, TimeBatchNorm, TimeConv2d, TimeLinear
from .config import SpikingTransformerConfig

__all__ = ["ChannelBatchNorm", "SpikingImageTokenizer", "SpikingSequenceTokenizer", "build_tokenizer"]


class ChannelBatchNorm(Module):
    """BatchNorm over the channel axis of a ``(T, B, C, H, W)`` tensor."""

    def __init__(self, num_channels: int):
        super().__init__()
        self.norm = TimeBatchNorm(num_channels)

    def forward(self, x: Tensor) -> Tensor:
        moved = x.transpose(0, 1, 3, 4, 2)      # (T, B, H, W, C)
        self.norm.training = self.training
        normed = self.norm(moved)
        return normed.transpose(0, 1, 4, 2, 3)  # back to (T, B, C, H, W)


class SpikingImageTokenizer(Module):
    """CONV+BN+LIF stages ending in a patch projection (image/event inputs).

    ``tokenizer_depth == 1`` uses only the strided patch convolution;
    ``tokenizer_depth >= 2`` prepends 3×3 CONV+BN+LIF feature extractors, as
    in Spikformer's Spiking Patch Splitting module.
    """

    def __init__(self, config: SpikingTransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        channels = config.in_channels
        self.pre_convs = ModuleList()
        self.pre_norms = ModuleList()
        self.pre_lifs = ModuleList()
        hidden = max(config.embed_dim // 4, 8)
        for _ in range(max(config.tokenizer_depth - 1, 0)):
            self.pre_convs.append(
                TimeConv2d(channels, hidden, kernel_size=3, rng=rng, stride=1, padding=1)
            )
            self.pre_norms.append(ChannelBatchNorm(hidden))
            self.pre_lifs.append(
                LIF(config.v_threshold, config.v_leak, config.surrogate)
            )
            channels = hidden
        self.patch_conv = TimeConv2d(
            channels,
            config.embed_dim,
            kernel_size=config.patch_size,
            rng=rng,
            stride=config.patch_size,
        )
        self.patch_norm = ChannelBatchNorm(config.embed_dim)
        # Learned positional current (Spikformer carries position through a
        # conv-based RPE stage; an additive per-token current is the
        # equivalent for this layout).  Without it, attention + global
        # pooling are permutation-invariant and spatial classes collapse.
        self.positional = Parameter(
            rng.normal(0.0, 0.3, size=(1, 1, config.num_tokens, config.embed_dim))
        )
        self.patch_lif = LIF(config.v_threshold, config.v_leak, config.surrogate)

    def forward(self, x: Tensor) -> Tensor:
        """``(T, B, C, H, W)`` analog or event input → ``(T, B, N, D)`` spikes."""
        for conv, norm, lif in zip(self.pre_convs, self.pre_norms, self.pre_lifs):
            x = lif(norm(conv(x)))
        current = self.patch_norm(self.patch_conv(x))
        t, b, d, h, w = current.shape
        tokens = current.reshape(t, b, d, h * w).transpose(0, 1, 3, 2)
        return self.patch_lif(tokens + self.positional)  # (T, B, N, D)


class SpikingSequenceTokenizer(Module):
    """Linear patch embedding + BN + LIF for pre-tokenized sequence inputs.

    Input shape ``(T, B, N, F_in)`` (e.g. spectrogram frames as tokens);
    output ``(T, B, N, D)`` binary spikes.
    """

    def __init__(self, config: SpikingTransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.embed = TimeLinear(config.sequence_features, config.embed_dim, rng)
        self.norm = TimeBatchNorm(config.embed_dim)
        self.positional = Parameter(
            rng.normal(0.0, 0.3, size=(1, 1, config.num_tokens, config.embed_dim))
        )
        self.lif = LIF(config.v_threshold, config.v_leak, config.surrogate)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.config.sequence_features:
            raise ValueError(
                f"expected {self.config.sequence_features} input features, got {x.shape[-1]}"
            )
        return self.lif(self.norm(self.embed(x)) + self.positional)


def build_tokenizer(config: SpikingTransformerConfig, rng: np.random.Generator) -> Module:
    """Pick the tokenizer matching ``config.input_kind``."""
    if config.input_kind in ("image", "event"):
        return SpikingImageTokenizer(config, rng)
    return SpikingSequenceTokenizer(config, rng)
