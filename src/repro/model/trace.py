"""Workload tracing: capture the spike tensors the accelerator will process.

Running a trained model over an input with a :class:`TraceRecorder` attached
yields, for every MLP / projection / attention layer, the *actual* binary
activation tensors (for batch sample 0, matching the paper's single-image
inference evaluation).  The Bishop and PTB simulators consume this
:class:`ModelTrace` — latency and energy are therefore driven by real firing
patterns, not synthetic densities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LayerRecord", "TraceRecorder", "ModelTrace", "MATMUL_KINDS", "PHASE_OF_KIND"]

# Layer kinds that are plain spike × multi-bit-weight matmuls, mapped onto the
# dense + sparse TTB cores.
MATMUL_KINDS = ("proj_q", "proj_k", "proj_v", "proj_o", "mlp1", "mlp2")

# Fig.-11 phase labels: P1 = Q/K/V projections, ATN = spiking self-attention,
# P2 = output projection, MLP = the MLP block.
PHASE_OF_KIND = {
    "proj_q": "P1",
    "proj_k": "P1",
    "proj_v": "P1",
    "attention": "ATN",
    "proj_o": "P2",
    "mlp1": "MLP",
    "mlp2": "MLP",
}


@dataclass
class LayerRecord:
    """One layer's workload, extracted from a live forward pass."""

    block: int                       # encoder block index; -1 for tokenizer/head
    kind: str                        # proj_q/.../attention/mlp1/mlp2/tokenizer/head
    input_spikes: np.ndarray | None  # (T, N, D_in) binary input to the matmul
    weight_shape: tuple[int, int] | None  # (D_in, D_out)
    # Attention-only payloads, all binary, shape (T, H, N, head_dim):
    q: np.ndarray | None = None
    k: np.ndarray | None = None
    v: np.ndarray | None = None

    @property
    def phase(self) -> str:
        return PHASE_OF_KIND.get(self.kind, self.kind)

    @property
    def is_matmul(self) -> bool:
        return self.kind in MATMUL_KINDS

    def macs(self) -> int:
        """Multiply-accumulate count of this layer (dense equivalent)."""
        if self.is_matmul:
            t, n, d_in = self.input_spikes.shape
            return t * n * d_in * self.weight_shape[1]
        if self.kind == "attention":
            t, h, n, d = self.q.shape
            return 2 * t * h * n * n * d  # S = QK^T plus Y = SV
        return 0


class TraceRecorder:
    """Collects :class:`LayerRecord` objects during a forward pass.

    ``sample`` selects which batch element is traced.
    """

    def __init__(self, sample: int = 0):
        self.sample = sample
        self.records: list[LayerRecord] = []

    def add_matmul(
        self, block: int, kind: str, input_spikes: np.ndarray, weight_shape: tuple[int, int]
    ) -> None:
        self.records.append(
            LayerRecord(
                block=block,
                kind=kind,
                input_spikes=np.asarray(input_spikes[:, self.sample]),
                weight_shape=tuple(weight_shape),
            )
        )

    def add_attention(
        self, block: int, q: np.ndarray, k: np.ndarray, v: np.ndarray
    ) -> None:
        self.records.append(
            LayerRecord(
                block=block,
                kind="attention",
                input_spikes=None,
                weight_shape=None,
                q=np.asarray(q[:, self.sample]),
                k=np.asarray(k[:, self.sample]),
                v=np.asarray(v[:, self.sample]),
            )
        )


@dataclass
class ModelTrace:
    """The full per-layer workload of one inference."""

    model_name: str
    timesteps: int
    num_tokens: int
    embed_dim: int
    records: list[LayerRecord] = field(default_factory=list)

    def layers(self, kind: str | None = None, block: int | None = None) -> list[LayerRecord]:
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if block is not None:
            out = [r for r in out if r.block == block]
        return out

    @property
    def num_blocks(self) -> int:
        return 1 + max((r.block for r in self.records), default=-1)

    def total_macs(self) -> int:
        return sum(record.macs() for record in self.records)

    def average_spike_density(self) -> float:
        """Mean firing density over all matmul-layer inputs."""
        total, active = 0, 0.0
        for record in self.records:
            if record.input_spikes is not None:
                total += record.input_spikes.size
                active += float(record.input_spikes.sum())
        return active / total if total else 0.0
