"""Model checkpointing: save/load trained spiking transformers as ``.npz``.

Stores the parameter state dict plus the architecture config, so a model can
be rebuilt and reloaded without re-specifying anything.  BatchNorm running
statistics are included (they matter at inference).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..snn import TimeBatchNorm
from .config import SpikingTransformerConfig
from .transformer import SpikingTransformer

__all__ = ["save_model", "load_model"]

_CONFIG_KEY = "__config_json__"
_RUNNING_PREFIX = "__running__"


def _batchnorm_modules(model: SpikingTransformer) -> list[tuple[str, TimeBatchNorm]]:
    out = []

    def visit(module, prefix: str) -> None:
        for name, value in vars(module).items():
            if isinstance(value, TimeBatchNorm):
                out.append((f"{prefix}{name}", value))
            if hasattr(value, "forward") and hasattr(value, "training"):
                visit(value, f"{prefix}{name}.")

    visit(model, "")
    return out


def save_model(model: SpikingTransformer, path: str | Path) -> Path:
    """Serialize ``model`` (parameters + BN stats + config) to ``path``."""
    path = Path(path)
    payload: dict[str, np.ndarray] = dict(model.state_dict())
    for name, norm in _batchnorm_modules(model):
        payload[f"{_RUNNING_PREFIX}{name}.mean"] = norm.running_mean
        payload[f"{_RUNNING_PREFIX}{name}.var"] = norm.running_var
    config_json = json.dumps(dataclasses.asdict(model.config))
    payload[_CONFIG_KEY] = np.frombuffer(config_json.encode(), dtype=np.uint8)
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model(path: str | Path, seed: int = 0) -> SpikingTransformer:
    """Rebuild a model saved by :func:`save_model`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        config_bytes = archive[_CONFIG_KEY].tobytes()
        config = SpikingTransformerConfig(**json.loads(config_bytes))
        model = SpikingTransformer(config, seed=seed)
        state = {
            key: archive[key]
            for key in archive.files
            if key != _CONFIG_KEY and not key.startswith(_RUNNING_PREFIX)
        }
        model.load_state_dict(state)
        norms = dict(_batchnorm_modules(model))
        for key in archive.files:
            if not key.startswith(_RUNNING_PREFIX):
                continue
            stripped = key[len(_RUNNING_PREFIX):]
            module_name, stat = stripped.rsplit(".", 1)
            norm = norms[module_name]
            if stat == "mean":
                norm.running_mean = archive[key].copy()
            else:
                norm.running_var = archive[key].copy()
    return model
