"""Spiking transformer models (systems S3-S4): the paper's workload."""

from .attention import SpikingSelfAttention, merge_heads, split_heads
from .config import MODEL_ZOO, SpikingTransformerConfig, model_config, tiny_config
from .flops import FlopsProfile, flops_breakdown
from .mlp import SpikingMLP
from .serialize import load_model, save_model
from .tokenizer import SpikingImageTokenizer, SpikingSequenceTokenizer, build_tokenizer
from .trace import MATMUL_KINDS, PHASE_OF_KIND, LayerRecord, ModelTrace, TraceRecorder
from .transformer import EncoderBlock, SpikingTransformer

__all__ = [
    "SpikingTransformerConfig",
    "MODEL_ZOO",
    "model_config",
    "tiny_config",
    "SpikingTransformer",
    "EncoderBlock",
    "SpikingSelfAttention",
    "SpikingMLP",
    "split_heads",
    "merge_heads",
    "SpikingImageTokenizer",
    "SpikingSequenceTokenizer",
    "build_tokenizer",
    "FlopsProfile",
    "flops_breakdown",
    "ModelTrace",
    "LayerRecord",
    "TraceRecorder",
    "MATMUL_KINDS",
    "PHASE_OF_KIND",
    "save_model",
    "load_model",
]
