"""The end-to-end spiking transformer (Fig. 2).

``L`` residual encoder blocks (SSA + spiking MLP) over tokenized spikes,
followed by global average pooling across all tokens and time points and a
linear classification head.

Residual connections are realized in the *current* (membrane) domain:
``x_next = LIF(BN(sub_block_current) + x)``, where the binary ``x`` acts as a
unit synaptic current.  This keeps every tensor entering a weight matrix
binary — the property Bishop's multiplier-less cores rely on — and matches
the paper's repositioning of LIF layers ahead of linear projections.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, ModuleList, Tensor, as_tensor, init_rng, no_grad
from ..snn import LIF, TimeBatchNorm, TimeLinear
from .attention import SpikingSelfAttention
from .config import SpikingTransformerConfig
from .mlp import SpikingMLP
from .tokenizer import build_tokenizer
from .trace import ModelTrace, TraceRecorder

__all__ = ["EncoderBlock", "SpikingTransformer"]


class EncoderBlock(Module):
    """One residual encoder block: SSA sub-block then MLP sub-block."""

    def __init__(self, config: SpikingTransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.ssa = SpikingSelfAttention(config, rng)
        self.attn_out_norm = TimeBatchNorm(config.embed_dim)
        self.attn_out_lif = LIF(config.v_threshold, config.v_leak, config.surrogate)
        self.mlp = SpikingMLP(config, rng)
        self.mlp_out_norm = TimeBatchNorm(config.embed_dim)
        self.mlp_out_lif = LIF(config.v_threshold, config.v_leak, config.surrogate)

    def forward(
        self,
        x: Tensor,
        recorder: TraceRecorder | None = None,
        taps: list[tuple[str, Tensor]] | None = None,
        block: int = 0,
    ) -> Tensor:
        if taps is not None:
            taps.append((f"block{block}.input", x))
        attn_current = self.ssa(x, recorder=recorder, taps=taps, block=block)
        x = self.attn_out_lif(self.attn_out_norm(attn_current) + x)
        if taps is not None:
            taps.append((f"block{block}.mlp_input", x))
        mlp_current = self.mlp(x, recorder=recorder, taps=taps, block=block)
        x = self.mlp_out_lif(self.mlp_out_norm(mlp_current) + x)
        return x


class SpikingTransformer(Module):
    """Spiking vision/sequence transformer with multi-head SSA.

    Parameters
    ----------
    config:
        Architecture description (see :data:`repro.model.MODEL_ZOO`).
    seed:
        Parameter-initialization seed (reproducible runs).
    """

    def __init__(self, config: SpikingTransformerConfig, seed: int = 0):
        super().__init__()
        rng = init_rng(seed)
        self.config = config
        self.tokenizer = build_tokenizer(config, rng)
        self.blocks = ModuleList(
            [EncoderBlock(config, rng) for _ in range(config.num_blocks)]
        )
        self.head = TimeLinear(config.embed_dim, config.num_classes, rng)

    # ------------------------------------------------------------------
    def forward(
        self,
        x,
        recorder: TraceRecorder | None = None,
        taps: list[tuple[str, Tensor]] | None = None,
    ) -> Tensor:
        """``x``: ``(T, B, C, H, W)`` for image/event input, or
        ``(T, B, N, F_in)`` for sequence input.  Returns ``(B, classes)``
        logits."""
        tokens = self.tokenizer(as_tensor(x))
        expected = (self.config.num_tokens, self.config.embed_dim)
        if tokens.shape[2:] != expected:
            raise ValueError(
                f"tokenizer produced {tokens.shape[2:]}, expected {expected}"
            )
        if taps is not None:
            taps.append(("tokenizer.output", tokens))
        for index, block in enumerate(self.blocks):
            tokens = block(tokens, recorder=recorder, taps=taps, block=index)
        pooled = tokens.mean(axis=(0, 2))  # average over time and tokens
        return self.head(pooled)

    # ------------------------------------------------------------------
    def trace(self, x, sample: int = 0) -> ModelTrace:
        """Run inference and capture the accelerator-facing workload.

        Uses eval mode and no gradient recording; restores training mode.
        """
        recorder = TraceRecorder(sample=sample)
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                self.forward(x, recorder=recorder)
        finally:
            self.train(was_training)
        return ModelTrace(
            model_name=self.config.name,
            timesteps=self.config.timesteps,
            num_tokens=self.config.num_tokens,
            embed_dim=self.config.embed_dim,
            records=recorder.records,
        )

    def attention_modules(self) -> list[SpikingSelfAttention]:
        """The SSA module of every encoder block (used to attach ECP)."""
        return [block.ssa for block in self.blocks]
