"""Complexity / workload profiling of spiking transformers (Sec. 2.2, Fig. 3).

FLOP counts per component (one inference):

* MLP + projection layers: ``O(T·N·D²)`` — 4 projections of ``D×D`` plus two
  MLP matmuls of ``D×rD``.
* Attention layers: ``O(T·N²·D)`` — ``S = Q·K^T`` and ``Y = S·V``.
* LIF layers: ``O(T·N·D)`` (non-dominant).
* Tokenizer: ``O(T·H·W·C²·K²)`` (handled by spiking-CNN accelerators; kept
  for breakdown completeness).

Fig. 3's observation — attention dominance grows with N, cumulative
attention+MLP share between ~66% and ~91% — is reproduced by
:func:`flops_breakdown` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import SpikingTransformerConfig

__all__ = ["FlopsProfile", "flops_breakdown"]


@dataclass(frozen=True)
class FlopsProfile:
    """Per-component FLOPs of one inference (multiply-accumulate = 2 FLOPs)."""

    tokenizer: float
    projections: float   # Q, K, V, O linear layers (all blocks)
    attention: float     # QK^T and SV (all blocks)
    mlp: float           # both MLP matmuls (all blocks)
    lif: float           # neuron updates
    head: float

    @property
    def total(self) -> float:
        return (
            self.tokenizer + self.projections + self.attention + self.mlp
            + self.lif + self.head
        )

    @property
    def attention_fraction(self) -> float:
        return self.attention / self.total

    @property
    def mlp_fraction(self) -> float:
        return self.mlp / self.total

    @property
    def attention_plus_mlp_fraction(self) -> float:
        """The Fig.-3 cumulative share (66.5%-91.0% in the paper's sweep)."""
        return (self.attention + self.mlp) / self.total

    def as_dict(self) -> dict[str, float]:
        return {
            "tokenizer": self.tokenizer,
            "projections": self.projections,
            "attention": self.attention,
            "mlp": self.mlp,
            "lif": self.lif,
            "head": self.head,
        }


def flops_breakdown(config: SpikingTransformerConfig) -> FlopsProfile:
    """Analytic FLOPs profile of ``config`` (dense operation counts)."""
    t, n, d = config.timesteps, config.num_tokens, config.embed_dim
    blocks = config.num_blocks
    hidden = config.hidden_dim

    projections = blocks * 4 * (2.0 * t * n * d * d)
    attention = blocks * 2 * (2.0 * t * n * n * d)
    mlp = blocks * 2 * (2.0 * t * n * d * hidden)
    # LIF updates: one add + one compare per neuron per step; six D-wide LIF
    # layers (Q/K/V/otemp + two residual merges) and one hidden-wide per block.
    lif = blocks * (6 * (2.0 * t * n * d) + (2.0 * t * n * hidden)) / 2

    if config.input_kind in ("image", "event"):
        h = w = config.image_size
        c = config.in_channels
        k = config.patch_size
        # Pre-conv stages (3x3, stride 1) + patch conv (k x k, stride k).
        hidden_ch = max(d // 4, 8)
        pre = 0.0
        ch_in = c
        for _ in range(max(config.tokenizer_depth - 1, 0)):
            pre += 2.0 * t * h * w * ch_in * hidden_ch * 9
            ch_in = hidden_ch
        patch = 2.0 * t * (h // k) * (w // k) * ch_in * d * k * k
        tokenizer = pre + patch
    else:
        tokenizer = 2.0 * t * n * config.sequence_features * d

    head = 2.0 * d * config.num_classes
    return FlopsProfile(
        tokenizer=tokenizer,
        projections=projections,
        attention=attention,
        mlp=mlp,
        lif=lif,
        head=head,
    )
