"""Bishop (ISCA 2025) reproduction: sparsified bundling spiking transformers
on heterogeneous cores with error-constrained pruning.

Subpackages
-----------
autograd
    NumPy reverse-mode autodiff with surrogate-gradient support.
snn
    LIF neurons, spike encoders, spiking layers.
model
    Spiking transformer (tokenizer, SSA, MLP) and the Table-2 model zoo.
bundles
    Token-Time Bundle (TTB) partitioning, tags, and statistics.
algo
    Bundle-Sparsity-Aware training (BSA) and Error-Constrained Pruning (ECP).
train
    Synthetic datasets, training loop, metrics.
arch
    The Bishop accelerator simulator (stratifier, dense/sparse/attention
    cores, spike generator, memory hierarchy, energy model) and the
    discrete-event engine modelling the cores as contended resources
    (``arch.engine``, docs/ARCHITECTURE.md).
serve
    Multi-request serving simulation on the event engine: Poisson/bursty
    arrival streams, batch/queue schedulers, latency-percentile reports.
cluster
    Multi-chip fleets behind a front-end router: chip kinds and model
    placement, routing policies, admission control, reactive autoscaling
    (docs/CLUSTER.md).
dse
    Design-space exploration: a typed parameter-space DSL over
    ``BishopConfig``, pluggable multi-objective search strategies, and
    Pareto-frontier extraction with cluster chip-kind export
    (docs/DSE.md).
baselines
    PTB systolic accelerator and edge-GPU roofline comparators.
harness
    Experiment registry regenerating every table and figure of the paper.
runtime
    Parallel experiment executor with content-addressed result caching
    and the JSON artifact store behind ``repro run-all`` / ``repro sweep``.
"""

__version__ = "1.0.0"
