"""Offline trace analysis: critical paths, self-time rollups, diffs.

Three questions this module answers about a finished run:

1. **What bounds the makespan?**  :func:`critical_path` walks an
   :class:`~repro.arch.engine.timeline.EngineRun` timeline *backward*
   from the makespan, at each point jumping to a resource hold that was
   still busy — producing a chain of (resource, interval) segments that
   tile ``[0, makespan]`` exactly.  Segment durations therefore sum to
   the makespan to machine precision (an acceptance criterion, tested
   across the model zoo in both engine modes), and grouping segments by
   resource yields *blocking attribution*: the share of end-to-end time
   each resource was the binding constraint — Bishop's contention
   argument, computed from telemetry instead of asserted.
2. **Where did the wall-clock go?**  :func:`self_time` reconstructs the
   span tree of a Chrome trace and charges each span its *self* time
   (duration minus children), rolled up per span name.
3. **What changed?**  :func:`diff_traces` joins two self-time rollups
   by span name and ranks the deltas, localizing a ``repro bench
   --compare`` regression to the spans that actually slowed down.

Everything duck-types via :func:`repro.obs.convert._get`: live
``EngineRun``/``TimelineEntry`` objects, their ``to_dict`` payloads,
full experiment artifacts, and raw ``{"traceEvents": [...]}`` documents
all work.  No engine imports here — the engine imports :mod:`repro.obs`,
so this module stays one-way downstream of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .convert import _get

__all__ = [
    "CriticalPath",
    "PathSegment",
    "critical_path",
    "critical_path_trace",
    "diff_traces",
    "find_timelines",
    "self_time",
]

#: Pseudo-resource for intervals no timeline entry covers (dependency
#: stalls / inter-batch gaps).  Real engine runs are work-conserving, so
#: idle segments flag modeling gaps rather than normal behavior.
IDLE = "(idle)"


@dataclass(frozen=True)
class PathSegment:
    """One hop of the critical path: ``resource`` binding over an interval."""

    resource: str
    label: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "resource": self.resource,
            "label": self.label,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class CriticalPath:
    """The extracted path plus per-resource blocking attribution."""

    makespan_s: float
    segments: tuple[PathSegment, ...]

    @property
    def total_s(self) -> float:
        """Sum of segment durations — equals ``makespan_s`` exactly."""
        return math.fsum(seg.duration_s for seg in self.segments)

    def blocking_s(self) -> dict[str, float]:
        """Per-resource time on the path (includes ``(idle)`` if any)."""
        totals: dict[str, list[float]] = {}
        for seg in self.segments:
            totals.setdefault(seg.resource, []).append(seg.duration_s)
        return {name: math.fsum(parts) for name, parts in sorted(totals.items())}

    def blocking_shares(self) -> dict[str, float]:
        """Blocking attribution normalized to sum to 1 (empty path: {})."""
        totals = self.blocking_s()
        denom = math.fsum(totals.values())
        if denom <= 0.0:
            return {}
        return {name: value / denom for name, value in totals.items()}

    def to_dict(self) -> dict:
        shares = self.blocking_shares()
        return {
            "makespan_s": self.makespan_s,
            "path_total_s": self.total_s,
            "segments": [seg.to_dict() for seg in self.segments],
            "blocking_s": self.blocking_s(),
            "blocking_shares": shares,
        }


def _sweep(entries, makespan_s: float, pick) -> CriticalPath:
    """The shared backward sweep.

    From ``t = makespan`` walk toward 0: among entries covering ``t``
    (``start_s < t`` and ``end_s >= t - tol``) let ``pick`` choose the
    binding one, emit the segment ``[entry.start_s, t]``, and continue
    from the entry's start.  When nothing covers ``t`` the gap down to
    the latest earlier completion becomes an :data:`IDLE` segment.
    Segments telescope — each starts exactly where the next (in time)
    begins — so their durations sum to the makespan by construction.
    """
    if makespan_s <= 0.0:
        return CriticalPath(makespan_s=max(makespan_s, 0.0), segments=())
    tol = 1e-12 * max(makespan_s, 1.0)
    segments: list[PathSegment] = []
    t = makespan_s
    while t > tol:
        covering = [
            e for e in entries
            if e["start_s"] < t - tol and e["end_s"] >= t - tol
        ]
        if covering:
            entry = pick(covering)
            start = max(entry["start_s"], 0.0)
            segments.append(PathSegment(
                resource=entry["resource"],
                label=entry["label"],
                start_s=start,
                end_s=t,
            ))
            t = start
        else:
            earlier_ends = [e["end_s"] for e in entries if e["end_s"] < t - tol]
            start = max(earlier_ends, default=0.0)
            start = max(start, 0.0)
            segments.append(PathSegment(
                resource=IDLE, label=IDLE, start_s=start, end_s=t,
            ))
            t = start
    if segments:
        # Pin the endpoints so the telescoping sum equals the makespan
        # bit-for-bit: first hop ends at the makespan, last starts at 0.
        first = segments[0]
        segments[0] = PathSegment(
            first.resource, first.label, first.start_s, makespan_s
        )
        last = segments[-1]
        if last.start_s <= tol:
            segments[-1] = PathSegment(
                last.resource, last.label, 0.0, last.end_s
            )
    segments.reverse()
    return CriticalPath(makespan_s=makespan_s, segments=tuple(segments))


def _normalize_entries(timeline) -> list[dict]:
    rows = []
    for entry in timeline or []:
        start_s = float(_get(entry, "start_s", 0.0))
        end_s = float(_get(entry, "end_s", start_s))
        if end_s <= start_s:       # zero-width entries can never bind
            continue
        rows.append({
            "resource": str(_get(entry, "resource", "?")),
            "label": str(_get(entry, "label", "busy")),
            "start_s": start_s,
            "end_s": end_s,
        })
    return rows


def critical_path(run_or_timeline, makespan_s: float | None = None) -> CriticalPath:
    """Extract the binding-resource chain from an engine run timeline.

    Accepts an ``EngineRun``, its ``to_dict`` payload, or a bare
    timeline list (then ``makespan_s`` defaults to the latest entry
    end).  Tie-break among covering holds: earliest start (the hold
    that has been blocking longest), then resource name — deterministic
    for equal inputs.
    """
    timeline = _get(run_or_timeline, "timeline", run_or_timeline)
    entries = _normalize_entries(timeline)
    if makespan_s is None:
        declared = _get(run_or_timeline, "makespan_s")
        if declared is not None:
            makespan_s = float(declared)
        else:
            makespan_s = max((e["end_s"] for e in entries), default=0.0)

    def pick(covering: list[dict]) -> dict:
        return min(covering, key=lambda e: (e["start_s"], e["resource"]))

    return _sweep(entries, makespan_s, pick)


def critical_path_trace(doc: dict) -> CriticalPath:
    """Critical path over a Chrome trace document's wall-clock spans.

    Spans nest, so each span is first flattened to its *self-time*
    intervals (its extent minus its children's) — the instants where it,
    not a callee, was the innermost frame.  Sweeping those flat pieces
    attributes every point of the trace to the deepest active span;
    keeping the whole spans instead would degenerate the path to the
    root.  Tracks are labeled ``resource = "pid/tid"`` (thread names
    substituted when metadata is present), and time is rebased so the
    earliest span starts at 0.
    """
    spans, names = _trace_spans(doc)
    if not spans:
        return CriticalPath(makespan_s=0.0, segments=())
    base = min(s["ts"] for s in spans)
    children: dict[int, list[dict]] = {}
    for s in spans:
        parent = s.get("_parent")
        if parent is not None:
            children.setdefault(id(parent), []).append(s)
    entries = []
    for s in spans:
        track = names.get((s["pid"], s["tid"]), f"{s['pid']}/{s['tid']}")
        # Self intervals: the span's extent minus its (non-overlapping,
        # time-sorted) children — the stack reconstruction guarantees
        # siblings never overlap within a track.
        cursor = s["ts"]
        pieces = []
        for child in sorted(children.get(id(s), ()), key=lambda c: c["ts"]):
            pieces.append((cursor, min(child["ts"], s["ts"] + s["dur"])))
            cursor = max(cursor, child["ts"] + child["dur"])
        pieces.append((cursor, s["ts"] + s["dur"]))
        for piece_start, piece_end in pieces:
            start_s = (piece_start - base) / 1e6
            end_s = (piece_end - base) / 1e6
            if end_s <= start_s:
                continue
            entries.append({
                "resource": track,
                "label": str(s.get("name", "span")),
                "start_s": start_s,
                "end_s": end_s,
                "_depth": s.get("_depth", 0),
            })
    makespan_s = max((e["end_s"] for e in entries), default=0.0)

    def pick(covering: list[dict]) -> dict:
        return max(
            covering,
            key=lambda e: (e["_depth"], e["start_s"], e["resource"]),
        )

    return _sweep(entries, makespan_s, pick)


# -- span-tree self time ---------------------------------------------------

def _trace_spans(doc: dict) -> tuple[list[dict], dict]:
    """Complete (``ph: "X"``) events + ``(pid, tid) -> track name`` map.

    Depth is reconstructed per track with an interval stack (events
    sorted by start, longest-first on ties), annotated as ``_depth``.
    """
    events = doc.get("traceEvents", []) if isinstance(doc, dict) else []
    names: dict[tuple, str] = {}
    process: dict[int, str] = {}
    spans = []
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            args = event.get("args") or {}
            if event.get("name") == "thread_name" and "name" in args:
                names[(event.get("pid"), event.get("tid"))] = str(args["name"])
            elif event.get("name") == "process_name" and "name" in args:
                process[event.get("pid")] = str(args["name"])
        elif ph == "X":
            spans.append({
                "name": event.get("name", "span"),
                "pid": event.get("pid", 0),
                "tid": event.get("tid", 0),
                "ts": float(event.get("ts", 0.0)),
                "dur": float(event.get("dur", 0.0)),
            })
    for key in list(names):
        pid = key[0]
        if pid in process:
            names[key] = f"{process[pid]}:{names[key]}"
    # Reconstruct nesting depth per (pid, tid) track.
    by_track: dict[tuple, list[dict]] = {}
    for span in spans:
        by_track.setdefault((span["pid"], span["tid"]), []).append(span)
    for track_spans in by_track.values():
        track_spans.sort(key=lambda s: (s["ts"], -s["dur"]))
        stack: list[dict] = []
        for span in track_spans:
            while stack and span["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            span["_depth"] = len(stack)
            span["_parent"] = stack[-1] if stack else None
            stack.append(span)
    return spans, names


def self_time(doc: dict) -> list[dict]:
    """Per-span-name rollup of total and *self* wall-clock time.

    Self time charges each span its duration minus its children's, so
    the rollup sums to the trace's busy time without double-counting
    nested spans.  Rows are sorted by self time, descending.
    """
    spans, _ = _trace_spans(doc)
    for span in spans:
        span["_child_us"] = 0.0
    for span in spans:
        parent = span.get("_parent")
        if parent is not None:
            parent["_child_us"] += span["dur"]
    rollup: dict[str, dict] = {}
    for span in spans:
        row = rollup.setdefault(
            span["name"], {"name": span["name"], "count": 0,
                           "total_us": 0.0, "self_us": 0.0},
        )
        row["count"] += 1
        row["total_us"] += span["dur"]
        row["self_us"] += max(span["dur"] - span["_child_us"], 0.0)
    return sorted(
        rollup.values(), key=lambda r: (-r["self_us"], r["name"]),
    )


def diff_traces(old_doc: dict, new_doc: dict) -> list[dict]:
    """Join two self-time rollups by span name, ranked by |self delta|.

    The output localizes a bench regression: each row carries old/new
    self and total times, the deltas, and a status (``added`` /
    ``removed`` / ``changed``).
    """
    old_rows = {row["name"]: row for row in self_time(old_doc)}
    new_rows = {row["name"]: row for row in self_time(new_doc)}
    diff = []
    for name in sorted(set(old_rows) | set(new_rows)):
        old = old_rows.get(name)
        new = new_rows.get(name)
        old_self = old["self_us"] if old else 0.0
        new_self = new["self_us"] if new else 0.0
        old_total = old["total_us"] if old else 0.0
        new_total = new["total_us"] if new else 0.0
        diff.append({
            "name": name,
            "status": (
                "added" if old is None
                else "removed" if new is None
                else "changed"
            ),
            "old_self_us": old_self,
            "new_self_us": new_self,
            "delta_self_us": new_self - old_self,
            "old_total_us": old_total,
            "new_total_us": new_total,
            "delta_total_us": new_total - old_total,
        })
    diff.sort(key=lambda r: (-abs(r["delta_self_us"]), r["name"]))
    return diff


# -- artifact walking ------------------------------------------------------

def find_timelines(payload) -> list[tuple[str, dict]]:
    """``(label, sub-payload-with-timeline)`` pairs in an artifact.

    Mirrors :func:`repro.obs.convert.result_events`: top level and one
    level down.
    """
    if not isinstance(payload, dict):
        return []
    found = []
    if isinstance(payload.get("timeline"), list) and payload["timeline"]:
        found.append(("result", payload))
    for key, value in payload.items():
        if (
            isinstance(value, dict)
            and isinstance(value.get("timeline"), list)
            and value["timeline"]
        ):
            found.append((str(key), value))
    return found
