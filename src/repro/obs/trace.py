"""Tracing spans: nestable, thread-safe, Perfetto-exportable.

The tracer records *spans* — named intervals with monotonic timestamps,
a category, key/value attributes, and an explicit parent — into an
in-memory buffer.  A finished buffer serializes to Chrome trace-event
JSON (``{"traceEvents": [...]}``) which https://ui.perfetto.dev and
``chrome://tracing`` load directly.

Design constraints (see docs/OBSERVABILITY.md):

* **Off by default, near-zero disabled overhead.**  ``span(...)`` when
  tracing is disabled returns a single cached null context manager —
  one module-level bool check, no allocation, no timestamp read.
* **Thread-safe.**  Span nesting is tracked per-thread
  (``threading.local``); the finished-span buffer append holds a lock.
* **Process-safe.**  Worker processes enable themselves from the
  ``REPRO_TRACE`` environment variable, record into their own buffer,
  and ship a picklable snapshot back for the parent to :func:`ingest`.
  On Linux ``time.perf_counter_ns`` reads the shared boot-relative
  monotonic clock, so parent and worker timestamps share one timeline.
* **Deterministic structure.**  Span names, categories, nesting, and
  attributes are a pure function of the work performed; only
  timestamps vary between runs (the determinism tests rely on this).

This module is stdlib-only by design — it must be importable from every
layer (runtime, compiler, engine, serve, cluster) without cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Tracer",
    "TRACE_ENV",
    "TRACE_LIMIT_ENV",
    "tracer",
]

TRACE_ENV = "REPRO_TRACE"
TRACE_LIMIT_ENV = "REPRO_TRACE_LIMIT"

_TRUTHY = ("1", "on", "true", "yes")
_FALSY = ("", "0", "off", "false", "no")


def _env_flag(name: str) -> bool:
    """Strictly parse an on/off environment variable.

    Mirrors the ``REPRO_ENGINE`` contract: an unrecognized value raises
    immediately with the accepted spellings, instead of silently falling
    through to the default.
    """
    raw = os.environ.get(name, "")
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ValueError(
        f"{name}={raw!r}: expected one of "
        f"{'|'.join(_TRUTHY)} (on) or {'|'.join(v for v in _FALSY if v)} (off)"
    )


def _env_int(name: str) -> int | None:
    """Strictly parse a non-negative integer environment variable.

    Unset, empty, or ``0`` mean "no limit" (``None``); anything that is
    not a non-negative integer raises, mirroring :func:`_env_flag`.
    """
    raw = os.environ.get(name, "")
    value = raw.strip()
    if not value:
        return None
    try:
        parsed = int(value)
    except ValueError:
        parsed = -1
    if parsed < 0:
        raise ValueError(
            f"{name}={raw!r}: expected a non-negative integer span cap"
            " (0 or unset = unlimited)"
        )
    return parsed or None


class _NullSpan:
    """The disabled-path span: a no-op context manager, cached once."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> None:
        """Attribute setter that drops everything (mirrors _LiveSpan)."""


_NULL_SPAN = _NullSpan()


@dataclass
class SpanRecord:
    """One finished span, as stored in the buffer (picklable)."""

    name: str
    cat: str
    start_ns: int
    end_ns: int
    pid: int
    tid: int
    depth: int
    parent: str | None
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "parent": self.parent,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=payload["name"],
            cat=payload["cat"],
            start_ns=int(payload["start_ns"]),
            end_ns=int(payload["end_ns"]),
            pid=int(payload["pid"]),
            tid=int(payload["tid"]),
            depth=int(payload["depth"]),
            parent=payload.get("parent"),
            args=dict(payload.get("args") or {}),
        )


class _LiveSpan:
    """An open span; closes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start_ns", "_parent", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self.name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        end_ns = time.perf_counter_ns()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._tracer._record(
            SpanRecord(
                name=self.name,
                cat=self.cat,
                start_ns=self._start_ns,
                end_ns=end_ns,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=self._depth,
                parent=self._parent,
                args=self.args,
            )
        )

    def set(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self.args.update(attrs)


class Tracer:
    """Thread-safe span buffer with Chrome trace-event export."""

    def __init__(self):
        self.active = False
        self._lock = threading.Lock()
        self._spans: deque[SpanRecord] = deque()
        self._limit: int | None = None
        self.dropped = 0
        self._local = threading.local()

    # -- per-thread nesting ------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: SpanRecord) -> None:
        overflowed = False
        with self._lock:
            self._spans.append(span)
            if self._limit is not None and len(self._spans) > self._limit:
                self._spans.popleft()          # ring buffer: drop oldest
                self.dropped += 1
                overflowed = True
        if overflowed:
            # Deferred import: metrics imports nothing from here, so the
            # edge stays one-way; guarded so a bare tracer (registry off)
            # still just counts locally.
            try:
                from .metrics import registry
            except ImportError:  # pragma: no cover - stdlib-only fallback
                return
            if registry.active:
                registry.inc("trace.dropped")

    # -- lifecycle ---------------------------------------------------------
    def enable(self) -> None:
        self.active = True

    def disable(self) -> None:
        self.active = False

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
        self.dropped = 0
        self._local = threading.local()

    def set_limit(self, limit: int | None) -> None:
        """Cap the span buffer (``None``/``0`` = unlimited).

        When the buffer is over a newly-set cap, the oldest spans are
        dropped immediately and counted in :attr:`dropped`.
        """
        if limit is not None and limit < 0:
            raise ValueError("trace limit must be non-negative")
        with self._lock:
            self._limit = limit or None
            if self._limit is not None:
                while len(self._spans) > self._limit:
                    self._spans.popleft()
                    self.dropped += 1

    @property
    def limit(self) -> int | None:
        return self._limit

    def enable_from_env(self) -> bool:
        """Enable iff ``REPRO_TRACE`` is set truthy (worker-side hook).

        Also applies the ``REPRO_TRACE_LIMIT`` span cap — parsed
        unconditionally so an invalid value fails fast even when
        tracing stays off.
        """
        limit = _env_int(TRACE_LIMIT_ENV)
        if _env_flag(TRACE_ENV):
            self.active = True
            self.set_limit(limit)
        return self.active

    # -- recording ---------------------------------------------------------
    def span(self, name: str, cat: str = "repro", **attrs):
        """A context manager timing ``name``; no-op while disabled."""
        if not self.active:
            return _NULL_SPAN
        return _LiveSpan(self, name, cat, attrs)

    def instant(self, name: str, cat: str = "repro", **attrs) -> None:
        """A zero-duration marker (rendered as an arrow/tick in Perfetto)."""
        if not self.active:
            return
        now = time.perf_counter_ns()
        stack = self._stack()
        self._record(
            SpanRecord(
                name=name,
                cat=cat,
                start_ns=now,
                end_ns=now,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=len(stack),
                parent=stack[-1] if stack else None,
                args=attrs,
            )
        )

    # -- inspection / transport --------------------------------------------
    @property
    def spans(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def snapshot(self) -> list[dict]:
        """Picklable/JSON-able copy of the buffer (for worker shipping)."""
        return [span.to_dict() for span in self.spans]

    def ingest(self, snapshot: list[dict]) -> int:
        """Merge a worker's :meth:`snapshot` into this buffer."""
        records = [SpanRecord.from_dict(payload) for payload in snapshot]
        with self._lock:
            self._spans.extend(records)
            if self._limit is not None:
                while len(self._spans) > self._limit:
                    self._spans.popleft()
                    self.dropped += 1
        return len(records)

    def structure(self) -> list[tuple]:
        """Timestamp-free view for determinism tests.

        Spans are keyed on ``(name, cat, depth, parent, sorted(args))`` in
        recording order — everything but the clock readings.
        """
        return [
            (
                span.name,
                span.cat,
                span.depth,
                span.parent,
                tuple(sorted(span.args.items())),
            )
            for span in self.spans
        ]

    # -- export ------------------------------------------------------------
    def chrome_events(self) -> list[dict]:
        """The buffer as Chrome trace-event dicts (``ph: "X"`` complete).

        Timestamps are rebased so the earliest span starts at t=0 and
        converted to microseconds (the trace-event unit).
        """
        spans = self.spans
        if not spans:
            return []
        base_ns = min(span.start_ns for span in spans)
        events: list[dict] = []
        seen_threads: set[tuple[int, int]] = set()
        for span in spans:
            if (span.pid, span.tid) not in seen_threads:
                seen_threads.add((span.pid, span.tid))
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": span.pid,
                        "tid": span.tid,
                        "args": {"name": f"thread-{len(seen_threads)}"},
                    }
                )
            event = {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": (span.start_ns - base_ns) / 1000.0,
                "dur": (span.end_ns - span.start_ns) / 1000.0,
                "pid": span.pid,
                "tid": span.tid,
            }
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
        return events

    def chrome_trace(self, extra_events: list[dict] | None = None) -> dict:
        """A complete Perfetto-loadable trace document."""
        events = self.chrome_events()
        pids = sorted({e["pid"] for e in events if "pid" in e})
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro wall-clock (pid {pid})"},
            }
            for pid in pids
        ]
        return {
            "traceEvents": meta + events + list(extra_events or []),
            "displayTimeUnit": "ms",
        }

    def write(self, path, extra_events: list[dict] | None = None) -> dict:
        """Serialize :meth:`chrome_trace` to ``path``; returns the payload."""
        payload = self.chrome_trace(extra_events)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        return payload


#: The process-global tracer every ``obs.span(...)`` call records into.
tracer = Tracer()
