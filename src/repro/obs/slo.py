"""SLO objectives, error budgets, and multi-window burn-rate alerting.

An :class:`SLOObjective` states the contract ("``target`` of requests
finish within ``slo_ms``"); the :class:`SLOMonitor` evaluates it
**streaming** — one :meth:`~SLOMonitor.observe_window` call per
coordination window, fed the window's merged
:class:`~repro.serve.sketch.LatencySketch` as the sharded-cluster
coordinator produces it.  Because sketch merges are exact integer count
addition (associative and commutative), the monitor's cumulative
attainment and end-of-run budget consumption are *identical* to the
post-hoc computation on the fleet's total sketch — streaming costs no
accuracy, which the acceptance tests assert with ``==``.

Alerting follows the multi-window burn-rate recipe (Google SRE
workbook): the **burn rate** over a lookback of K windows is the bad
fraction divided by the budget fraction ``1 - target`` (burn 1.0 =
consuming budget exactly at the sustainable rate), and a
:class:`BurnRateRule` fires when *both* its long and short lookbacks
exceed the threshold — the long window rejects blips, the short window
makes the alert clear quickly once the incident ends.  Firing and
clearing go through a two-threshold :class:`Hysteresis` latch, which is
monotone: a pointwise-higher burn series can only be alerting whenever
a lower one is (a hypothesis-tested property).

Everything here is consumed three ways: live in the coordinator loop
(``repro cluster --slo-ms``), offline over saved window series
(``repro slo <artifact>``), and by the detector rule engine in
:mod:`repro.obs.monitor`, which reuses :class:`AlertEvent` and
:class:`Hysteresis`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "AlertEvent",
    "BurnRateRule",
    "DEFAULT_BURN_RULES",
    "Hysteresis",
    "SLOMonitor",
    "SLOObjective",
    "SLOWindowState",
]


@dataclass(frozen=True)
class AlertEvent:
    """One alert transition: a rule firing or clearing.

    Shared by the burn-rate rules here and the window/registry detectors
    in :mod:`repro.obs.monitor`.  ``window``/``t_s`` locate the
    transition in the windowed run (``None`` for end-of-run registry
    rules); ``value`` and ``threshold`` record what tripped the latch.
    """

    rule: str
    kind: str                      # "fired" | "cleared"
    severity: str                  # "critical" | "warning"
    message: str
    value: float
    threshold: float
    window: int | None = None
    t_s: float | None = None

    def to_dict(self) -> dict:
        payload = {
            "rule": self.rule,
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "value": self.value,
            "threshold": self.threshold,
        }
        if self.window is not None:
            payload["window"] = self.window
        if self.t_s is not None:
            payload["t_s"] = self.t_s
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AlertEvent":
        return cls(
            rule=str(payload["rule"]),
            kind=str(payload["kind"]),
            severity=str(payload.get("severity", "warning")),
            message=str(payload.get("message", "")),
            value=float(payload.get("value", 0.0)),
            threshold=float(payload.get("threshold", 0.0)),
            window=payload.get("window"),
            t_s=payload.get("t_s"),
        )


class Hysteresis:
    """A two-threshold latch: fires at ``value >= fire``, clears below
    ``clear`` (with ``clear <= fire``), holds in between.

    The asymmetric band is what keeps alerts from flapping when the
    signal hovers at the threshold.  The latch is **monotone**: feeding
    a pointwise-greater series can never produce a pointwise-smaller
    active state (inductively: a larger value can only fire earlier and
    clear later) — the hypothesis suite asserts this.
    """

    __slots__ = ("fire", "clear", "active")

    def __init__(self, fire: float, clear: float | None = None):
        clear = fire if clear is None else clear
        if clear > fire:
            raise ValueError(
                f"hysteresis clear level {clear} must be <= fire level {fire}"
            )
        self.fire = float(fire)
        self.clear = float(clear)
        self.active = False

    def update(self, value: float) -> str | None:
        """Advance the latch; returns ``"fired"``/``"cleared"`` on a
        transition, ``None`` otherwise."""
        if not self.active:
            if value >= self.fire:
                self.active = True
                return "fired"
            return None
        if value < self.clear:
            self.active = False
            return "cleared"
        return None


@dataclass(frozen=True)
class SLOObjective:
    """A latency SLO: ``target`` of requests within ``slo_ms``."""

    slo_ms: float
    target: float = 0.99
    name: str = "latency"

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")

    @property
    def slo_s(self) -> float:
        return self.slo_ms * 1e-3

    @property
    def budget_fraction(self) -> float:
        """The allowed bad fraction — the error budget as a rate."""
        return 1.0 - self.target

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "slo_ms": self.slo_ms,
            "target": self.target,
        }


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert rule.

    Fires when the burn rate over the last ``long_windows`` *and* the
    last ``short_windows`` coordination windows both reach
    ``threshold``; clears (with hysteresis) when the joint signal —
    ``min(long, short)`` — drops below ``clear_below`` (default: half
    the threshold).
    """

    name: str
    threshold: float
    long_windows: int
    short_windows: int
    severity: str = "critical"
    clear_below: float | None = None

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ValueError("need long_windows >= short_windows >= 1")
        if self.clear_below is not None and self.clear_below > self.threshold:
            raise ValueError("clear_below must be <= threshold")

    @property
    def resolved_clear(self) -> float:
        return (
            self.threshold / 2.0
            if self.clear_below is None
            else self.clear_below
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "threshold": self.threshold,
            "long_windows": self.long_windows,
            "short_windows": self.short_windows,
            "severity": self.severity,
            "clear_below": self.resolved_clear,
        }


#: The default rule pair, scaled to the coordinator's ~32-window runs:
#: a fast-burn page (an incident eating budget ~10x too fast, confirmed
#: over one and four windows) and a slow-burn warning (a sustained 4x
#: overspend).  With ``target=0.99`` the fast rule needs >10% of a
#: window's requests violating — diurnal steady-state never gets there,
#: a flash-crowd overload does within the spike.
DEFAULT_BURN_RULES: tuple[BurnRateRule, ...] = (
    BurnRateRule(
        "slo_fast_burn", threshold=10.0, long_windows=4, short_windows=1,
        severity="critical",
    ),
    BurnRateRule(
        "slo_slow_burn", threshold=4.0, long_windows=12, short_windows=3,
        severity="warning",
    ),
)


@dataclass(frozen=True)
class SLOWindowState:
    """The monitor's view after one window: live attainment + budget."""

    index: int
    start_s: float
    end_s: float
    served: int                       # this window's completions
    good: float                       # of which within SLO (sketch mass)
    attainment: float | None          # this window (None if no completions)
    cumulative_attainment: float      # over everything observed so far
    budget_consumed: float            # fraction of the error budget burned
    budget_remaining: float           # max(0, 1 - consumed): never negative
    burn_rate: float                  # max over rules of min(long, short)
    burn_rates: dict = field(default_factory=dict)   # rule -> (long, short)
    events: tuple[AlertEvent, ...] = ()

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "attainment": self.attainment,
            "cumulative_attainment": self.cumulative_attainment,
            "budget_remaining": self.budget_remaining,
            "burn_rate": self.burn_rate,
        }


class SLOMonitor:
    """Streaming SLO evaluation over a window series.

    Feed each coordination window once, either as a merged latency
    sketch (:meth:`observe_window` — the coordinator's live path, exact)
    or as pre-reduced counts (:meth:`observe_counts` — the offline
    ``repro slo`` replay over saved window rows).  States, alert
    transitions, and the end-of-run :meth:`summary` accumulate on the
    monitor.
    """

    def __init__(
        self,
        objective: SLOObjective,
        rules: tuple[BurnRateRule, ...] | None = None,
    ):
        self.objective = objective
        self.rules = tuple(DEFAULT_BURN_RULES if rules is None else rules)
        self._latches = {
            rule.name: Hysteresis(rule.threshold, rule.resolved_clear)
            for rule in self.rules
        }
        lookback = max((rule.long_windows for rule in self.rules), default=1)
        self._history: deque[tuple[int, float]] = deque(maxlen=lookback)
        self._sketch = None               # lazily adopts incoming geometry
        self._served = 0
        self._good = 0.0
        self.states: list[SLOWindowState] = []
        self.alerts: list[AlertEvent] = []

    # -- feeding ----------------------------------------------------------
    def observe_window(
        self, index: int, start_s: float, end_s: float, sketch
    ) -> SLOWindowState:
        """Consume one window's merged latency sketch (the exact path).

        The sketch is merged into the monitor's cumulative sketch, so
        the cumulative attainment is computed on exactly the bucket
        counts a post-hoc pass over the total sketch would see.
        """
        served = int(sketch.count)
        if self._sketch is None:
            self._sketch = sketch.copy()
        else:
            self._sketch.update(sketch)
        good = sketch.cdf(self.objective.slo_s) * served if served else 0.0
        cumulative = (
            self._sketch.cdf(self.objective.slo_s)
            if self._sketch.count
            else 1.0
        )
        return self._advance(index, start_s, end_s, served, good, cumulative)

    def observe_counts(
        self,
        index: int,
        start_s: float,
        end_s: float,
        served: int,
        good: float,
    ) -> SLOWindowState:
        """Consume one pre-reduced window (offline replay of saved rows)."""
        served = int(served)
        good = min(max(float(good), 0.0), float(served))
        self._served += served
        self._good += good
        cumulative = self._good / self._served if self._served else 1.0
        return self._advance(index, start_s, end_s, served, good, cumulative)

    # -- the shared window step -------------------------------------------
    def _advance(
        self,
        index: int,
        start_s: float,
        end_s: float,
        served: int,
        good: float,
        cumulative_attainment: float,
    ) -> SLOWindowState:
        self._history.append((served, good))
        budget = self.objective.budget_fraction
        consumed = (1.0 - cumulative_attainment) / budget
        remaining = max(0.0, 1.0 - consumed)

        burn_rates: dict[str, tuple[float, float]] = {}
        events: list[AlertEvent] = []
        worst = 0.0
        for rule in self.rules:
            long_burn = self._burn(rule.long_windows)
            short_burn = self._burn(rule.short_windows)
            joint = min(long_burn, short_burn)
            worst = max(worst, joint)
            burn_rates[rule.name] = (long_burn, short_burn)
            transition = self._latches[rule.name].update(joint)
            if transition is not None:
                events.append(AlertEvent(
                    rule=rule.name,
                    kind=transition,
                    severity=rule.severity,
                    message=(
                        f"burn rate {joint:.2f}x over"
                        f" {rule.long_windows}/{rule.short_windows} windows"
                        f" ({'>=' if transition == 'fired' else '<'}"
                        f" {rule.threshold if transition == 'fired' else rule.resolved_clear:g}x"
                        f" of the {self.objective.slo_ms:g} ms budget)"
                    ),
                    value=joint,
                    threshold=(
                        rule.threshold
                        if transition == "fired"
                        else rule.resolved_clear
                    ),
                    window=index,
                    t_s=end_s,
                ))
        self.alerts.extend(events)
        state = SLOWindowState(
            index=index,
            start_s=start_s,
            end_s=end_s,
            served=served,
            good=good,
            attainment=(good / served) if served else None,
            cumulative_attainment=cumulative_attainment,
            budget_consumed=consumed,
            budget_remaining=remaining,
            burn_rate=worst,
            burn_rates=burn_rates,
            events=tuple(events),
        )
        self.states.append(state)
        return state

    def _burn(self, lookback: int) -> float:
        """Burn rate over the last ``lookback`` windows (0 when idle)."""
        window = list(self._history)[-lookback:]
        served = sum(s for s, _ in window)
        if not served:
            return 0.0
        bad = sum(s - g for s, g in window)
        return (bad / served) / self.objective.budget_fraction

    # -- results ----------------------------------------------------------
    @property
    def active_rules(self) -> list[str]:
        return sorted(
            name for name, latch in self._latches.items() if latch.active
        )

    @property
    def fired(self) -> list[AlertEvent]:
        return [event for event in self.alerts if event.kind == "fired"]

    def summary(self) -> dict:
        """The end-of-run SLO block (attainment, budget, alert record)."""
        last = self.states[-1] if self.states else None
        attainment = last.cumulative_attainment if last else 1.0
        served = (
            int(self._sketch.count) if self._sketch is not None
            else self._served
        )
        violations = int(round((1.0 - attainment) * served))
        consumed = last.budget_consumed if last else 0.0
        return {
            "slo_ms": self.objective.slo_ms,
            "target": self.objective.target,
            "attainment": attainment,
            "violations": violations,
            "budget": {
                "fraction": self.objective.budget_fraction,
                "consumed": consumed,
                "remaining": max(0.0, 1.0 - consumed),
            },
            "rules": [rule.to_dict() for rule in self.rules],
            "alerts": [event.to_dict() for event in self.alerts],
            "alerts_fired": len(self.fired),
            "active_rules": self.active_rules,
        }


def _isfinite(value: float) -> bool:  # pragma: no cover - trivial
    return math.isfinite(value)
