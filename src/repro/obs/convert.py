"""Converters: simulation outputs → Chrome trace-event tracks.

Wall-clock spans (from :mod:`repro.obs.trace`) show where *runtime*
went; the converters here render what the *simulated hardware* did —
an :class:`~repro.arch.engine.timeline.EngineRun`'s per-resource
timeline and a sharded cluster run's per-window digests — as extra
trace tracks in the same document, so one `repro trace` artifact holds
the whole story.

Simulated time and wall-clock time have different bases, so simulated
tracks live under their own synthetic process ids (``SIM_PID_BASE``
upward) with explicit process names; Perfetto renders them as separate
process groups.  Everything duck-types: both live objects
(``TimelineEntry`` / ``WindowStats``) and their ``to_dict`` payloads
are accepted, so the converters work on fresh runs and on JSON
artifacts alike.
"""

from __future__ import annotations

__all__ = [
    "SIM_PID_BASE",
    "alert_events",
    "engine_run_events",
    "window_events",
    "result_events",
]

#: Synthetic pid namespace for simulated-time tracks (real pids are far
#: below this on any practical system).
SIM_PID_BASE = 1_000_000


def _get(entry, key, default=None):
    if isinstance(entry, dict):
        return entry.get(key, default)
    return getattr(entry, key, default)


def engine_run_events(
    run_or_timeline,
    pid: int = SIM_PID_BASE,
    process_name: str = "simulated engine",
) -> list[dict]:
    """Render an ``EngineRun`` (or bare timeline) as per-resource tracks.

    Each distinct ``resource`` becomes one track (tid); every
    ``TimelineEntry`` becomes a complete event spanning its simulated
    interval (simulated seconds → trace microseconds, so 1 sim-µs reads
    as 1 trace-µs).
    """
    timeline = _get(run_or_timeline, "timeline", run_or_timeline)
    if timeline is None:
        return []
    entries = list(timeline)
    resources = sorted({_get(e, "resource", "?") for e in entries})
    tids = {resource: index for index, resource in enumerate(resources)}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for resource, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": resource},
            }
        )
    for entry in entries:
        start_s = float(_get(entry, "start_s", 0.0))
        end_s = float(_get(entry, "end_s", start_s))
        events.append(
            {
                "name": str(_get(entry, "label", "busy")),
                "cat": "engine.timeline",
                "ph": "X",
                "ts": start_s * 1e6,
                "dur": max(end_s - start_s, 0.0) * 1e6,
                "pid": pid,
                "tid": tids[_get(entry, "resource", "?")],
            }
        )
    return events


def window_events(
    windows,
    pid: int = SIM_PID_BASE + 1,
    process_name: str = "simulated cluster windows",
) -> list[dict]:
    """Render sharded-run window digests as one track plus counter series.

    Each window becomes a complete event spanning its simulated
    interval, carrying the fleet-aggregated stats as args; ``backlog``
    and ``served`` additionally become ``ph: "C"`` counter tracks so
    Perfetto draws them as area charts.
    """
    rows = list(windows or [])
    if not rows:
        return []
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "windows"},
        },
    ]
    for row in rows:
        start_s = float(_get(row, "start_s", 0.0))
        end_s = float(_get(row, "end_s", start_s))
        args = {
            "arrivals": _get(row, "arrivals", 0),
            "served": _get(row, "served", 0),
            "shed": _get(row, "shed", 0),
            "backlog": _get(row, "backlog", 0),
            "p99_ms": _get(row, "p99_ms", 0.0),
            "mean_ms": _get(row, "mean_ms", 0.0),
        }
        slo = _get(row, "slo_attainment")
        if slo is not None:
            args["slo_attainment"] = slo
        for extra in ("budget_remaining", "burn_rate", "pressure"):
            value = _get(row, extra)
            if value is not None:
                args[extra] = value
        index = _get(row, "index", 0)
        events.append(
            {
                "name": f"window {index}",
                "cat": "cluster.window",
                "ph": "X",
                "ts": start_s * 1e6,
                "dur": max(end_s - start_s, 0.0) * 1e6,
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )
        events.append(
            {
                "name": "backlog",
                "ph": "C",
                "ts": end_s * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {"backlog": args["backlog"]},
            }
        )
        events.append(
            {
                "name": "throughput",
                "ph": "C",
                "ts": end_s * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {"served": args["served"], "shed": args["shed"]},
            }
        )
    return events


def alert_events(
    alerts,
    pid: int = SIM_PID_BASE + 2,
    process_name: str = "alerts",
) -> list[dict]:
    """Render :class:`~repro.obs.slo.AlertEvent` rows as instant events.

    Each fired/cleared transition becomes a ``ph: "i"`` instant at its
    simulated timestamp (Perfetto draws these as flag markers), grouped
    on one ``alerts`` track.  Rows without a timestamp (end-of-run
    registry rules) land at t=0.
    """
    rows = list(alerts or [])
    if not rows:
        return []
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "alerts"},
        },
    ]
    for row in rows:
        t_s = _get(row, "t_s")
        events.append(
            {
                "name": f"{_get(row, 'rule', 'alert')} {_get(row, 'kind', '')}".strip(),
                "cat": "obs.alert",
                "ph": "i",
                "s": "g",
                "ts": float(t_s or 0.0) * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {
                    "severity": _get(row, "severity", "warning"),
                    "value": _get(row, "value", 0.0),
                    "threshold": _get(row, "threshold", 0.0),
                    "message": _get(row, "message", ""),
                },
            }
        )
    return events


def result_events(result) -> list[dict]:
    """Extract simulated-time tracks from an experiment result payload.

    Walks the payload for the shapes the converters understand —
    ``windows`` lists (sharded cluster reports) and ``timeline`` lists
    (engine runs) — wherever they appear at the top level or one level
    down, giving each discovered track its own synthetic pid.
    """
    if not isinstance(result, dict):
        return []
    events: list[dict] = []
    pid = SIM_PID_BASE

    def visit(payload, label: str) -> None:
        nonlocal pid
        if not isinstance(payload, dict):
            return
        timeline = payload.get("timeline")
        if isinstance(timeline, list) and timeline:
            events.extend(
                engine_run_events(
                    timeline, pid=pid, process_name=f"simulated engine [{label}]"
                )
            )
            pid += 1
        windows = payload.get("windows")
        if isinstance(windows, list) and windows:
            events.extend(
                window_events(
                    windows, pid=pid, process_name=f"simulated windows [{label}]"
                )
            )
            pid += 1
        alerts = payload.get("alerts")
        if isinstance(alerts, list) and alerts:
            events.extend(
                alert_events(
                    alerts, pid=pid, process_name=f"alerts [{label}]"
                )
            )
            pid += 1

    visit(result, "result")
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, dict):
                visit(value, str(key))
    return events
