"""``repro.obs`` — the unified telemetry subsystem.

One import point for every layer::

    from .. import obs                # or: from repro import obs

    with obs.span("compile.pass.ecp", cat="compile", layers=12):
        ...
    obs.inc("cache.program.miss")
    obs.observe("runtime.experiment_s", duration)

Span and metric **naming convention**: dotted lowercase
``layer.component.detail`` where layer is one of ``runtime``,
``compile``, ``engine``, ``serve``, ``cluster``, ``cache`` — see
docs/OBSERVABILITY.md.

Telemetry is **off by default**.  While disabled, ``span`` returns one
cached null context manager and the metric helpers return after a
single bool check — cheap enough to leave call sites unconditioned in
hot paths.  Enable with :func:`enable` (sets ``REPRO_TRACE`` /
``REPRO_METRICS`` so pool workers self-enable), `repro trace`, or any
``--trace`` CLI flag.
"""

from __future__ import annotations

import os

from .analyze import (
    CriticalPath,
    critical_path,
    critical_path_trace,
    diff_traces,
    self_time,
)
from .convert import (
    alert_events,
    engine_run_events,
    result_events,
    window_events,
)
from .metrics import (
    METRICS_ENV,
    MetricsRegistry,
    format_metrics,
    registry,
)
from .monitor import DEFAULT_DETECTORS, Detector, Monitor, registry_alerts
from .slo import (
    DEFAULT_BURN_RULES,
    AlertEvent,
    BurnRateRule,
    Hysteresis,
    SLOMonitor,
    SLOObjective,
)
from .trace import TRACE_ENV, TRACE_LIMIT_ENV, SpanRecord, Tracer, tracer

__all__ = [
    "AlertEvent",
    "BurnRateRule",
    "CriticalPath",
    "DEFAULT_BURN_RULES",
    "DEFAULT_DETECTORS",
    "Detector",
    "Hysteresis",
    "METRICS_ENV",
    "Monitor",
    "MetricsRegistry",
    "SLOMonitor",
    "SLOObjective",
    "SpanRecord",
    "TRACE_ENV",
    "TRACE_LIMIT_ENV",
    "Tracer",
    "alert_events",
    "critical_path",
    "critical_path_trace",
    "diff_traces",
    "disable",
    "enable",
    "enable_from_env",
    "enabled",
    "engine_run_events",
    "export_telemetry",
    "format_metrics",
    "inc",
    "ingest_telemetry",
    "instant",
    "observe",
    "registry",
    "registry_alerts",
    "result_events",
    "self_time",
    "set_gauge",
    "span",
    "tracer",
    "window_events",
]


# -- recording entry points (delegate to the process-global singletons) ----
span = tracer.span
instant = tracer.instant
inc = registry.inc
observe = registry.observe
set_gauge = registry.set_gauge


def enabled() -> bool:
    """True if either tracing or metrics is currently recording."""
    return tracer.active or registry.active


def enable(trace: bool = True, metrics: bool = True, fresh: bool = True) -> None:
    """Turn telemetry on in this process *and* its future pool workers.

    Sets the ``REPRO_TRACE`` / ``REPRO_METRICS`` environment variables so
    worker processes (fork or spawn) self-enable via
    :func:`enable_from_env` and ship their buffers back.  ``fresh``
    clears any previously recorded spans/metrics first.
    """
    if fresh:
        tracer.reset()
        registry.reset()
    if trace:
        tracer.enable()
        os.environ[TRACE_ENV] = "1"
    if metrics:
        registry.enable()
        os.environ[METRICS_ENV] = "1"


def disable() -> None:
    """Turn telemetry off (buffers are kept until the next ``enable``)."""
    tracer.disable()
    registry.disable()
    os.environ.pop(TRACE_ENV, None)
    os.environ.pop(METRICS_ENV, None)


def enable_from_env() -> bool:
    """Worker-side hook: enable whatever the environment asks for.

    Raises ``ValueError`` on unrecognized ``REPRO_TRACE`` /
    ``REPRO_METRICS`` values (same strictness as ``REPRO_ENGINE``).
    """
    tracer.enable_from_env()
    registry.enable_from_env()
    return enabled()


# -- worker transport ------------------------------------------------------
def export_telemetry() -> dict | None:
    """This process's telemetry as one picklable payload (or ``None``).

    Pool workers call this after finishing a job; the parent folds the
    payload back with :func:`ingest_telemetry`.
    """
    payload: dict = {}
    if tracer.active:
        spans = tracer.snapshot()
        if spans:
            payload["spans"] = spans
    if registry.active and not registry.is_empty():
        payload["metrics"] = registry.to_dict()
    return payload or None


def ingest_telemetry(payload: dict | None) -> None:
    """Fold a worker's :func:`export_telemetry` payload into this process."""
    if not payload:
        return
    spans = payload.get("spans")
    if spans:
        tracer.ingest(spans)
    metrics = payload.get("metrics")
    if metrics:
        registry.merge(metrics)
