"""Metrics registry: counters, gauges, and sketch-backed histograms.

Three instrument kinds, matching what the instrumented layers need:

* **Counter** — monotonically increasing event count (cache hits,
  dispatches, sheds).  Merging adds.
* **Gauge** — a last-observed level with a tracked high-water mark
  (queue depth, cache bytes).  Merging keeps the other side's last
  value and the max of the high-water marks, so merge order only
  affects ``last`` (documented; the high-water mark is order-free).
* **Histogram** — a distribution of observations backed by the
  existing :class:`~repro.serve.sketch.LatencySketch`, so shard-side
  histograms merge through the coordinator *exactly* like latency
  sketches do: exact count addition, associative and commutative.

Like tracing, metrics are off by default; the module-level helpers in
``repro.obs`` (``inc`` / ``observe`` / ``set_gauge``) cost one bool
check while disabled.  The ``LatencySketch`` import is deferred to
first histogram construction so this module stays import-light (no
package-cycle risk when low-level modules import ``repro.obs``).
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_ENV",
    "registry",
]

METRICS_ENV = "REPRO_METRICS"


def _latency_sketch_cls():
    from ..serve.sketch import LatencySketch  # deferred: avoids import cycles

    return LatencySketch


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-observed level plus its high-water mark."""

    __slots__ = ("name", "last", "high")

    def __init__(self, name: str, last: float = 0.0, high: float = 0.0):
        self.name = name
        self.last = last
        self.high = high

    def set(self, value: float) -> None:
        self.last = value
        if value > self.high:
            self.high = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "last": self.last, "high": self.high}


class Histogram:
    """A sketch-backed distribution (seconds-ish units, but unit-free)."""

    __slots__ = ("name", "sketch")

    #: Histogram geometry: wider than the latency default so byte counts
    #: and batch sizes fit without clamping (1e-7 .. 1e9).
    _LO, _HI, _REL_ERR = 1e-7, 1e9, 0.005

    def __init__(self, name: str, sketch=None):
        self.name = name
        if sketch is None:
            sketch = _latency_sketch_cls()(self._LO, self._HI, self._REL_ERR)
        self.sketch = sketch

    def observe(self, value: float) -> None:
        self.sketch.add(value)

    def observe_many(self, values) -> None:
        self.sketch.add_many(values)

    def merge(self, other: "Histogram") -> None:
        self.sketch.update(other.sketch)

    def to_dict(self) -> dict:
        sketch = self.sketch
        summary = {
            "type": "histogram",
            "count": int(sketch.count),
            "sum": sketch.sum_s,
            "mean": sketch.mean_s,
        }
        if sketch.count:
            summary["min"] = sketch.min_s
            summary["max"] = sketch.max_s
            summary["p50"] = sketch.percentile(50.0)
            summary["p95"] = sketch.percentile(95.0)
            summary["p99"] = sketch.percentile(99.0)
        summary["sketch"] = sketch.to_dict()
        return summary

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Histogram":
        sketch = _latency_sketch_cls().from_dict(payload["sketch"])
        return cls(name, sketch=sketch)


class MetricsRegistry:
    """Thread-safe named instruments with snapshot/merge/restore."""

    def __init__(self):
        self.active = False
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- lifecycle ---------------------------------------------------------
    def enable(self) -> None:
        self.active = True

    def disable(self) -> None:
        self.active = False

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def enable_from_env(self) -> bool:
        from .trace import _env_flag  # shared strict on/off parser

        if _env_flag(METRICS_ENV):
            self.active = True
        return self.active

    # -- instrument access (creating on first use) -------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    # -- guarded recording helpers -----------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        if not self.active:
            return
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.active:
            return
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if not self.active:
            return
        self.histogram(name).observe(value)

    # -- snapshot / merge --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dump, instruments sorted by name (deterministic)."""
        with self._lock:
            counters = {n: c.to_dict() for n, c in sorted(self._counters.items())}
            gauges = {n: g.to_dict() for n, g in sorted(self._gauges.items())}
            histograms = {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dict` snapshot (e.g. from a worker) into this
        registry: counters add, gauges keep max high-water, histograms
        merge through their sketches."""
        for name, payload in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(payload["value"]))
        for name, payload in (snapshot.get("gauges") or {}).items():
            gauge = self.gauge(name)
            gauge.last = float(payload["last"])
            gauge.high = max(gauge.high, float(payload["high"]))
        for name, payload in (snapshot.get("histograms") or {}).items():
            incoming = Histogram.from_dict(name, payload)
            with self._lock:
                existing = self._histograms.get(name)
                if existing is None:
                    self._histograms[name] = incoming
                    existing = None
            if existing is not None:
                existing.merge(incoming)

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)


def format_metrics(snapshot: dict) -> list[str]:
    """Human-readable lines for a :meth:`MetricsRegistry.to_dict` dump."""
    lines: list[str] = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, payload in counters.items():
            lines.append(f"  {name:<{width}}  {payload['value']}")
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, payload in gauges.items():
            lines.append(
                f"  {name:<{width}}  last={payload['last']:g}"
                f" high={payload['high']:g}"
            )
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name, payload in histograms.items():
            line = f"  {name:<{width}}  count={payload['count']}"
            if payload["count"]:
                line += (
                    f" mean={payload['mean']:.6g}"
                    f" p50={payload['p50']:.6g}"
                    f" p95={payload['p95']:.6g}"
                    f" p99={payload['p99']:.6g}"
                    f" max={payload['max']:.6g}"
                )
            lines.append(line)
    if not lines:
        lines.append("(no metrics recorded)")
    return lines


#: The process-global registry every ``repro.obs`` helper records into.
registry = MetricsRegistry()
