"""Detector rule engine over the window stream and metrics registry.

Where :mod:`repro.obs.slo` watches one contract (the latency SLO), the
:class:`Monitor` here watches the *symptoms* that usually precede or
explain an SLO breach: a backlog that grows monotonically
(queue-growth), admission control turning traffic away (shed-rate), the
fleet running at or past its service capacity
(utilization-saturation), and the per-window mean drifting away from
its own recent baseline (latency-drift).  Each detector reduces a
:class:`~repro.cluster.report.WindowStats` row to one scalar and feeds
it through the same :class:`~repro.obs.slo.Hysteresis` latch the
burn-rate rules use, emitting :class:`~repro.obs.slo.AlertEvent`
transitions.

A second entry point, :meth:`Monitor.observe_registry` /
:func:`registry_alerts`, evaluates end-of-run rules over a metrics
registry snapshot (dropped trace spans, corrupt cache entries) so
``repro run-all --alerts`` can fold health checks into the manifest
without any windowed stream.

Alerts end up in three places: the cluster report (``report.alerts``),
the Perfetto trace as instant events
(:func:`repro.obs.convert.alert_events`), and the JSON incident report
written by ``repro cluster --alerts`` (:meth:`Monitor.incident_report`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .slo import AlertEvent, Hysteresis

__all__ = [
    "DEFAULT_DETECTORS",
    "Detector",
    "Monitor",
    "latency_drift",
    "queue_growth",
    "registry_alerts",
    "shed_rate",
    "utilization_saturation",
]


class Detector:
    """One windowed detector: a signal function latched with hysteresis.

    Subclasses (or instances built by the factory helpers below) define
    ``signal(window) -> float | None`` — ``None`` means "no reading this
    window" and leaves the latch untouched.
    """

    def __init__(
        self,
        name: str,
        fire: float,
        clear: float | None = None,
        severity: str = "warning",
        unit: str = "",
    ):
        self.name = name
        self.severity = severity
        self.unit = unit
        self._latch = Hysteresis(fire, clear)

    def signal(self, window) -> float | None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def active(self) -> bool:
        return self._latch.active

    def observe(self, window) -> AlertEvent | None:
        value = self.signal(window)
        if value is None:
            return None
        transition = self._latch.update(value)
        if transition is None:
            return None
        threshold = (
            self._latch.fire if transition == "fired" else self._latch.clear
        )
        unit = f" {self.unit}" if self.unit else ""
        return AlertEvent(
            rule=self.name,
            kind=transition,
            severity=self.severity,
            message=(
                f"{self.name} {transition}: {value:.3g}{unit}"
                f" ({'>=' if transition == 'fired' else '<'} {threshold:g})"
            ),
            value=value,
            threshold=threshold,
            window=int(window.index),
            t_s=float(window.end_s),
        )


class queue_growth(Detector):
    """Backlog growing for N consecutive windows.

    The signal is the length of the current strictly-increasing backlog
    streak; the latch fires once the streak reaches ``windows`` and
    clears the moment the backlog stops growing (streak resets to 0).
    A transient one-window blip never fires; a sustained overload does.

    Prefers the queued-only ``pending`` series when the window carries
    one: the aggregate ``backlog`` column counts in-flight requests too,
    so it ramps benignly as a calm fleet warms up to its steady-state
    concurrency — growth in *waiting* requests is the overload signal.
    """

    def __init__(self, windows: int = 3, severity: str = "critical"):
        super().__init__(
            "queue_growth", fire=windows, clear=1, severity=severity,
            unit="windows",
        )
        self._last_backlog: int | None = None
        self._streak = 0

    def signal(self, window) -> float:
        pending = getattr(window, "pending", None)
        backlog = int(window.backlog if pending is None else pending)
        if self._last_backlog is not None and backlog > self._last_backlog:
            self._streak += 1
        else:
            self._streak = 0
        self._last_backlog = backlog
        return float(self._streak)


class shed_rate(Detector):
    """Admission control shedding more than ``threshold`` of arrivals."""

    def __init__(
        self, threshold: float = 0.05, severity: str = "warning",
    ):
        super().__init__(
            "shed_rate", fire=threshold, clear=threshold / 2.0,
            severity=severity,
        )

    def signal(self, window) -> float | None:
        arrivals = int(window.arrivals)
        if not arrivals:
            return None
        return int(window.shed) / arrivals


class utilization_saturation(Detector):
    """Fleet pressure (outstanding work / serviceable work) at capacity.

    Pressure > 1 means the window holds more outstanding service time
    than the accepting chips can provide in one window.  Raw pressure
    alone over-triggers when service times span multiple coordination
    windows (a warm fleet's *in-flight* work already exceeds one window
    of capacity while throughput keeps up), so the signal is weighted by
    the queued share of the backlog: pressure counts only insofar as
    requests are actually waiting.  Fires slightly below 1 so the alert
    leads the queue, clears at 0.8.
    """

    def __init__(self, threshold: float = 0.95, severity: str = "warning"):
        super().__init__(
            "utilization_saturation", fire=threshold, clear=0.8,
            severity=severity, unit="x capacity",
        )

    def signal(self, window) -> float | None:
        pressure = getattr(window, "pressure", None)
        if pressure is None:
            return None
        pressure = float(pressure)
        pending = getattr(window, "pending", None)
        backlog = int(getattr(window, "backlog", 0) or 0)
        if pending is not None and backlog > 0:
            pressure *= int(pending) / backlog
        return pressure


class latency_drift(Detector):
    """Window mean latency drifting above its own EWMA baseline.

    The signal is ``mean_ms / baseline``; the baseline is an EWMA of
    past window means that **freezes while the detector is active**, so
    a slow incident can't drag the baseline up and mask itself.  The
    first ``warmup`` windows only feed the baseline.
    """

    def __init__(
        self,
        ratio: float = 2.0,
        warmup: int = 3,
        alpha: float = 0.3,
        severity: str = "warning",
    ):
        super().__init__(
            "latency_drift", fire=ratio, clear=(1.0 + ratio) / 2.0,
            severity=severity, unit="x baseline",
        )
        self.warmup = int(warmup)
        self.alpha = float(alpha)
        self._baseline: float | None = None
        self._seen = 0

    def signal(self, window) -> float | None:
        mean_ms = float(window.mean_ms)
        if mean_ms <= 0.0:
            return None
        self._seen += 1
        if self._baseline is None:
            self._baseline = mean_ms
            return None
        ratio = mean_ms / self._baseline
        if not self.active:
            self._baseline += self.alpha * (mean_ms - self._baseline)
        if self._seen <= self.warmup:
            return None
        return ratio


def DEFAULT_DETECTORS() -> list[Detector]:
    """A fresh default detector set (stateful, so built per run)."""
    return [
        queue_growth(),
        shed_rate(),
        utilization_saturation(),
        latency_drift(),
    ]


#: End-of-run registry rules: counter name -> (threshold, severity, note).
_REGISTRY_RULES: dict[str, tuple[float, str, str]] = {
    "trace.dropped": (
        1, "warning", "span ring buffer overflowed; raise REPRO_TRACE_LIMIT",
    ),
    "runtime.cache_corrupt": (
        1, "warning", "result cache entries failed verification",
    ),
    "serve.rejected": (
        1, "info", "admission control rejected requests",
    ),
}


def registry_alerts(snapshot: dict) -> list[AlertEvent]:
    """Evaluate end-of-run health rules over a registry snapshot."""
    counters = snapshot.get("counters", {}) if snapshot else {}
    alerts = []
    for name, (threshold, severity, note) in sorted(_REGISTRY_RULES.items()):
        value = float(counters.get(name, 0))
        if value >= threshold:
            alerts.append(AlertEvent(
                rule=f"registry.{name}",
                kind="fired",
                severity=severity,
                message=f"{name}={value:g}: {note}",
                value=value,
                threshold=float(threshold),
            ))
    return alerts


@dataclass(frozen=True)
class _Incident:
    """A fired..cleared (or fired..end-of-run) episode of one rule."""

    rule: str
    severity: str
    start_window: int | None
    end_window: int | None
    start_s: float | None
    end_s: float | None
    peak_value: float
    resolved: bool

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "start_window": self.start_window,
            "end_window": self.end_window,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "peak_value": self.peak_value,
            "resolved": self.resolved,
        }


class Monitor:
    """Runs a detector set over the window stream, collecting alerts."""

    def __init__(self, detectors: list[Detector] | None = None):
        self.detectors = (
            DEFAULT_DETECTORS() if detectors is None else list(detectors)
        )
        self.alerts: list[AlertEvent] = []

    def observe_window(self, window) -> list[AlertEvent]:
        """Feed one WindowStats row to every detector; returns transitions."""
        events = []
        for detector in self.detectors:
            event = detector.observe(window)
            if event is not None:
                events.append(event)
        self.alerts.extend(events)
        return events

    def observe_registry(self, snapshot: dict) -> list[AlertEvent]:
        """Evaluate end-of-run registry rules; folds into ``alerts``."""
        events = registry_alerts(snapshot)
        self.alerts.extend(events)
        return events

    @property
    def fired(self) -> list[AlertEvent]:
        return [event for event in self.alerts if event.kind == "fired"]

    @property
    def active_rules(self) -> list[str]:
        return sorted(d.name for d in self.detectors if d.active)

    def incidents(
        self, extra: list[AlertEvent] | None = None
    ) -> list[_Incident]:
        """Pair fired/cleared transitions into incident episodes."""
        events = sorted(
            self.alerts + list(extra or ()),
            key=lambda e: (e.window if e.window is not None else -1),
        )
        open_by_rule: dict[str, AlertEvent] = {}
        peaks: dict[str, float] = {}
        episodes: list[_Incident] = []
        for event in events:
            if event.kind == "fired":
                open_by_rule.setdefault(event.rule, event)
                peaks[event.rule] = max(
                    peaks.get(event.rule, float("-inf")), event.value
                )
            elif event.kind == "cleared" and event.rule in open_by_rule:
                start = open_by_rule.pop(event.rule)
                episodes.append(_Incident(
                    rule=event.rule,
                    severity=start.severity,
                    start_window=start.window,
                    end_window=event.window,
                    start_s=start.t_s,
                    end_s=event.t_s,
                    peak_value=peaks.pop(event.rule),
                    resolved=True,
                ))
        for rule, start in sorted(open_by_rule.items()):
            episodes.append(_Incident(
                rule=rule,
                severity=start.severity,
                start_window=start.window,
                end_window=None,
                start_s=start.t_s,
                end_s=None,
                peak_value=peaks[rule],
                resolved=False,
            ))
        episodes.sort(key=lambda i: (
            i.start_window if i.start_window is not None else -1, i.rule,
        ))
        return episodes

    def incident_report(
        self,
        slo_summary: dict | None = None,
        extra: list[AlertEvent] | None = None,
    ) -> dict:
        """The JSON incident report for ``repro cluster --alerts``."""
        all_alerts = self.alerts + list(extra or ())
        fired = [e for e in all_alerts if e.kind == "fired"]
        report = {
            "alerts_fired": len(fired),
            "rules_fired": sorted({e.rule for e in fired}),
            "incidents": [i.to_dict() for i in self.incidents(extra)],
            "alerts": [e.to_dict() for e in all_alerts],
        }
        if slo_summary is not None:
            report["slo"] = slo_summary
        return report
