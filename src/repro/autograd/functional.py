"""Differentiable building blocks used by the spiking transformer.

All functions take and return :class:`~repro.autograd.tensor.Tensor` objects
and are differentiable through the engine in :mod:`repro.autograd.tensor`.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "linear",
    "conv2d",
    "avg_pool2d",
    "batch_norm",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "dropout",
    "one_hot",
]


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``.

    ``x`` has shape ``(..., in_features)``; ``weight`` is
    ``(out_features, in_features)`` following the PyTorch convention the paper
    assumes for its projection layers.
    """
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(B, C, H, W)`` into ``(B, C*kh*kw, OH*OW)`` patches."""
    b, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    sb, sc, sh, sw = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, kh, kw, oh, ow),
        strides=(sb, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    cols = patches.reshape(b, c * kh * kw, oh * ow)
    return np.ascontiguousarray(cols), oh, ow


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add columns back to image layout."""
    b, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    out = np.zeros((b, c, hp, wp), dtype=np.float64)
    cols6 = cols.reshape(b, c, kh, kw, oh, ow)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols6[
                :, :, i, j
            ]
    if padding:
        out = out[:, :, padding : padding + h, padding : padding + w]
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution via im2col.

    ``x``: ``(B, C, H, W)``; ``weight``: ``(O, C, kh, kw)``.  Used by the
    spiking tokenizer, where the paper's complexity analysis gives
    ``O(T·H·W·C²·K²)``.
    """
    o, c, kh, kw = weight.shape
    cols, oh, ow = _im2col(x.data, kh, kw, stride, padding)
    w_mat = weight.data.reshape(o, c * kh * kw)
    out_data = np.einsum("ok,bkp->bop", w_mat, cols, optimize=True)
    out_data = out_data.reshape(x.shape[0], o, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None, None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray, out=None) -> None:
        grad_flat = grad.reshape(grad.shape[0], o, oh * ow)
        if weight.requires_grad:
            grad_w = np.einsum("bop,bkp->ok", grad_flat, cols, optimize=True)
            out._send(weight, grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = np.einsum("ok,bop->bkp", w_mat, grad_flat, optimize=True)
            out._send(x, _col2im(grad_cols, x.shape, kh, kw, stride, padding, oh, ow))
        if bias is not None and bias.requires_grad:
            out._send(bias, grad.sum(axis=(0, 2, 3)))

    out = Tensor._make(out_data, tuple(parents), lambda g: backward(g, out=out))
    return out


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling on ``(B, C, H, W)``."""
    b, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    reshaped = x.reshape(b, c, oh, kernel, ow, kernel)
    return reshaped.mean(axis=5).mean(axis=3)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
    axis: tuple[int, ...] | None = None,
) -> Tensor:
    """Batch normalization over every axis except the feature axis (last).

    The spiking transformer follows Spikformer in using BN (not LayerNorm)
    after each projection; at inference BN folds into the weights, so the
    accelerator never sees it — here it only shapes training.
    ``running_mean``/``running_var`` are updated in place when training.
    """
    if axis is None:
        axis = tuple(range(x.ndim - 1))
    if training:
        mean = x.mean(axis=axis, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=axis, keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= 1.0 - momentum
        running_var += momentum * var.data.reshape(-1)
        inv_std = (var + eps) ** -0.5
        normalized = centered * inv_std
    else:
        normalized = (x - running_mean) * ((running_var + eps) ** -0.5)
    return normalized * gamma + beta


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(B,)`` to one-hot ``(B, num_classes)`` float array."""
    labels = np.asarray(labels)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits (B, C)`` and integer ``labels (B,)``.

    This is the ``L_CE`` term of the paper's BSA objective
    ``L_tot = L_CE + λ·L_bsp`` (Sec. 4.1).
    """
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected (B, C) logits, got shape {logits.shape}")
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs * one_hot(labels, logits.shape[-1])
    return -picked.sum() * (1.0 / logits.shape[0])


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * as_tensor(mask)
