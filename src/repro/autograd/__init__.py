"""NumPy reverse-mode autodiff engine (system S1).

Public surface:

* :class:`Tensor`, :func:`no_grad`, :func:`as_tensor` — the tape.
* :mod:`repro.autograd.functional` — differentiable layers (linear, conv2d,
  batch_norm, cross_entropy, ...).
* :class:`Module`, :class:`Parameter`, :class:`ModuleList` — containers.
* :class:`SGD`, :class:`Adam`, :class:`CosineSchedule` — optimizers.
"""

from . import functional
from .module import Module, ModuleList, Parameter, init_rng
from .optim import Adam, CosineSchedule, SGD
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "ModuleList",
    "Parameter",
    "init_rng",
    "SGD",
    "Adam",
    "CosineSchedule",
]
