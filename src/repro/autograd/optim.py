"""Gradient-descent optimizers for BSA / ECP-aware training."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam", "CosineSchedule"]


class Optimizer:
    """Base class holding a parameter list."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CosineSchedule:
    """Cosine learning-rate decay from ``lr`` to ``lr_min`` over ``total`` steps."""

    def __init__(self, optimizer: Optimizer, total_steps: int, lr_min: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.lr_max = optimizer.lr
        self.lr_min = lr_min
        self._t = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._t = min(self._t + 1, self.total_steps)
        progress = self._t / self.total_steps
        lr = self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = lr
        return lr
