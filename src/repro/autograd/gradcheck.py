"""Numerical gradient checking for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    fn: Callable[[Sequence[Tensor]], Tensor],
    tensors: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(tensors))`` w.r.t. one input."""
    target = tensors[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(tensors).data.sum())
        flat[i] = original - eps
        minus = float(fn(tensors).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[[Sequence[Tensor]], Tensor],
    tensors: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients for every input tensor.

    ``fn`` must be built from smooth operations (no spikes/steps — surrogate
    gradients intentionally disagree with the true derivative).
    Raises ``AssertionError`` with context on mismatch; returns True on pass.
    """
    for tensor in tensors:
        tensor.zero_grad()
    output = fn(tensors)
    output.sum().backward()
    for index, tensor in enumerate(tensors):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        if analytic is None:
            raise AssertionError(f"input {index} received no gradient")
        numeric = numerical_gradient(fn, tensors, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {index}: max |Δ| = {worst:.3e}"
            )
    return True
