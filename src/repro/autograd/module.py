"""Minimal ``nn.Module``-style container system for the model zoo."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "init_rng"]


def init_rng(seed: int) -> np.random.Generator:
    """A seeded generator for reproducible parameter initialization."""
    return np.random.default_rng(seed)


class Parameter(Tensor):
    """A tensor that is registered as trainable model state."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must always be leaves that require grad, even if they
        # are constructed inside a ``no_grad`` block (e.g. weight init).
        self.requires_grad = True


class Module:
    """Base class providing parameter registration and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    # -- registration ---------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()

    # -- mode & grads ----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- serialization ----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            if parameter.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {parameter.shape} vs {state[name].shape}"
                )
            parameter.data = state[name].copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ModuleList(Module):
    """An indexable list of sub-modules whose parameters are registered."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = list(modules)
        self._sync()

    def _sync(self) -> None:
        # Expose items as attributes so Module's reflection sees them.
        for index, module in enumerate(self._items):
            setattr(self, f"item_{index}", module)

    def append(self, module: Module) -> None:
        self._items.append(module)
        self._sync()

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
