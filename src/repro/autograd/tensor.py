"""Reverse-mode automatic differentiation over NumPy arrays.

This is the training substrate for the Bishop reproduction (system S1 in
DESIGN.md).  The paper trains spiking transformers with surrogate gradients in
PyTorch; offline we provide a compact, well-tested engine with the same
semantics: a :class:`Tensor` wraps an ``np.ndarray``, records the operations
that produced it, and :meth:`Tensor.backward` accumulates gradients through
the recorded graph, handling NumPy broadcasting.

Only float64 data participates in differentiation; integer tensors may flow
through the graph (e.g. class labels) but never receive gradients.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions.

    NumPy broadcasting may both prepend axes and stretch size-1 axes; the
    adjoint of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, array, or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A NumPy array plus an autodiff tape entry.

    Parameters
    ----------
    data:
        Array-like payload.  Floating inputs are stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` on
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_flowing_grads")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind == "f" and arr.dtype != np.float64:
            arr = arr.astype(np.float64)
        elif arr.dtype.kind in "iub" and requires_grad:
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, wiring the backward closure if recording."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so scalars need no argument).  Gradients
        accumulate into ``.grad`` of every reachable tensor that has
        ``requires_grad=True``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        # Topological order via iterative DFS (avoids recursion limits on
        # long BPTT chains through LIF dynamics).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor.
                node._accumulate(node_grad)
            if node._backward is not None:
                node._flowing_grads = grads  # type: ignore[attr-defined]
                try:
                    node._backward(node_grad)
                finally:
                    del node._flowing_grads  # type: ignore[attr-defined]

    def _send(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Route ``grad`` to ``parent`` during an active backward pass."""
        if not parent.requires_grad:
            return
        if parent._backward is None:
            parent._accumulate(grad)
            return
        flowing: dict[int, np.ndarray] = self._flowing_grads  # type: ignore[attr-defined]
        key = id(parent)
        if key in flowing:
            flowing[key] = flowing[key] + grad
        else:
            flowing[key] = np.asarray(grad, dtype=np.float64)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, _unbroadcast(grad, self.shape))
            out._send(other, _unbroadcast(grad, other.shape))

        out = Tensor._make(out_data, (self, other), lambda g: backward(g, out=out))
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, -grad)

        out = Tensor._make(-self.data, (self,), lambda g: backward(g, out=out))
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, _unbroadcast(grad * other.data, self.shape))
            out._send(other, _unbroadcast(grad * self.data, other.shape))

        out = Tensor._make(out_data, (self, other), lambda g: backward(g, out=out))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, _unbroadcast(grad / other.data, self.shape))
            out._send(
                other,
                _unbroadcast(-grad * self.data / (other.data**2), other.shape),
            )

        out = Tensor._make(out_data, (self, other), lambda g: backward(g, out=out))
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, grad * exponent * self.data ** (exponent - 1))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray, out=None) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                out._send(self, grad * b)
                out._send(other, grad * a)
                return
            a2 = a[None, :] if a.ndim == 1 else a
            b2 = b[:, None] if b.ndim == 1 else b
            g = grad
            if a.ndim == 1:
                g = np.expand_dims(g, -2)
            if b.ndim == 1:
                g = np.expand_dims(g, -1)
            grad_a = g @ np.swapaxes(b2, -1, -2)
            grad_b = np.swapaxes(a2, -1, -2) @ g
            if a.ndim == 1:
                grad_a = np.squeeze(grad_a, -2)
            if b.ndim == 1:
                grad_b = np.squeeze(grad_b, -1)
            out._send(self, _unbroadcast(grad_a, self.shape))
            out._send(other, _unbroadcast(grad_b, other.shape))

        out = Tensor._make(out_data, (self, other), lambda g: backward(g, out=out))
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, grad.reshape(self.shape))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes_t = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = np.argsort(axes_t)

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, grad.transpose(inverse))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray, out=None) -> None:
            full = np.zeros_like(self.data, dtype=np.float64)
            np.add.at(full, index, grad)
            out._send(self, full)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray, out=None) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                out._send(tensor, grad[tuple(index)])

        out = Tensor._make(out_data, tuple(tensors), lambda g: backward(g, out=out))
        return out

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray, out=None) -> None:
            slabs = np.moveaxis(grad, axis, 0)
            for tensor, slab in zip(tensors, slabs):
                out._send(tensor, slab)

        out = Tensor._make(out_data, tuple(tensors), lambda g: backward(g, out=out))
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, out=None) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            out._send(self, np.broadcast_to(g, self.shape).copy())

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else np.prod(
            [self.shape[a] for a in np.atleast_1d(axis)]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, out=None) -> None:
            expanded = out_data
            g = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(expanded, axis)
                g = np.expand_dims(g, axis)
            mask = (self.data == expanded).astype(np.float64)
            # Split gradient among ties (matches NumPy/Torch conventions
            # closely enough for our workloads).
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            out._send(self, mask * g)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, grad * out_data)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, grad / self.data)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, grad * (1.0 - out_data**2))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, grad * out_data * (1.0 - out_data))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, grad * (self.data > 0))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray, out=None) -> None:
            inside = (self.data >= low) & (self.data <= high)
            out._send(self, grad * inside)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, grad * np.sign(self.data))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out

    # ------------------------------------------------------------------
    # Custom unary op hook (surrogate-gradient spikes plug in here)
    # ------------------------------------------------------------------
    def apply(
        self,
        forward_fn: Callable[[np.ndarray], np.ndarray],
        backward_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ) -> "Tensor":
        """Apply a custom elementwise function.

        ``forward_fn(x)`` produces the output; ``backward_fn(x, grad)``
        produces the input gradient.  Used by surrogate-gradient spike
        functions where the true derivative (of a Heaviside step) is zero
        almost everywhere.
        """
        out_data = forward_fn(self.data)

        def backward(grad: np.ndarray, out=None) -> None:
            out._send(self, backward_fn(self.data, grad))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out=out))
        return out
