"""Pareto-frontier extraction over minimized objective dicts.

Candidates are plain mappings carrying a ``metrics`` dict; the frontier
is the set of non-dominated candidates under the chosen objective keys.
:func:`frontier_slack` measures how far a reference point sits from an
existing frontier: the largest factor by which some frontier member
improves on it across *every* objective simultaneously.  A point on (or
merely traded-off against) the frontier has slack 0; the acceptance
criterion "within 5% of the frontier" is ``frontier_slack(...) <= 0.05``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["dominates", "frontier_slack", "pareto_frontier"]


def _values(metrics: Mapping, keys: Sequence[str]) -> tuple[float, ...]:
    try:
        return tuple(float(metrics[k]) for k in keys)
    except KeyError as error:
        raise KeyError(
            f"candidate metrics missing objective {error.args[0]!r};"
            f" available: {sorted(metrics)}"
        ) from None


def dominates(a: Mapping, b: Mapping, keys: Sequence[str]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better somewhere
    (all objectives minimized)."""
    va, vb = _values(a, keys), _values(b, keys)
    return all(x <= y for x, y in zip(va, vb)) and any(x < y for x, y in zip(va, vb))


def pareto_frontier(
    metrics_list: Sequence[Mapping], keys: Sequence[str]
) -> list[int]:
    """Indices of the non-dominated members of ``metrics_list``.

    Deterministic: indices come back in input order.  Duplicate objective
    vectors are all kept (they don't dominate each other).
    """
    values = [_values(m, keys) for m in metrics_list]
    frontier: list[int] = []
    for i, vi in enumerate(values):
        dominated = False
        for j, vj in enumerate(values):
            if i == j:
                continue
            if all(y <= x for x, y in zip(vi, vj)) and any(
                y < x for x, y in zip(vi, vj)
            ):
                dominated = True
                break
        if not dominated:
            frontier.append(i)
    return frontier


def frontier_slack(
    point: Mapping, frontier: Sequence[Mapping], keys: Sequence[str]
) -> float:
    """Relative distance of ``point`` from a frontier (0 = on it).

    For each frontier member ``f``, the guaranteed all-objective
    improvement factor over the point is ``min_k point[k] / f[k]``; the
    slack is the best such factor minus one, floored at zero.  If no
    member beats the point in every objective, the point is itself
    non-dominated and the slack is exactly 0.
    """
    pv = _values(point, keys)
    worst = 0.0
    for member in frontier:
        fv = _values(member, keys)
        ratios = []
        for p, f in zip(pv, fv):
            if f <= 0.0:
                ratios.append(float("inf") if p > 0 else 1.0)
            else:
                ratios.append(p / f)
        improvement = min(ratios)
        worst = max(worst, improvement - 1.0)
    return max(0.0, worst)
