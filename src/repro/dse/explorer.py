"""The DSE orchestrator: strategy loop → cached evaluation → frontier.

Every candidate chip evaluates through the repo's single lowering path:
:func:`~repro.compiler.cache.compile_model` compiles the model's
synthetic trace for the candidate's :class:`~repro.arch.BishopConfig`
(TTB packing, ECP planning, stratification, engine-measured prefetch
scheduling), and the metrics come off the compiled program.  Two cache
layers make sweeps cheap and resumable:

* the **program cache** (``repro.compiler.cache``) memoizes the compiled
  program per (model, chip, passes, seed) — shared across strategies,
  budgets, and worker processes;
* the **result cache** (``repro.runtime``) memoizes the whole
  ``dse_point`` experiment per (model, point, seed) — a re-run of the
  same search replays every candidate from disk (near-instant warm run),
  and a larger budget only evaluates the new points.

Pass an :class:`~repro.runtime.ExperimentRunner` to :func:`run_dse` to
get both layers plus process-pool parallelism (the ``repro dse`` CLI
does); without one, candidates evaluate inline (the registry experiments
do this — the outer result cache already memoizes them wholesale).

The paper's default chip is always evaluated as the *reference* point —
the report records whether it lands on the computed frontier and its
ε-slack when it does not.  Frontier winners can be exported as cluster
chip kinds (:func:`export_fleet_kinds`) and simulated as heterogeneous
fleets via ``repro.cluster``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .objectives import (
    DEFAULT_OBJECTIVES,
    parse_objectives,
    program_metrics,
    scaled_energy_model,
)
from .pareto import frontier_slack, pareto_frontier
from .space import DesignSpace, default_space, point_key
from .strategies import make_strategy

__all__ = ["DSEConfig", "evaluate_point", "export_fleet_kinds", "run_dse"]


@dataclass(frozen=True)
class DSEConfig:
    """One search: what to explore, how hard, and against which objectives.

    ``budget`` counts searched candidates; the paper-default reference
    point is always evaluated in addition.  ``batch`` is the proposal
    granularity — the parallelism grain when a runner with worker
    processes drives the evaluation.
    """

    model: str
    strategy: str = "random"
    budget: int = 64
    objectives: tuple[str, ...] = DEFAULT_OBJECTIVES
    seed: int = 0
    batch: int = 16

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        parse_objectives(self.objectives)  # validates


def evaluate_point(
    model: str,
    point: dict,
    seed: int = 0,
    space: DesignSpace | None = None,
) -> dict:
    """Compile + engine-measure one design point (the ``dse_point`` body).

    Returns a JSON-safe record: the resolved point, the chip-kind override
    dict it corresponds to, and all candidate metrics.
    """
    from ..compiler import compile_model

    space = space if space is not None else default_space()
    resolved = space.validate_point(point)
    config = space.to_config(resolved)
    # Leakage/clock power scales with the candidate's silicon; at the
    # paper point the model (and thus the program-cache key) is exactly
    # the default one.
    program = compile_model(
        model, config, seed=seed, energy=scaled_energy_model(config)
    )
    return {
        "point": resolved,
        "overrides": space.config_overrides(resolved),
        "metrics": program_metrics(program, config),
    }


def _evaluate_batch(
    model: str,
    points: list[dict],
    seed: int,
    runner,
    space: DesignSpace,
) -> tuple[list[dict], int]:
    """Evaluate a proposal batch, returning ``(records, cache_hits)``."""
    if runner is None:
        return [evaluate_point(model, p, seed=seed, space=space) for p in points], 0
    requests = [
        ("dse_point", {"model": model, "point": point_key(p), "seed": seed})
        for p in points
    ]
    summary = runner.run_many(requests, write_artifacts=False)
    records = []
    for outcome in summary.outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"dse_point failed for {outcome.params.get('point')}:"
                f"\n{outcome.error}"
            )
        records.append(dict(outcome.result))
    return records, summary.hits


def run_dse(
    config: DSEConfig,
    runner=None,
    space: DesignSpace | None = None,
) -> dict:
    """Run one design-space search and return the frontier report."""
    space = space if space is not None else default_space()
    objectives = parse_objectives(config.objectives)
    strategy = make_strategy(
        config.strategy, space, seed=config.seed, objectives=objectives
    )

    # The paper chip is always candidate 0 — the acceptance reference.
    reference_point = space.default_point()
    reference, reference_hits = _evaluate_batch(
        config.model, [reference_point], config.seed, runner, space
    )
    strategy.mark_seen(reference_point)
    candidates: list[dict] = list(reference)
    cache_hits = reference_hits

    searched = 0
    while searched < config.budget:
        want = min(config.batch, config.budget - searched)
        points = strategy.propose(want)
        if not points:
            break  # space exhausted
        records, hits = _evaluate_batch(
            config.model, points, config.seed, runner, space
        )
        strategy.observe(records)
        candidates.extend(records)
        cache_hits += hits
        searched += len(records)

    metrics_list = [c["metrics"] for c in candidates]
    frontier_indices = pareto_frontier(metrics_list, objectives)
    frontier_metrics = [metrics_list[i] for i in frontier_indices]
    primary = objectives[0]
    frontier = sorted(
        (
            {
                "point": candidates[i]["point"],
                "overrides": candidates[i]["overrides"],
                "metrics": candidates[i]["metrics"],
            }
            for i in frontier_indices
        ),
        key=lambda entry: entry["metrics"][primary],
    )
    reference_record = candidates[0]
    reference_slack = frontier_slack(
        reference_record["metrics"], frontier_metrics, objectives
    )
    best = {
        objective: min(
            (
                {"point": c["point"], "value": c["metrics"][objective]}
                for c in candidates
            ),
            key=lambda entry: entry["value"],
        )
        for objective in objectives
    }
    return {
        "model": config.model,
        "strategy": config.strategy,
        "budget": config.budget,
        "seed": config.seed,
        "objectives": list(objectives),
        "space": space.describe(),
        "evaluated": len(candidates),
        "searched": searched,
        "cache_hits": cache_hits,
        "candidates": [
            {"point": c["point"], "metrics": c["metrics"]} for c in candidates
        ],
        "frontier": frontier,
        "reference": {
            "point": reference_record["point"],
            "metrics": reference_record["metrics"],
            "on_frontier": 0 in frontier_indices,
            "frontier_slack": reference_slack,
        },
        "best": best,
    }


def export_fleet_kinds(
    report: dict, path: Path | str, prefix: str | None = None
) -> dict[str, dict]:
    """Write the frontier as a cluster chip-kind file.

    The file maps kind names (``dse_<model>_<rank>``) to
    :meth:`~repro.arch.BishopConfig.with_overrides` dicts;
    :func:`repro.cluster.fleet.load_chip_kinds` registers them so
    ``repro cluster --kinds-file`` (or :class:`ChipSpec` directly) can
    build heterogeneous fleets out of DSE winners.  Returns the kinds.
    """
    prefix = prefix or f"dse_{report['model']}"
    kinds = {
        f"{prefix}_{rank}": entry["overrides"]
        for rank, entry in enumerate(report["frontier"])
    }
    payload = {
        "generated_by": "repro dse",
        "model": report["model"],
        "strategy": report["strategy"],
        "objectives": report["objectives"],
        "seed": report["seed"],
        "kinds": kinds,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
    return kinds
