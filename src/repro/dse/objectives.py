"""Candidate objectives: latency, energy, EDP, and a silicon-area proxy.

Latency and energy come straight out of the compiled
:class:`~repro.compiler.ir.Program` — ``request_latency_s`` is the
engine-measured makespan under the prefetch schedule, and the stage
annotations carry the full per-layer energy (compute + memory + static)
the lowering computed.  The area proxy scales the paper's synthesized
28 nm breakdown (Fig. 17, :data:`~repro.arch.energy.BISHOP_BREAKDOWN`) by
the candidate's provisioning: PE-array areas grow with PE count and the
per-PE spike/register resources, the GLB area with SRAM bytes.  It is a
first-order screening model — good enough to rank frontier candidates,
not a synthesis result.

All objectives are **minimized**; frontier extraction treats the metric
dict uniformly through the objective keys.
"""

from __future__ import annotations

import dataclasses

from ..arch.config import BishopConfig
from ..arch.energy import BISHOP_BREAKDOWN, EnergyModel
from ..compiler.ir import Program

__all__ = [
    "DEFAULT_OBJECTIVES",
    "OBJECTIVES",
    "area_proxy_mm2",
    "parse_objectives",
    "program_metrics",
    "scaled_energy_model",
]

# Everything program_metrics computes that a frontier can be drawn over.
OBJECTIVES = ("latency_ms", "energy_mj", "edp_uj_ms", "area_mm2")

# The default frontier axes.  Area is deliberately one of them: across a
# space whose resource counts vary ~5x, latency and energy are both
# (weakly) monotone in provisioned silicon, so a latency/energy-only
# frontier degenerates to "the biggest chip".  The area axis restores the
# trade-off the paper's Sec.-6.1 sizing is an answer to.
DEFAULT_OBJECTIVES = ("latency_ms", "energy_mj", "area_mm2")

# Paper-chip resource anchors the proxy scales against (Sec. 6.1).
_BASE = BishopConfig()


def parse_objectives(spec: "str | tuple[str, ...] | list[str] | None") -> tuple[str, ...]:
    """``"latency_ms+energy_mj"`` (CLI form) or a sequence → validated keys."""
    if spec is None:
        return DEFAULT_OBJECTIVES
    if isinstance(spec, str):
        names = tuple(s.strip() for s in spec.split("+") if s.strip())
    else:
        names = tuple(spec)
    unknown = [n for n in names if n not in OBJECTIVES]
    if not names or unknown:
        raise ValueError(
            f"bad objectives {spec!r}; choose >= 1 of {list(OBJECTIVES)},"
            " '+'-separated"
        )
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objectives in {spec!r}")
    return names


def area_proxy_mm2(config: BishopConfig) -> float:
    """First-order die area of a chip variant, in mm².

    Each Fig.-17 component scales with its resource count; the PE-array
    terms additionally grow (sub-linearly) with per-PE datapath width —
    ``spikes_per_cycle`` widens the spike mux tree, ``psum_regs_per_pe``
    the accumulator register file.  The paper point reproduces the
    published 2.96 mm² total by construction.
    """
    parts = BISHOP_BREAKDOWN.components
    pe_width = (
        0.7 + 0.3 * config.spikes_per_cycle / _BASE.spikes_per_cycle
    ) * (0.8 + 0.2 * config.psum_regs_per_pe / _BASE.psum_regs_per_pe)
    glb_bytes = config.weight_glb_bytes + 2 * config.spike_glb_bytes
    base_glb_bytes = _BASE.weight_glb_bytes + 2 * _BASE.spike_glb_bytes
    area = parts["dense_core"][0] * (config.dense_pes / _BASE.dense_pes) * pe_width
    area += parts["attention_core"][0] * (config.attn_pes / _BASE.attn_pes) * pe_width
    area += parts["sparse_core"][0] * (config.sparse_units / _BASE.sparse_units) * pe_width
    area += parts["spike_generator"][0] * (
        config.spike_generator_lanes / _BASE.spike_generator_lanes
    )
    area += parts["glb"][0] * (glb_bytes / base_glb_bytes)
    area += parts["other"][0]
    return float(area)


def scaled_energy_model(
    config: BishopConfig, base: EnergyModel | None = None
) -> EnergyModel:
    """Energy model with leakage/clock power scaled to the candidate's area.

    The default :class:`EnergyModel` charges a fixed ``static_power_w``
    calibrated to the paper chip; a candidate provisioning 2x the silicon
    leaks and clocks ~2x as much.  Scaling by the area-proxy ratio keeps
    the paper point bit-identical (ratio 1.0) while stopping oversized
    chips from getting their static energy reduction for free as latency
    drops.  DSE evaluation compiles every candidate under this model.
    """
    base = base if base is not None else EnergyModel()
    ratio = area_proxy_mm2(config) / BISHOP_BREAKDOWN.total_area_mm2
    return dataclasses.replace(base, static_power_w=base.static_power_w * ratio)


def program_metrics(program: Program, config: BishopConfig) -> dict:
    """All candidate metrics of one compiled program on one chip config."""
    latency_s = program.request_latency_s
    energy_pj = sum(
        float(stage.annotations.get("energy_pj", 0.0)) for stage in program.stages
    )
    energy_mj = energy_pj * 1e-9
    return {
        "latency_ms": latency_s * 1e3,
        "serial_latency_ms": program.serial_latency_s * 1e3,
        "energy_mj": energy_mj,
        # EDP in µJ·ms = (mJ × ms): readable magnitudes for the zoo models.
        "edp_uj_ms": energy_mj * 1e3 * latency_s * 1e3,
        "area_mm2": area_proxy_mm2(config),
        "dynamic_energy_mj": program.dynamic_pj * 1e-9,
        "dram_mb": program.dram_bytes / 1e6,
        "bundle_occupancy": program.bundle_occupancy(),
    }
