"""The design-space DSL: typed parameters → valid Bishop chip configs.

A :class:`DesignSpace` is an ordered tuple of named parameters.  Each
parameter knows its discrete value grid (used by exhaustive enumeration
and by hypothesis-based property tests) and how to draw one value from a
seeded RNG.  A *point* is a plain ``{name: value}`` dict — JSON-safe, so
points travel through the runtime's content-addressed result cache and
the CLI unchanged.

:meth:`DesignSpace.to_config` turns a point into a
:class:`~repro.arch.BishopConfig`, routing the special keys (``bs_t`` /
``bs_n`` → the bundle spec, ``dram_gbps`` → the DRAM channel,
``dense_fraction`` → the θ_s policy) and relying on the config's own
``__post_init__`` validation so malformed points fail fast instead of
producing silently-wrong simulations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

import numpy as np

from ..arch.config import BishopConfig, resolve_overrides

__all__ = [
    "Choice",
    "DesignSpace",
    "FloatRange",
    "IntRange",
    "default_space",
    "point_key",
]


@dataclass(frozen=True)
class Choice:
    """An explicit discrete value set (the workhorse of chip geometry)."""

    name: str
    values: tuple
    default: object = None

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"parameter {self.name!r} has duplicate values")
        if self.default is not None and self.default not in self.values:
            raise ValueError(
                f"parameter {self.name!r}: default {self.default!r} not in values"
            )

    def grid(self) -> tuple:
        return self.values

    def sample(self, rng: np.random.Generator):
        return self.values[int(rng.integers(len(self.values)))]


@dataclass(frozen=True)
class IntRange:
    """Integers ``lo..hi`` inclusive, stepped (e.g. PE row counts)."""

    name: str
    lo: int
    hi: int
    step: int = 1
    default: int | None = None

    def __post_init__(self) -> None:
        if self.step < 1 or self.hi < self.lo:
            raise ValueError(f"bad range for {self.name!r}: {self.lo}..{self.hi}")
        if self.default is not None and self.default not in self.grid():
            raise ValueError(
                f"parameter {self.name!r}: default {self.default!r} not on the grid"
            )

    def grid(self) -> tuple:
        return tuple(range(self.lo, self.hi + 1, self.step))

    def sample(self, rng: np.random.Generator) -> int:
        values = self.grid()
        return int(values[int(rng.integers(len(values)))])


@dataclass(frozen=True)
class FloatRange:
    """``num`` floats spanning ``lo..hi`` (linear or logarithmic)."""

    name: str
    lo: float
    hi: float
    num: int = 5
    log: bool = False
    default: float | None = None

    def __post_init__(self) -> None:
        if self.num < 2 or self.hi <= self.lo:
            raise ValueError(f"bad range for {self.name!r}: {self.lo}..{self.hi}")
        if self.log and self.lo <= 0:
            raise ValueError(f"log range for {self.name!r} needs lo > 0")
        if self.default is not None and not any(
            abs(self.default - v) < 1e-12 for v in self.grid()
        ):
            raise ValueError(
                f"parameter {self.name!r}: default {self.default!r} not on the grid"
            )

    def grid(self) -> tuple:
        if self.log:
            points = np.geomspace(self.lo, self.hi, self.num)
        else:
            points = np.linspace(self.lo, self.hi, self.num)
        return tuple(float(v) for v in points)

    def sample(self, rng: np.random.Generator) -> float:
        values = self.grid()
        return float(values[int(rng.integers(len(values)))])


# Point keys with dedicated routing in to_config (everything else must be a
# BishopConfig field name).
_SPECIAL_KEYS = ("bs_t", "bs_n", "dram_gbps", "dense_fraction")


@dataclass(frozen=True)
class DesignSpace:
    """An ordered, named collection of chip-design parameters."""

    params: tuple

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in space: {names}")
        config_fields = {f.name for f in fields(BishopConfig)}
        unknown = [
            n for n in names if n not in _SPECIAL_KEYS and n not in config_fields
        ]
        if unknown:
            raise ValueError(
                f"space parameter(s) {unknown} are neither BishopConfig fields"
                f" nor special keys {_SPECIAL_KEYS}"
            )

    # -- structure ---------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def __getitem__(self, name: str):
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(name)

    @property
    def size(self) -> int:
        """Number of distinct grid points (the exhaustive-search volume)."""
        total = 1
        for param in self.params:
            total *= len(param.grid())
        return total

    def describe(self) -> dict:
        """JSON-safe space summary for reports."""
        return {
            "params": {p.name: list(p.grid()) for p in self.params},
            "size": self.size,
        }

    # -- points ------------------------------------------------------------
    def default_point(self) -> dict:
        """The reference point (each parameter's declared default)."""
        missing = [p.name for p in self.params if p.default is None]
        if missing:
            raise ValueError(f"parameters {missing} declare no default")
        return {p.name: p.default for p in self.params}

    def sample(self, rng: np.random.Generator) -> dict:
        return {p.name: p.sample(rng) for p in self.params}

    def grid_points(self):
        """Deterministic row-major enumeration of the full grid."""
        from itertools import product

        grids = [param.grid() for param in self.params]
        for values in product(*grids):
            yield dict(zip(self.names, values))

    def validate_point(self, point: dict) -> dict:
        """Fill defaults for missing parameters; reject unknown names and
        off-grid values (the cache key must only ever see grid points)."""
        unknown = set(point) - set(self.names)
        if unknown:
            raise ValueError(
                f"unknown space parameter(s) {sorted(unknown)};"
                f" space: {list(self.names)}"
            )
        resolved = {}
        for param in self.params:
            if param.name in point:
                value = point[param.name]
                if value not in param.grid():
                    raise ValueError(
                        f"value {value!r} for {param.name!r} is off-grid;"
                        f" options {list(param.grid())}"
                    )
                resolved[param.name] = value
            else:
                if param.default is None:
                    raise ValueError(f"parameter {param.name!r} missing (no default)")
                resolved[param.name] = param.default
        return resolved

    # -- lowering to chip configs -----------------------------------------
    def config_overrides(self, point: dict) -> dict:
        """JSON-safe :meth:`BishopConfig.with_overrides` kwargs for a point.

        This is the fleet-export format (``repro.cluster.fleet`` registers
        chip kinds from exactly these dicts): nested dataclasses appear as
        plain dicts, special keys are resolved.
        """
        point = self.validate_point(point)
        overrides: dict = {}
        bs_t = point.pop("bs_t", None)
        bs_n = point.pop("bs_n", None)
        if bs_t is not None or bs_n is not None:
            overrides["bundle_spec"] = {
                "bs_t": int(bs_t if bs_t is not None else 2),
                "bs_n": int(bs_n if bs_n is not None else 4),
            }
        dram_gbps = point.pop("dram_gbps", None)
        if dram_gbps is not None:
            overrides["dram"] = {"bandwidth_bytes_per_s": float(dram_gbps) * 1e9}
        dense_fraction = point.pop("dense_fraction", None)
        if dense_fraction is not None:
            overrides["stratify_dense_fraction"] = float(dense_fraction)
        overrides.update(point)
        return overrides

    def to_config(
        self, point: dict, base: BishopConfig | None = None
    ) -> BishopConfig:
        """Build the (validated) chip config of one design point."""
        base = base if base is not None else BishopConfig()
        return resolve_overrides(base, self.config_overrides(point))


def point_key(point: dict) -> str:
    """Canonical identity of a point (dedup + cache-key embedding)."""
    return json.dumps(point, sort_keys=True, default=float)


def default_space() -> DesignSpace:
    """The Bishop chip design space.

    Axes and their grids follow the knobs the paper itself varies or
    fixes in Sec. 6.1/6.5 — core geometries, TTB unit count, bundle
    volume, per-PE psum registers, GLB provisioning, DRAM bandwidth, and
    the θ_s split — each bracketing the paper value (the declared
    default) with smaller/cheaper and larger/faster variants.  Every grid
    point constructs a valid :class:`BishopConfig`.
    """
    return DesignSpace((
        # Dense core: rows × cols PEs (paper: 16 × 32 = 512).
        Choice("dense_rows", (8, 16, 24, 32), default=16),
        Choice("dense_cols", (16, 32, 64), default=32),
        # Sparse core TTB units (paper: 128).
        Choice("sparse_units", (32, 64, 128, 256), default=128),
        # Attention core geometry (paper: 16 × 32 = 512).
        Choice("attn_rows", (8, 16, 32), default=16),
        Choice("attn_cols", (16, 32, 64), default=32),
        # Spikes each TTB unit absorbs per cycle (paper: 10).
        Choice("spikes_per_cycle", (4, 10, 16), default=10),
        # Partial-sum registers per PE (paper: 16; Fig.-16 chunking knob).
        Choice("psum_regs_per_pe", (8, 16, 32), default=16),
        # TTB bundle volume BS_t × BS_n (paper default 2 × 4; Fig. 16).
        Choice("bs_t", (1, 2, 4), default=2),
        Choice("bs_n", (2, 4, 8), default=4),
        # GLBs (paper: 144 KB weights, 2 × 12 KB ping-pong spike GLBs).
        Choice("weight_glb_bytes", (72 * 1024, 144 * 1024, 288 * 1024),
               default=144 * 1024),
        Choice("spike_glb_bytes", (6 * 1024, 12 * 1024, 24 * 1024),
               default=12 * 1024),
        # Off-chip bandwidth in GB/s (paper: DDR4-2400 at 76.8).
        Choice("dram_gbps", (12.8, 25.6, 76.8), default=76.8),
        # θ_s policy: targeted dense-fraction split (serving default 0.5).
        Choice("dense_fraction", (0.35, 0.5, 0.65), default=0.5),
    ))
