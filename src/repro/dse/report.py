"""Human-readable rendering of a DSE frontier report.

One formatter shared by the ``repro dse`` CLI and
``examples/design_space_exploration.py``, so the table layout, the
delta-vs-paper-chip column, and the reference-standing line cannot
drift between the two surfaces.
"""

from __future__ import annotations

__all__ = ["format_frontier_report", "reference_standing"]


def _point_delta(point: dict, reference_point: dict, axes: list[str]) -> str:
    """The design as a diff against the paper chip (space-axis order)."""
    delta = ", ".join(
        f"{axis}={point[axis]}"
        for axis in axes
        if point.get(axis) != reference_point.get(axis)
    )
    return delta or "= paper chip"


def reference_standing(report: dict) -> str:
    """``"on the frontier"`` or the reference's ε-slack off it."""
    reference = report["reference"]
    if reference["on_frontier"]:
        return "on the frontier"
    return f"{reference['frontier_slack']:.1%} off the frontier"


def format_frontier_report(report: dict, top: int | None = None) -> list[str]:
    """Render the frontier table plus the paper-chip standing as lines.

    ``top`` bounds the printed frontier rows (``None`` = all); callers
    prepend their own run summary (cache hits, wall time, ...).
    """
    objectives = list(report["objectives"])
    frontier = report["frontier"]
    reference = report["reference"]
    axes = list(report["space"]["params"])  # space order, not JSON-sorted
    shown = frontier if top is None else frontier[:top]

    lines = [f"Pareto frontier: {len(frontier)} designs"]
    headers = "".join(f"{objective:>13}" for objective in objectives)
    lines.append(f"{'rank':>6}{headers}  design (vs paper chip)")
    for rank, entry in enumerate(shown):
        row = "".join(f"{entry['metrics'][o]:13.4f}" for o in objectives)
        lines.append(
            f"{rank:>6}{row}  "
            + _point_delta(entry["point"], reference["point"], axes)
        )
    if len(frontier) > len(shown):
        lines.append(f"{'':>6}... {len(frontier) - len(shown)} more designs")
    reference_row = "".join(
        f"{reference['metrics'][o]:13.4f}" for o in objectives
    )
    lines.append(f"{'paper':>6}{reference_row}  {reference_standing(report)}")
    return lines
