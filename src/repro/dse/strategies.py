"""Pluggable search strategies over a :class:`~repro.dse.space.DesignSpace`.

A strategy is an ask/tell object: the explorer repeatedly calls
:meth:`propose` for a batch of *unseen* points (so whole batches can be
evaluated in parallel through the cached runtime) and feeds the evaluated
``{"point", "metrics"}`` records back through :meth:`observe`.  All
randomness flows from the seed given at construction, which is what makes
``repro dse --seed N`` bit-deterministic.

* ``grid`` — deterministic row-major enumeration of the full grid
  (exhaustive when the budget covers the space, a prefix otherwise);
* ``random`` — seeded uniform sampling without replacement;
* ``evolutionary`` — an archive-based (μ+λ) search: parents are the
  running Pareto frontier of everything observed, children mutate one or
  two axes of a parent, with random immigrants keeping diversity.
"""

from __future__ import annotations

import numpy as np

from .objectives import DEFAULT_OBJECTIVES
from .pareto import pareto_frontier
from .space import DesignSpace, point_key

__all__ = ["STRATEGIES", "SearchStrategy", "make_strategy"]


class SearchStrategy:
    """Base: dedup bookkeeping shared by every strategy."""

    name = "strategy"

    def __init__(
        self,
        space: DesignSpace,
        seed: int = 0,
        objectives: tuple[str, ...] = DEFAULT_OBJECTIVES,
    ):
        self.space = space
        self.objectives = tuple(objectives)
        self.rng = np.random.default_rng(seed)
        self._seen: set[str] = set()

    # -- ask/tell interface ------------------------------------------------
    def propose(self, n: int) -> list[dict]:  # pragma: no cover - interface
        raise NotImplementedError

    def observe(self, results: list[dict]) -> None:
        """Default: nothing to adapt (grid/random are non-adaptive)."""

    # -- shared helpers ----------------------------------------------------
    def _claim(self, point: dict) -> bool:
        """Mark a point as proposed; False if it was already."""
        key = point_key(point)
        if key in self._seen:
            return False
        self._seen.add(key)
        return True

    def mark_seen(self, point: dict) -> None:
        """Pre-seed dedup (the explorer registers the reference point)."""
        self._seen.add(point_key(point))

    @property
    def exhausted(self) -> bool:
        return len(self._seen) >= self.space.size


class GridStrategy(SearchStrategy):
    """Row-major exhaustive enumeration (budget-truncated)."""

    name = "grid"

    def __init__(self, space, seed=0, objectives=DEFAULT_OBJECTIVES):
        super().__init__(space, seed, objectives)
        self._iterator = space.grid_points()

    def propose(self, n: int) -> list[dict]:
        batch: list[dict] = []
        for point in self._iterator:
            if not self._claim(point):
                continue
            batch.append(point)
            if len(batch) >= n:
                break
        return batch


class RandomStrategy(SearchStrategy):
    """Seeded uniform sampling without replacement."""

    name = "random"

    # Rejection-sampling patience per requested point before giving up
    # (the space may be nearly exhausted).
    MAX_TRIES_PER_POINT = 64

    def propose(self, n: int) -> list[dict]:
        batch: list[dict] = []
        tries = 0
        while len(batch) < n and tries < n * self.MAX_TRIES_PER_POINT:
            point = self.space.sample(self.rng)
            tries += 1
            if self._claim(point):
                batch.append(point)
        return batch


class EvolutionaryStrategy(SearchStrategy):
    """(μ+λ) Pareto-archive evolution with random immigrants.

    The first proposal is a random population; afterwards parents are
    drawn from the Pareto frontier of every observed candidate and
    children re-sample one or two axes (mutation).  A fixed fraction of
    each generation is random immigrants, so the search cannot collapse
    onto one basin — the behaviour successive-halving-style searches get
    from their rung promotions.
    """

    name = "evolutionary"

    IMMIGRANT_FRACTION = 0.25

    def __init__(self, space, seed=0, objectives=DEFAULT_OBJECTIVES):
        super().__init__(space, seed, objectives)
        self._archive: list[dict] = []

    def _mutate(self, point: dict) -> dict:
        child = dict(point)
        axes = list(self.space.names)
        count = 1 + int(self.rng.integers(2))  # mutate 1 or 2 axes
        picks = self.rng.choice(len(axes), size=min(count, len(axes)), replace=False)
        for index in np.atleast_1d(picks):
            param = self.space.params[int(index)]
            child[param.name] = param.sample(self.rng)
        return child

    def propose(self, n: int) -> list[dict]:
        batch: list[dict] = []
        tries = 0
        max_tries = n * RandomStrategy.MAX_TRIES_PER_POINT
        frontier_points = []
        if self._archive:
            frontier = pareto_frontier(
                [r["metrics"] for r in self._archive], self.objectives
            )
            frontier_points = [self._archive[i]["point"] for i in frontier]
        while len(batch) < n and tries < max_tries:
            tries += 1
            immigrant = (
                not frontier_points
                or self.rng.random() < self.IMMIGRANT_FRACTION
            )
            if immigrant:
                point = self.space.sample(self.rng)
            else:
                parent = frontier_points[int(self.rng.integers(len(frontier_points)))]
                point = self._mutate(parent)
            if self._claim(point):
                batch.append(point)
        return batch

    def observe(self, results: list[dict]) -> None:
        self._archive.extend(results)


STRATEGIES: dict[str, type[SearchStrategy]] = {
    strategy.name: strategy
    for strategy in (GridStrategy, RandomStrategy, EvolutionaryStrategy)
}


def make_strategy(
    name: str,
    space: DesignSpace,
    seed: int = 0,
    objectives: tuple[str, ...] = DEFAULT_OBJECTIVES,
) -> SearchStrategy:
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {name!r}; options {sorted(STRATEGIES)}"
        ) from None
    return cls(space, seed=seed, objectives=objectives)
