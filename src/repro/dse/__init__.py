"""Design-space exploration over Bishop chip configurations.

The paper justifies its architectural choices — the dense/sparse core
split, the TTB bundle volume, the θ thresholds, the GLB provisioning —
with small hand-run sweeps (Sec. 6.5, Figs. 15-16).  This subsystem
treats them as one joint, typed design space and searches it with
pluggable multi-objective strategies:

* ``repro.dse.space`` — the parameter-space DSL (:class:`Choice`,
  :class:`IntRange`, :class:`FloatRange` → :class:`DesignSpace`) and the
  default Bishop space, every point of which builds a **valid**
  :class:`~repro.arch.BishopConfig`;
* ``repro.dse.objectives`` — candidate metrics: engine-scheduled latency,
  total energy, EDP, and a synthesis-anchored silicon-area proxy;
* ``repro.dse.pareto`` — non-dominated frontier extraction and the
  ε-slack measure used to judge how far a reference chip sits from it;
* ``repro.dse.strategies`` — grid enumeration, seeded random sampling,
  and a seeded evolutionary search (mutation around the running Pareto
  archive);
* ``repro.dse.explorer`` — the orchestrator: every candidate compiles
  through ``repro.compiler`` and replays on the event engine, evaluated
  as the ``dse_point`` registry experiment through the parallel
  content-addressed runtime so sweeps are parallel, cached, and
  resumable; frontier winners export as cluster chip kinds
  (``repro.cluster.fleet``).

Surface: ``repro dse <model> [--strategy --budget --objectives --seed
--export-fleet]``, the ``dse_pareto_frontier`` / ``dse_strategy_ablation``
registry experiments, and ``examples/design_space_exploration.py``.
See ``docs/DSE.md``.
"""

from .explorer import (
    DSEConfig,
    evaluate_point,
    export_fleet_kinds,
    run_dse,
)
from .objectives import (
    DEFAULT_OBJECTIVES,
    OBJECTIVES,
    area_proxy_mm2,
    parse_objectives,
    program_metrics,
    scaled_energy_model,
)
from .pareto import dominates, frontier_slack, pareto_frontier
from .report import format_frontier_report, reference_standing
from .space import (
    Choice,
    DesignSpace,
    FloatRange,
    IntRange,
    default_space,
)
from .strategies import STRATEGIES, make_strategy

__all__ = [
    "DEFAULT_OBJECTIVES",
    "OBJECTIVES",
    "STRATEGIES",
    "Choice",
    "DSEConfig",
    "DesignSpace",
    "FloatRange",
    "IntRange",
    "area_proxy_mm2",
    "default_space",
    "dominates",
    "evaluate_point",
    "export_fleet_kinds",
    "format_frontier_report",
    "frontier_slack",
    "make_strategy",
    "pareto_frontier",
    "parse_objectives",
    "program_metrics",
    "reference_standing",
    "run_dse",
    "scaled_energy_model",
]
