"""Post-simulation analysis utilities.

Turns :class:`~repro.arch.report.InferenceReport` objects into the summaries
an architect actually reads: compute-vs-memory boundedness, per-unit
utilization, energy decomposition, and cross-accelerator comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .energy import EnergyModel
from .report import InferenceReport, LayerReport

__all__ = [
    "LayerBoundedness",
    "boundedness_profile",
    "EnergyDecomposition",
    "energy_decomposition",
    "utilization_summary",
    "speedup_table",
]


@dataclass(frozen=True)
class LayerBoundedness:
    """Whether one layer is compute- or DRAM-bound, and by how much."""

    block: int
    kind: str
    compute_time_s: float
    dram_time_s: float

    @property
    def bound(self) -> str:
        return "memory" if self.dram_time_s > self.compute_time_s else "compute"

    @property
    def imbalance(self) -> float:
        """max(compute, dram) / min(...) — 1.0 means perfectly overlapped."""
        lo = min(self.compute_time_s, self.dram_time_s)
        hi = max(self.compute_time_s, self.dram_time_s)
        return hi / lo if lo > 0 else float("inf")


def boundedness_profile(report: InferenceReport) -> list[LayerBoundedness]:
    """Classify every layer (layers lacking timing notes are skipped)."""
    out = []
    for layer in report.layers:
        if "compute_time_s" not in layer.notes:
            continue
        out.append(
            LayerBoundedness(
                block=layer.block,
                kind=layer.kind,
                compute_time_s=layer.notes["compute_time_s"],
                dram_time_s=layer.notes["dram_time_s"],
            )
        )
    return out


@dataclass(frozen=True)
class EnergyDecomposition:
    """Whole-inference energy split (fractions of total)."""

    compute: float
    memory: float
    spike_generation: float
    static: float
    memory_by_kind: dict[str, float]

    def dominant(self) -> str:
        parts = {
            "compute": self.compute,
            "memory": self.memory,
            "spike_generation": self.spike_generation,
            "static": self.static,
        }
        return max(parts, key=parts.get)


def energy_decomposition(
    report: InferenceReport, energy_model: EnergyModel | None = None
) -> EnergyDecomposition:
    total = report.total_energy_pj
    if total <= 0:
        raise ValueError("report has no energy recorded")
    compute = sum(l.energy.compute_pj for l in report.layers)
    memory = sum(l.energy.memory_pj for l in report.layers)
    spikes = sum(l.energy.spike_gen_pj for l in report.layers)
    static = sum(l.energy.static_pj for l in report.layers)
    by_kind = report.memory_energy_share_by_kind(energy_model or EnergyModel())
    return EnergyDecomposition(
        compute=compute / total,
        memory=memory / total,
        spike_generation=spikes / total,
        static=static / total,
        memory_by_kind=by_kind,
    )


def utilization_summary(report: InferenceReport) -> dict[str, float]:
    """Mean/min/max datapath utilization across layers (0 omitted)."""
    values = [l.utilization for l in report.layers if l.utilization > 0]
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": float(np.mean(values)),
        "min": float(np.min(values)),
        "max": float(np.max(values)),
    }


def speedup_table(
    baseline: InferenceReport, candidate: InferenceReport
) -> dict[str, float]:
    """Totals and per-phase speedups of ``candidate`` over ``baseline``."""
    table = {
        "total_speedup": baseline.total_latency_s / candidate.total_latency_s,
        "total_energy_gain": baseline.total_energy_pj / candidate.total_energy_pj,
        "edp_gain": baseline.edp / candidate.edp,
    }
    for phase in ("P1", "ATN", "P2", "MLP"):
        base_phase = baseline.phase_latency(phase)
        cand_phase = candidate.phase_latency(phase)
        if base_phase > 0 and cand_phase > 0:
            table[f"{phase}_speedup"] = base_phase / cand_phase
    return table
