"""TT-Bundle Sparse Core — SIGMA-like engine for irregular bundles (Sec. 5.4).

The sparse core processes the stratified low-density partition ``X_S·W_S``.
Following SIGMA [38], a flexible distribution network assigns *only active*
(bundle, feature) pairs to the ``sparse_units`` parallel TTB units, and a
configurable reduction network merges partial sums — so unlike the lockstep
systolic dense core, fully irregular sparsity converts 1:1 into saved time
(at the price of network overhead and per-pair weight gathers).

Model, per active pair (bundle b, input feature d):
* the unit fetches the weight row ``W[d, :]`` once (intra-bundle reuse: one
  fetch serves the bundle's whole ``BS_t × BS_n`` payload, matching the
  paper's "multi-bit weight data reuse when processing different tokens and
  time points within a bundle");
* it accumulates the bundle payload into ``O`` output partial sums,
  ``⌈volume/spikes_per_cycle⌉`` cycles per output feature.

Cycles = ``⌈active_pairs / units⌉ × O × ⌈volume/lanes⌉ × overhead``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bundles import TTBGrid
from .config import BishopConfig
from .energy import EnergyModel
from .memory import TrafficLedger, bundle_storage_bytes

__all__ = ["SparseCoreResult", "simulate_sparse_core"]


@dataclass(frozen=True)
class SparseCoreResult:
    """Cycle/op/traffic outcome of one layer's sparse partition."""

    cycles: float
    sparse_ops: float
    active_pairs: float
    utilization: float
    traffic: TrafficLedger
    waves: int = 0     # distribution-network waves — the engine's acquire grain

    def time_s(self, config: BishopConfig) -> float:
        return self.cycles / config.clock_hz

    def compute_energy_pj(self, energy: EnergyModel) -> float:
        return energy.compute_pj("sparse", self.sparse_ops)


def simulate_sparse_core(
    spikes: np.ndarray,
    out_features: int,
    config: BishopConfig,
) -> SparseCoreResult:
    """Simulate the sparse core on ``spikes (T, N, D_sparse)`` × ``(D_sparse, O)``."""
    traffic = TrafficLedger()
    t, n, d_in = spikes.shape
    if d_in == 0 or out_features == 0 or spikes.size == 0:
        return SparseCoreResult(0.0, 0.0, 0.0, 0.0, traffic)

    spec = config.bundle_spec
    grid = TTBGrid(spikes, spec)
    active_pairs = float(grid.num_active_bundles)
    if active_pairs == 0:
        return SparseCoreResult(0.0, 0.0, 0.0, 0.0, traffic)

    # TTB units hold one psum per bundle slot; oversized bundles split into
    # chunks that re-gather their weight rows (same register budget as the
    # dense core's PEs).
    chunks = -(-spec.volume // config.psum_regs_per_pe)
    chunk_volume = -(-spec.volume // chunks)
    volume_cycles = -(-chunk_volume // config.spikes_per_cycle) * chunks
    waves = -(-active_pairs // config.sparse_units)
    cycles = waves * out_features * volume_cycles * config.sparse_overhead

    sparse_ops = active_pairs * spec.volume * out_features
    peak = cycles * config.sparse_throughput
    utilization = float(sparse_ops / peak) if peak else 0.0

    # Per-pair weight-row gather (intra-bundle reuse only; irregular patterns
    # defeat inter-bundle reuse — the reason dense features go elsewhere).
    # Chunked bundles re-gather their rows once per chunk.
    weight_bytes = active_pairs * chunks * out_features * config.weight_bits / 8.0
    traffic.add("glb", "weight", weight_bytes)
    act_bytes = bundle_storage_bytes(active_pairs, spec.volume, grid.num_bundles)
    traffic.add("glb", "activation", act_bytes)
    psum_bytes = (
        grid.n_bt * grid.n_bn * spec.volume * out_features
        * config.accumulator_bits / 8.0
    )
    traffic.add("spad", "output", psum_bytes)

    return SparseCoreResult(
        cycles=cycles,
        sparse_ops=sparse_ops,
        active_pairs=active_pairs,
        utilization=utilization,
        traffic=traffic,
        waves=int(waves),
    )
