"""The Bishop accelerator simulator (systems S9-S16)."""

from .accelerator import BishopAccelerator
from .analysis import (
    EnergyDecomposition,
    LayerBoundedness,
    boundedness_profile,
    energy_decomposition,
    speedup_table,
    utilization_summary,
)
from .engine import (
    BishopMachine,
    Engine,
    EngineRun,
    LayerTiming,
    TimelineEntry,
    inference_process,
    layer_timings,
    scheduled_inference_process,
    simulate_inference,
)
from .pipeline import PipelineSchedule, pipeline_schedule
from .sram import SRAMEstimate, estimate_sram, glb_configuration_estimate
from .attention_core import (
    AttentionCoreResult,
    merge_attention_heads,
    simulate_attention_core,
)
from .config import BishopConfig, DRAMConfig, PTBConfig, resolve_overrides
from .dense_core import DenseCoreResult, simulate_dense_core
from .energy import (
    AreaPowerBreakdown,
    BISHOP_BREAKDOWN,
    EnergyModel,
    PTB_BREAKDOWN,
)
from .memory import TrafficLedger, bundle_storage_bytes, spike_payload_bytes
from .report import EnergyBreakdown, InferenceReport, LayerReport
from .sparse_core import SparseCoreResult, simulate_sparse_core
from .spike_generator import SpikeGeneratorResult, simulate_spike_generator
from .stratifier import (
    StratifiedWorkload,
    balanced_theta,
    stratify,
    theta_for_dense_fraction,
)

__all__ = [
    "BishopAccelerator",
    "BishopConfig",
    "PTBConfig",
    "DRAMConfig",
    "resolve_overrides",
    "EnergyModel",
    "AreaPowerBreakdown",
    "BISHOP_BREAKDOWN",
    "PTB_BREAKDOWN",
    "TrafficLedger",
    "bundle_storage_bytes",
    "spike_payload_bytes",
    "EnergyBreakdown",
    "InferenceReport",
    "LayerReport",
    "StratifiedWorkload",
    "stratify",
    "balanced_theta",
    "theta_for_dense_fraction",
    "DenseCoreResult",
    "simulate_dense_core",
    "SparseCoreResult",
    "simulate_sparse_core",
    "AttentionCoreResult",
    "simulate_attention_core",
    "merge_attention_heads",
    "SpikeGeneratorResult",
    "simulate_spike_generator",
    "SRAMEstimate",
    "estimate_sram",
    "glb_configuration_estimate",
    "PipelineSchedule",
    "pipeline_schedule",
    "BishopMachine",
    "Engine",
    "EngineRun",
    "LayerTiming",
    "TimelineEntry",
    "inference_process",
    "layer_timings",
    "scheduled_inference_process",
    "simulate_inference",
    "LayerBoundedness",
    "boundedness_profile",
    "EnergyDecomposition",
    "energy_decomposition",
    "utilization_summary",
    "speedup_table",
]
