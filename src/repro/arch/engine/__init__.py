"""Discrete-event engine for the heterogeneous-core simulator.

``kernel``
    Event queue, shared clock, cooperative processes, contended resources.
``timeline``
    Timeline records and the :class:`EngineRun` result container.
``machine``
    The Bishop chip as engine resources plus the per-layer task graph.
``fastpath``
    Vectorized closed-form replay of uncontended task graphs (the
    ``REPRO_ENGINE=fast`` default; ``kernel`` selects the event heap).

See docs/ARCHITECTURE.md for the event model and how a core plugs in.
"""

from .fastpath import FastSchedule, engine_mode, schedule_for
from .kernel import (
    Acquire,
    Command,
    Engine,
    Gate,
    Hold,
    Join,
    Process,
    Release,
    Resource,
    ResourceStats,
    WaitFor,
)
from .machine import (
    BishopMachine,
    LayerTiming,
    inference_process,
    layer_timings,
    scheduled_inference_process,
    simulate_inference,
)
from .timeline import (
    EngineRun,
    TimelineEntry,
    entries_from_dicts,
    entries_to_dicts,
    merge_timelines,
    use,
)

__all__ = [
    "Acquire",
    "BishopMachine",
    "Command",
    "Engine",
    "EngineRun",
    "FastSchedule",
    "Gate",
    "Hold",
    "Join",
    "LayerTiming",
    "Process",
    "Release",
    "Resource",
    "ResourceStats",
    "TimelineEntry",
    "WaitFor",
    "engine_mode",
    "entries_from_dicts",
    "entries_to_dicts",
    "inference_process",
    "layer_timings",
    "merge_timelines",
    "schedule_for",
    "scheduled_inference_process",
    "simulate_inference",
    "use",
]
