"""Discrete-event engine for the heterogeneous-core simulator.

``kernel``
    Event queue, shared clock, cooperative processes, contended resources.
``timeline``
    Timeline records and the :class:`EngineRun` result container.
``machine``
    The Bishop chip as engine resources plus the per-layer task graph.

See docs/ARCHITECTURE.md for the event model and how a core plugs in.
"""

from .kernel import (
    Acquire,
    Command,
    Engine,
    Gate,
    Hold,
    Join,
    Process,
    Release,
    Resource,
    ResourceStats,
    WaitFor,
)
from .machine import (
    BishopMachine,
    LayerTiming,
    inference_process,
    layer_timings,
    scheduled_inference_process,
    simulate_inference,
)
from .timeline import (
    EngineRun,
    TimelineEntry,
    entries_from_dicts,
    entries_to_dicts,
    merge_timelines,
    use,
)

__all__ = [
    "Acquire",
    "BishopMachine",
    "Command",
    "Engine",
    "EngineRun",
    "Gate",
    "Hold",
    "Join",
    "LayerTiming",
    "Process",
    "Release",
    "Resource",
    "ResourceStats",
    "TimelineEntry",
    "WaitFor",
    "entries_from_dicts",
    "entries_to_dicts",
    "inference_process",
    "layer_timings",
    "merge_timelines",
    "scheduled_inference_process",
    "simulate_inference",
    "use",
]
