"""Discrete-event kernel: event queue, shared clock, cooperative processes.

The engine owns a single simulated clock and a heap-ordered event queue.
Work is expressed as *processes* — plain Python generators that yield
:class:`Command` objects back to the kernel:

``Hold(dt)``
    Advance this process ``dt`` simulated seconds into the future.
``Acquire(resource)`` / ``Release(resource)``
    Claim / give back one unit of a contended :class:`Resource`
    (FIFO-granted; blocked processes wait in the resource's queue).
``Join(process)``
    Suspend until another process finishes.
``WaitFor(gate)``
    Suspend until the gate is signalled (condition-variable style; the
    waiter must re-check its predicate after waking).

Determinism: simultaneous events are ordered by a monotonically increasing
sequence number, so a simulation is a pure function of its inputs — the
property the result cache and the engine-vs-analytical regression tests
rely on.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Generator

from ... import obs

__all__ = [
    "Acquire",
    "Command",
    "Engine",
    "Gate",
    "Hold",
    "Join",
    "Process",
    "Release",
    "Resource",
    "ResourceStats",
    "WaitFor",
]


class Command:
    """Base class of every instruction a process may yield to the kernel."""


@dataclass(frozen=True)
class Hold(Command):
    """Occupy simulated time: resume the process after ``duration`` seconds."""

    duration: float

    def __post_init__(self) -> None:
        # NaN fails every comparison, so a plain `< 0` check would let it
        # through and silently corrupt the heap's time ordering.
        if not math.isfinite(self.duration):
            raise ValueError(f"cannot hold a non-finite duration {self.duration}")
        if self.duration < 0:
            raise ValueError(f"cannot hold a negative duration {self.duration}")


@dataclass(frozen=True)
class Acquire(Command):
    """Claim one unit of ``resource`` (blocks while fully occupied)."""

    resource: "Resource"


@dataclass(frozen=True)
class Release(Command):
    """Give back one unit of ``resource``."""

    resource: "Resource"


@dataclass(frozen=True)
class Join(Command):
    """Wait for another process to finish."""

    process: "Process"


@dataclass(frozen=True)
class WaitFor(Command):
    """Sleep until the gate is next signalled."""

    gate: "Gate"


class Process:
    """A running generator, scheduled by the engine."""

    def __init__(self, engine: "Engine", generator: Generator, name: str):
        self.engine = engine
        self.generator = generator
        self.name = name
        self.done = False
        self.started_at = engine.now
        self.finished_at: float | None = None
        self._joiners: list["Process"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class Gate:
    """Broadcast wake-up: every process waiting at signal time resumes."""

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._waiters: list[Process] = []

    def signal(self) -> None:
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine._resume(process)


@dataclass
class ResourceStats:
    """Occupancy accounting of one resource over a finished run."""

    busy_s: float = 0.0          # ∫ units-in-use dt
    wait_s: float = 0.0          # total time processes spent queued
    acquisitions: int = 0

    def utilization(self, horizon_s: float, capacity: int = 1) -> float:
        if horizon_s <= 0:
            return 0.0
        return self.busy_s / (horizon_s * capacity)


class Resource:
    """A contended unit of hardware (core, DRAM channel, scheduler slot).

    ``capacity`` units may be held simultaneously; further acquirers queue
    FIFO and are granted in order as units free up.
    """

    def __init__(self, engine: "Engine", name: str, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"resource {name!r} needs capacity >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self.stats = ResourceStats()
        self._queue: deque[tuple[Process, float]] = deque()
        self._last_change = engine.now

    def _integrate(self) -> None:
        now = self.engine.now
        self.stats.busy_s += self.in_use * (now - self._last_change)
        self._last_change = now

    def _grant(self, process: Process) -> None:
        self._integrate()
        self.in_use += 1
        self.stats.acquisitions += 1
        self.engine._resume(process)

    def _acquire(self, process: Process) -> None:
        if self.in_use < self.capacity:
            self._grant(process)
        else:
            self._queue.append((process, self.engine.now))

    def _release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self._integrate()
        self.in_use -= 1
        if self._queue and self.in_use < self.capacity:
            process, enqueued_at = self._queue.popleft()
            self.stats.wait_s += self.engine.now - enqueued_at
            self._grant(process)

    @property
    def queued(self) -> int:
        return len(self._queue)


class Engine:
    """The discrete-event simulator: one clock, one event heap."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.resources: dict[str, Resource] = {}

    # -- construction ------------------------------------------------------
    def resource(self, name: str, capacity: int = 1) -> Resource:
        if name in self.resources:
            raise ValueError(f"duplicate resource {name!r}")
        resource = Resource(self, name, capacity)
        self.resources[name] = resource
        return resource

    def gate(self) -> Gate:
        return Gate(self)

    def spawn(self, generator: Generator, name: str = "process") -> Process:
        process = Process(self, generator, name)
        self.schedule(0.0, lambda: self._step(process, None))
        return process

    # -- event queue -------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if not math.isfinite(delay):
            raise ValueError(f"cannot schedule a non-finite delay {delay}")
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s into the past")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn))

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; returns the final simulated time.

        With ``until`` the clock always lands exactly on ``until`` (never
        earlier, never backwards) whether events remain or the heap drains
        first — the invariant incremental window-stepped draining relies on.
        """
        with obs.span("engine.run", cat="engine"):
            while self._heap:
                time, _, fn = self._heap[0]
                if until is not None and time > until:
                    self.now = until
                    return self.now
                heapq.heappop(self._heap)
                self.now = time
                fn()
            if until is not None and until > self.now:
                self.now = until
            return self.now

    # -- process stepping --------------------------------------------------
    def _resume(self, process: Process, value: object = None) -> None:
        self.schedule(0.0, lambda: self._step(process, value))

    def _step(self, process: Process, value: object) -> None:
        try:
            send = getattr(process.generator, "send", None)
            # Generators receive the resume value; plain iterators of
            # commands are also accepted (handy in tests).
            command = send(value) if send is not None else next(process.generator)
        except StopIteration:
            process.done = True
            process.finished_at = self.now
            for joiner in process._joiners:
                self._resume(joiner, process)
            process._joiners.clear()
            return
        if isinstance(command, Hold):
            self.schedule(command.duration, lambda: self._step(process, None))
        elif isinstance(command, Acquire):
            command.resource._acquire(process)
        elif isinstance(command, Release):
            command.resource._release()
            self._resume(process)
        elif isinstance(command, Join):
            if command.process.done:
                self._resume(process, command.process)
            else:
                command.process._joiners.append(process)
        elif isinstance(command, WaitFor):
            command.gate._waiters.append(process)
        else:
            raise TypeError(
                f"process {process.name!r} yielded {command!r}; expected a Command"
            )
