"""Event timelines: what ran where, when — the engine's observable output.

A :class:`TimelineEntry` records one contiguous occupancy of one resource
by one labelled task.  :func:`use` is the canonical way a process occupies
a resource: it acquires, holds, records, releases — optionally in several
chunks (TTB tile granularity), releasing the resource between chunks so
concurrent requests can interleave at tile boundaries.

:class:`EngineRun` packages a finished simulation: makespan, energy, the
recorded timeline, and per-resource occupancy statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .kernel import Acquire, Engine, Hold, Release, Resource, ResourceStats

__all__ = [
    "EngineRun",
    "TimelineEntry",
    "entries_from_dicts",
    "entries_to_dicts",
    "merge_timelines",
    "use",
]


@dataclass(frozen=True)
class TimelineEntry:
    """One task's contiguous occupancy of one resource."""

    resource: str
    label: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "resource": self.resource,
            "label": self.label,
            "start_s": self.start_s,
            "end_s": self.end_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TimelineEntry":
        return cls(
            resource=str(payload["resource"]),
            label=str(payload["label"]),
            start_s=float(payload["start_s"]),
            end_s=float(payload["end_s"]),
        )


def merge_timelines(*timelines: list[TimelineEntry]) -> list[TimelineEntry]:
    """Merge per-machine timelines into one deterministic total order.

    Entries are ordered by ``(start_s, end_s, resource, label)``: when two
    chips emit events at the same timestamp, the namespaced resource name
    (``chip0.dense_core`` < ``chip1.dense_core``) breaks the tie, so the
    merged order is a pure function of the entries — independent of which
    machine's timeline was recorded or passed first.
    """
    merged = [entry for timeline in timelines for entry in timeline]
    merged.sort(key=lambda e: (e.start_s, e.end_s, e.resource, e.label))
    return merged


def entries_to_dicts(entries: list[TimelineEntry]) -> list[dict]:
    """JSON-ready timeline payload (inverse of :func:`entries_from_dicts`)."""
    return [entry.to_dict() for entry in entries]


def entries_from_dicts(payload: list[dict]) -> list[TimelineEntry]:
    return [TimelineEntry.from_dict(item) for item in payload]


def use(
    engine: Engine,
    resource: Resource,
    duration_s: float,
    timeline: list[TimelineEntry] | None = None,
    label: str = "",
    chunks: int = 1,
):
    """Occupy ``resource`` for ``duration_s``, in ``chunks`` equal quanta.

    With ``chunks > 1`` the resource is released between quanta, so a
    queued competitor can slot in at tile boundaries — the acquire/release
    granularity of the heterogeneous-core model.  Zero-duration work never
    touches the resource but still records a zero-width entry, so
    zero-cost layers stay visible in timelines and occupancy reports
    agree with the compiled program's stage list.
    """
    if duration_s <= 0.0:
        if timeline is not None:
            timeline.append(
                TimelineEntry(resource.name, label, engine.now, engine.now)
            )
        return
    chunks = max(1, int(chunks))
    quantum = duration_s / chunks
    for _ in range(chunks):
        yield Acquire(resource)
        start = engine.now
        yield Hold(quantum)
        if timeline is not None:
            timeline.append(
                TimelineEntry(resource.name, label, start, engine.now)
            )
        yield Release(resource)


@dataclass
class EngineRun:
    """Outcome of one engine simulation.

    ``energy_pj`` covers dynamic energy of the simulated work plus static
    energy over the makespan; for a single request it reproduces the
    analytical :class:`~repro.arch.report.InferenceReport` total exactly
    (the regression-test oracle).
    """

    makespan_s: float
    energy_pj: float
    timeline: list[TimelineEntry] = field(default_factory=list)
    resource_stats: dict[str, ResourceStats] = field(default_factory=dict)
    resource_capacity: dict[str, int] = field(default_factory=dict)

    def utilization(self) -> dict[str, float]:
        """Busy fraction of each resource over the makespan."""
        return {
            name: stats.utilization(
                self.makespan_s, self.resource_capacity.get(name, 1)
            )
            for name, stats in self.resource_stats.items()
        }

    def busy_s(self, resource: str) -> float:
        return self.resource_stats[resource].busy_s

    def to_dict(self) -> dict:
        """JSON-ready payload: the shape ``repro analyze`` consumes."""
        return {
            "makespan_s": self.makespan_s,
            "energy_pj": self.energy_pj,
            "timeline": entries_to_dicts(self.timeline),
            "utilization": self.utilization(),
        }

    def critical_path(self):
        """The binding-resource chain bounding this run's makespan.

        Delegates to :func:`repro.obs.analyze.critical_path` (imported
        lazily — the engine package is imported *by* ``repro.obs``, so
        the dependency must stay call-time only); see there for the
        exactness guarantees.
        """
        from ...obs.analyze import critical_path

        return critical_path(self)

    @classmethod
    def capture(
        cls,
        engine: Engine,
        energy_pj: float = 0.0,
        timeline: list[TimelineEntry] | None = None,
    ) -> "EngineRun":
        """Snapshot a drained engine into a result object.

        Stats are copied, so the snapshot stays stable even if the engine
        is run further (``run(until=...)`` supports incremental draining);
        in-flight holds are integrated up to ``engine.now`` first so a
        mid-run snapshot reports the elapsed occupancy.
        """
        for resource in engine.resources.values():
            resource._integrate()
        return cls(
            makespan_s=engine.now,
            energy_pj=energy_pj,
            timeline=list(timeline or []),
            resource_stats={
                name: replace(resource.stats)
                for name, resource in engine.resources.items()
            },
            resource_capacity={
                name: resource.capacity
                for name, resource in engine.resources.items()
            },
        )
