"""Vectorized fast path: replay compiled task graphs without the event heap.

The event kernel (``kernel.py``) walks one heap event per acquire / hold /
release, which is exact but costs tens of microseconds per layer — the
bottleneck of every serve, cluster, and DSE sweep.  For the *uncontended*
single-request case the schedule is a pure function of the per-layer task
durations, so it can be evaluated in closed form over numpy arrays:

* **serial** (the legacy ``run_trace`` semantics) — per layer, compute ∥
  DRAM with a barrier: ``Σ max(batch·compute, weights + batch·activation)``;
* **scheduled** (the compiler's depth-1 weight prefetch) — a linear
  recurrence over the DRAM channel's deterministic FIFO service order
  ``a₀, w₀, w₁, a₁, w₂, a₂, …`` (a layer's activation traffic enqueues
  before the *next* layer's weight prefetch; at ties the prefetcher wins
  the channel before the newly started layer's activation enqueues —
  exactly the kernel's event ordering).

A :class:`FastSchedule` is built once per distinct timing tuple (they are
hashable value objects, so :func:`schedule_for` memoizes across requests,
chips, and compile passes) and then answers makespan queries in O(layers)
with no generator churn.  The event kernel stays the reference
implementation: ``REPRO_ENGINE=kernel`` routes every consumer back through
it, and the fastpath-vs-kernel equivalence tests pin the two to ~1e-9.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .kernel import ResourceStats
from .machine import BishopMachine, LayerTiming
from .timeline import EngineRun, TimelineEntry

__all__ = ["FastSchedule", "engine_mode", "schedule_for"]

ENGINE_MODES = ("fast", "kernel")


def engine_mode() -> str:
    """The active engine implementation: ``REPRO_ENGINE=fast|kernel``.

    Read per call (not cached) so tests and CLI runs can flip the mode via
    the environment at any point; defaults to the vectorized fast path.
    """
    mode = os.environ.get("REPRO_ENGINE", "fast").strip().lower()
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"REPRO_ENGINE={mode!r}: expected one of {'|'.join(ENGINE_MODES)}"
        )
    return mode


@dataclass(frozen=True, eq=False)
class FastSchedule:
    """One task graph's per-layer durations as columnar numpy arrays.

    Batch scaling happens at query time — compute and activation traffic
    scale with the batch, weights stream once — so one schedule serves
    every batch size of the same compiled program.
    """

    timings: tuple[LayerTiming, ...]
    dense: np.ndarray
    sparse: np.ndarray
    attention: np.ndarray
    spike: np.ndarray
    weight: np.ndarray          # DRAM seconds, streamed once per batch
    activation: np.ndarray      # DRAM seconds, streamed per request
    compute: np.ndarray         # max(dense, sparse) + attention + spike
    dynamic_pj: float
    weight_dram_pj: float

    @classmethod
    def from_timings(cls, timings: tuple[LayerTiming, ...]) -> "FastSchedule":
        timings = tuple(timings)

        def column(attr: str) -> np.ndarray:
            return np.array(
                [getattr(t, attr) for t in timings], dtype=np.float64
            )

        dense = column("dense_s")
        sparse = column("sparse_s")
        attention = column("attention_s")
        spike = column("spike_gen_s")
        return cls(
            timings=timings,
            dense=dense,
            sparse=sparse,
            attention=attention,
            spike=spike,
            weight=column("weight_dram_s"),
            activation=column("activation_dram_s"),
            compute=np.maximum(dense, sparse) + attention + spike,
            dynamic_pj=float(column("dynamic_pj").sum()),
            weight_dram_pj=float(column("weight_dram_pj").sum()),
        )

    def __len__(self) -> int:
        return len(self.timings)

    # -- energy ------------------------------------------------------------
    def batch_dynamic_pj(self, batch: int = 1) -> float:
        """Dynamic energy of one batched request (weights stream once)."""
        return (self.dynamic_pj - self.weight_dram_pj) * batch + self.weight_dram_pj

    @property
    def sparse_core_share(self) -> float:
        """Fraction of core-seconds spent on the sparse core."""
        total = float((self.dense + self.sparse + self.attention + self.spike).sum())
        return float(self.sparse.sum()) / total if total > 0 else 0.0

    # -- makespans -----------------------------------------------------------
    def serial_makespan(self, batch: int = 1) -> float:
        """Layer-serial makespan: ``Σ max(compute, dram)`` (vectorized)."""
        if not self.timings:
            return 0.0
        return float(
            np.maximum(
                batch * self.compute, self.weight + batch * self.activation
            ).sum()
        )

    def scheduled_makespan(self, batch: int = 1) -> float:
        """Depth-1 weight-prefetch makespan (the scheduling pass's emission).

        Mirrors :func:`~repro.arch.engine.machine.scheduled_inference_process`
        event for event: the single DRAM channel serves, FIFO,
        ``a₀, w₀, w₁, a₁, w₂, a₂, …`` where layer ``i``'s weights may
        stream once layer ``i-1`` has started and the previous weight
        stream finished, and a layer completes when its compute, its
        activation stream, and its own weight stream are all done.
        """
        compute = (batch * self.compute).tolist()
        weight = self.weight.tolist()
        activation = (batch * self.activation).tolist()
        finish = 0.0        # completion time of the previous layer
        prev_start = 0.0    # when the previous layer started (prefetch gate)
        channel = 0.0       # DRAM channel free time (last FIFO service end)
        weights_done = 0.0  # when the previous layer's weight stream ended
        for index, (c, w, a) in enumerate(zip(compute, weight, activation)):
            start = finish
            if index == 0:
                # Layer 0: its activation enqueues before the prefetcher
                # even exists, so it wins the channel over w0.
                a_end = 0.0
                if a > 0:
                    channel += a
                    a_end = channel
                if w > 0:
                    channel += w
                    weights_done = channel
            else:
                # w_i is requested at max(prev weights done, prev layer
                # start) — never later than this layer's start, and at ties
                # the prefetcher's acquire lands before the new layer's
                # activation enqueues, so w_i is served first.
                if w > 0:
                    channel = max(channel, weights_done, prev_start) + w
                    new_done = channel
                else:
                    new_done = max(weights_done, prev_start)
                if a > 0:
                    channel = max(channel, start) + a
                    a_end = channel
                else:
                    a_end = start
                weights_done = new_done
            finish = max(start + c, a_end, weights_done)
            prev_start = start
        return finish

    # -- replay --------------------------------------------------------------
    def serial_run(
        self,
        batch: int = 1,
        label: str = "request",
        record_timeline: bool = True,
    ) -> EngineRun:
        """Synthesize the serial replay's :class:`EngineRun` without events.

        Entry labels match the kernel's (``{label}/L{i}.{kind}:dense`` …),
        but same-resource runs are coalesced: one entry per layer task
        instead of one per tile quantum, so timeline sizes scale with
        layers.  Zero-duration attention/spike tasks still record a
        zero-width entry (mirroring :func:`~.timeline.use`) without
        counting an acquisition.  ``energy_pj`` is left at 0 for the
        caller to fill in (static energy needs the energy model).
        """
        n = len(self.timings)
        compute = batch * self.compute
        dram = self.weight + batch * self.activation
        spans = np.maximum(compute, dram)
        ends = np.cumsum(spans)
        starts = ends - spans
        makespan = float(ends[-1]) if n else 0.0

        timeline: list[TimelineEntry] = []
        if record_timeline:
            for i, t in enumerate(self.timings):
                s = float(starts[i])
                layer = f"{label}/L{i}.{t.kind}"
                if t.phase == "ATN":
                    pre = batch * t.attention_s
                    timeline.append(
                        TimelineEntry("attention_core", f"{layer}:attn", s, s + pre)
                    )
                else:
                    pre = batch * max(t.dense_s, t.sparse_s)
                    if t.dense_s > 0:
                        timeline.append(TimelineEntry(
                            "dense_core", f"{layer}:dense", s, s + batch * t.dense_s
                        ))
                    if t.sparse_s > 0:
                        timeline.append(TimelineEntry(
                            "sparse_core", f"{layer}:sparse", s, s + batch * t.sparse_s
                        ))
                timeline.append(TimelineEntry(
                    "spike_gen", f"{layer}:spike_gen",
                    s + pre, s + pre + batch * t.spike_gen_s,
                ))
                if dram[i] > 0:
                    timeline.append(TimelineEntry(
                        "dram", f"{layer}:dram", s, s + float(dram[i])
                    ))

        busy = {
            "dense_core": float((batch * self.dense).sum()),
            "sparse_core": float((batch * self.sparse).sum()),
            "attention_core": float((batch * self.attention).sum()),
            "spike_gen": float((batch * self.spike).sum()),
            "dram": float(dram.sum()),
        }
        acquisitions = {
            "dense_core": int(np.count_nonzero(self.dense > 0)),
            "sparse_core": int(np.count_nonzero(self.sparse > 0)),
            "attention_core": int(np.count_nonzero(self.attention > 0)),
            "spike_gen": int(np.count_nonzero(self.spike > 0)),
            "dram": int(np.count_nonzero(dram > 0)),
        }
        return EngineRun(
            makespan_s=makespan,
            energy_pj=0.0,
            timeline=timeline,
            resource_stats={
                name: ResourceStats(
                    busy_s=busy[name], acquisitions=acquisitions[name]
                )
                for name in BishopMachine.RESOURCE_NAMES
            },
            resource_capacity={
                name: 1 for name in BishopMachine.RESOURCE_NAMES
            },
        )


@lru_cache(maxsize=1024)
def _schedule_for(timings: tuple[LayerTiming, ...]) -> FastSchedule:
    return FastSchedule.from_timings(timings)


def schedule_for(timings: tuple[LayerTiming, ...]) -> FastSchedule:
    """The memoized :class:`FastSchedule` of a timing tuple.

    :class:`LayerTiming` is a frozen value dataclass, so equal task graphs
    — every request of the same compiled program, every schedule-pass
    measurement of the same chip — share one precomputed schedule.
    """
    return _schedule_for(tuple(timings))
