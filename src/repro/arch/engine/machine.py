"""The Bishop chip as a set of contended engine resources (Fig. 9).

The analytical core models (``dense_core``/``sparse_core``/``attention_core``
/``spike_generator``) stay the single source of truth for *how long* each
unit works on a layer; this module turns those per-layer numbers into
:class:`LayerTiming` task descriptors and replays them on the event engine,
where the five shared units — dense core, sparse core, attention core,
spike generator, DRAM channel — are :class:`~repro.arch.engine.kernel.Resource`
objects that requests acquire and release per TTB tile.

For a single request the event schedule reproduces the closed-form
``Σ max(compute, dram)`` latency exactly (the regression-test oracle); its
value is contention: multiple in-flight requests queue on the same
resources, which is what the serving layer (``repro.serve``) measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BishopConfig
from ..energy import EnergyModel
from ..report import InferenceReport, LayerReport
from .kernel import Engine, Join, Resource, WaitFor
from .timeline import EngineRun, TimelineEntry, use

__all__ = [
    "BishopMachine",
    "LayerTiming",
    "inference_process",
    "layer_timings",
    "scheduled_inference_process",
    "simulate_inference",
    "stage_process",
]

# Upper bound on acquire/release quanta per core task: tile-granular
# interleaving with a cap so event counts stay linear in layers, not tiles.
MAX_QUANTA = 8


@dataclass(frozen=True)
class LayerTiming:
    """One layer's engine task durations, extracted from a LayerReport."""

    block: int
    kind: str
    phase: str
    dense_s: float = 0.0
    sparse_s: float = 0.0
    attention_s: float = 0.0
    spike_gen_s: float = 0.0
    weight_dram_s: float = 0.0
    activation_dram_s: float = 0.0
    dynamic_pj: float = 0.0        # layer energy minus the static share
    weight_dram_pj: float = 0.0    # the part a batch streams only once
    dense_tiles: int = 1
    sparse_tiles: int = 1
    attention_tiles: int = 1

    @property
    def compute_s(self) -> float:
        """Critical-path compute time (parallel cores, then spike gen)."""
        return max(self.dense_s, self.sparse_s) + self.attention_s + self.spike_gen_s

    def dram_s(self, batch: int = 1) -> float:
        """DRAM channel time: weights stream once per batch, activations per
        request (the double-buffered GLBs hold one request's working set)."""
        return self.weight_dram_s + batch * self.activation_dram_s

    def batch_dynamic_pj(self, batch: int = 1) -> float:
        return (self.dynamic_pj - self.weight_dram_pj) * batch + self.weight_dram_pj


def layer_timing(
    layer: LayerReport,
    config: BishopConfig,
    energy: EnergyModel,
) -> LayerTiming:
    """Extract engine task durations from one analytic layer report."""
    clock = config.clock_hz
    units = layer.unit_cycles
    weight_bytes = layer.traffic.bytes(level="dram", kind="weight")
    activation_bytes = layer.traffic.bytes(level="dram") - weight_bytes
    if layer.phase == "ATN":
        attention_s = (units.get("mode1", 0.0) + units.get("mode2", 0.0)) / clock
        dense_s = sparse_s = 0.0
    else:
        attention_s = 0.0
        dense_s = units.get("dense", 0.0) / clock
        sparse_s = units.get("sparse", 0.0) / clock
    return LayerTiming(
        block=layer.block,
        kind=layer.kind,
        phase=layer.phase,
        dense_s=dense_s,
        sparse_s=sparse_s,
        attention_s=attention_s,
        spike_gen_s=units.get("spike_gen", 0.0) / clock,
        weight_dram_s=config.dram.transfer_time_s(weight_bytes),
        activation_dram_s=config.dram.transfer_time_s(activation_bytes),
        dynamic_pj=layer.energy.total_pj - layer.energy.static_pj,
        weight_dram_pj=energy.memory_pj("dram", weight_bytes),
        dense_tiles=int(layer.notes.get("dense_tiles", 1)),
        sparse_tiles=int(layer.notes.get("sparse_tiles", 1)),
        attention_tiles=int(layer.notes.get("attention_tiles", 1)),
    )


def layer_timings(
    report: InferenceReport,
    config: BishopConfig,
    energy: EnergyModel | None = None,
) -> tuple[LayerTiming, ...]:
    energy = energy or EnergyModel()
    return tuple(layer_timing(layer, config, energy) for layer in report.layers)


class BishopMachine:
    """One Bishop chip: the five contended resources of Fig. 9.

    Several machines may share one :class:`Engine` (the cluster clock):
    pass a unique ``name`` and every resource is registered under the
    ``<name>.<unit>`` namespace, so chips contend only with themselves.
    With ``name=None`` (the single-chip default) resource names stay bare,
    which is what the zoo regression oracle and ``repro.serve`` pin.
    """

    RESOURCE_NAMES = ("dense_core", "sparse_core", "attention_core", "spike_gen", "dram")

    def __init__(self, engine: Engine, name: str | None = None):
        self.engine = engine
        self.name = name
        prefix = f"{name}." if name else ""
        self.dense_core = engine.resource(f"{prefix}dense_core")
        self.sparse_core = engine.resource(f"{prefix}sparse_core")
        self.attention_core = engine.resource(f"{prefix}attention_core")
        self.spike_gen = engine.resource(f"{prefix}spike_gen")
        self.dram = engine.resource(f"{prefix}dram")

    @property
    def resources(self) -> dict[str, Resource]:
        """Short (un-prefixed) unit name → engine resource."""
        return {
            "dense_core": self.dense_core,
            "sparse_core": self.sparse_core,
            "attention_core": self.attention_core,
            "spike_gen": self.spike_gen,
            "dram": self.dram,
        }


def _quanta(tiles: int) -> int:
    # Fast mode coalesces same-resource event runs: one acquire/hold/release
    # per layer task, so contended serve/cluster event counts scale with
    # layers, not tiles.  Kernel mode keeps tile-granular interleaving.
    from .fastpath import engine_mode  # local: fastpath imports this module

    if engine_mode() == "fast":
        return 1
    return max(1, min(int(tiles), MAX_QUANTA))


def _compute_chain(
    engine: Engine,
    machine: BishopMachine,
    timing: LayerTiming,
    label: str,
    batch: int,
    timeline: list[TimelineEntry] | None,
):
    """Core occupancy of one layer: dense ∥ sparse (or attention), then the
    spike generator merges/fires — the Fig.-9 dataflow as engine tasks."""
    if timing.phase == "ATN":
        yield from use(
            engine, machine.attention_core, timing.attention_s * batch,
            timeline, f"{label}:attn", _quanta(timing.attention_tiles),
        )
    else:
        cores = []
        if timing.dense_s > 0:
            cores.append(engine.spawn(
                use(engine, machine.dense_core, timing.dense_s * batch,
                    timeline, f"{label}:dense", _quanta(timing.dense_tiles)),
                name=f"{label}:dense",
            ))
        if timing.sparse_s > 0:
            cores.append(engine.spawn(
                use(engine, machine.sparse_core, timing.sparse_s * batch,
                    timeline, f"{label}:sparse", _quanta(timing.sparse_tiles)),
                name=f"{label}:sparse",
            ))
        for core in cores:
            yield Join(core)
    yield from use(
        engine, machine.spike_gen, timing.spike_gen_s * batch,
        timeline, f"{label}:spike_gen", 1,
    )


def stage_process(
    engine: Engine,
    machine: BishopMachine,
    timing: LayerTiming,
    label: str,
    batch: int = 1,
    timeline: list[TimelineEntry] | None = None,
):
    """One compiled ``Stage`` (layer) of a batched inference, in isolation.

    The compute chain and the stage's DRAM streaming run concurrently
    (double-buffered GLBs); the stage completes when both finish —
    ``max(compute, dram)`` when uncontended, longer when another request
    holds a core or the DRAM channel.  This is the schedulable quantum of
    the serving layer: :func:`inference_process` walks all stages
    back-to-back, while the continuous-batching scheduler
    (``repro.serve.continuous``) re-forms its execution groups *between*
    stage boundaries — the `TileOp`/`Stage` preemption points.
    """
    compute = engine.spawn(
        _compute_chain(engine, machine, timing, label, batch, timeline),
        name=f"{label}:compute",
    )
    dram_s = timing.dram_s(batch)
    dram = None
    if dram_s > 0:
        dram = engine.spawn(
            use(engine, machine.dram, dram_s, timeline, f"{label}:dram", 1),
            name=f"{label}:dram",
        )
    yield Join(compute)
    if dram is not None:
        yield Join(dram)


def inference_process(
    engine: Engine,
    machine: BishopMachine,
    timings: tuple[LayerTiming, ...],
    label: str = "request",
    batch: int = 1,
    timeline: list[TimelineEntry] | None = None,
):
    """One (possibly batched) inference walking the layer chain.

    Per layer, one :func:`stage_process`: compute and DRAM concurrent,
    layers strictly serial.
    """
    for index, timing in enumerate(timings):
        yield from stage_process(
            engine, machine, timing, f"{label}/L{index}.{timing.kind}",
            batch, timeline,
        )


def scheduled_inference_process(
    engine: Engine,
    machine: BishopMachine,
    timings: tuple[LayerTiming, ...],
    label: str = "request",
    batch: int = 1,
    timeline: list[TimelineEntry] | None = None,
):
    """One inference under the compiler's depth-1 weight-prefetch schedule.

    The scheduling pass's emission: a prefetcher process streams each
    layer's *weights* as soon as the DRAM channel frees up and the previous
    layer's compute has started (the ping-pong weight GLB holds one layer in
    use plus one filling), while the compute chain walks the layers.  A
    layer still completes only when its compute, its activation streaming,
    and its weight stream have all finished — weights are consumed
    tile-by-tile, so compute can never outrun the stream — which keeps the
    schedule causal and makes its makespan ≤ the layer-serial
    :func:`inference_process` makespan (equal when one resource dominates
    every layer, strictly smaller on mixed compute-/memory-bound chains).
    """
    n = len(timings)
    compute_started = [False] * n
    weights_done = [False] * n
    started_gate = engine.gate()
    weights_gate = engine.gate()

    def prefetcher():
        for index, timing in enumerate(timings):
            # Depth-1 double buffer: layer i's weights may stream only once
            # layer i-1 has begun computing (its own weights left the GLB).
            while index > 0 and not compute_started[index - 1]:
                yield WaitFor(started_gate)
            if timing.weight_dram_s > 0:
                yield from use(
                    engine, machine.dram, timing.weight_dram_s,
                    timeline, f"{label}/L{index}.{timing.kind}:dram.w", 1,
                )
            weights_done[index] = True
            weights_gate.signal()

    prefetch = None
    for index, timing in enumerate(timings):
        compute_started[index] = True
        layer_label = f"{label}/L{index}.{timing.kind}"
        compute = engine.spawn(
            _compute_chain(engine, machine, timing, layer_label, batch, timeline),
            name=f"{layer_label}:compute",
        )
        activation_s = batch * timing.activation_dram_s
        activation = None
        if activation_s > 0:
            activation = engine.spawn(
                use(engine, machine.dram, activation_s, timeline,
                    f"{layer_label}:dram.a", 1),
                name=f"{layer_label}:dram.a",
            )
        # The prefetcher is spawned — and, on later layers, woken — only
        # after this layer's own streams are in the DRAM queue: a layer's
        # activation traffic must never end up FIFO-queued behind the
        # *next* layer's weight prefetch.
        if prefetch is None:
            prefetch = engine.spawn(prefetcher(), name=f"{label}:prefetch")
        started_gate.signal()
        yield Join(compute)
        if activation is not None:
            yield Join(activation)
        while not weights_done[index]:
            yield WaitFor(weights_gate)


def simulate_inference(
    report: InferenceReport,
    config: BishopConfig,
    energy: EnergyModel | None = None,
    record_timeline: bool = True,
) -> EngineRun:
    """Replay one analytic inference report on the event engine.

    Single request, no contention: the makespan equals the closed-form
    ``Σ max(compute, dram)`` and the energy equals the analytical total —
    the agreement the zoo regression test pins to 1%.

    In fast mode (the ``REPRO_ENGINE`` default) the replay is synthesized
    by the vectorized :mod:`~repro.arch.engine.fastpath` — same makespan,
    energy, and (coalesced) timeline, no event heap.
    """
    energy = energy or EnergyModel()
    timings = layer_timings(report, config, energy)
    from ... import obs
    from .fastpath import engine_mode, schedule_for

    mode = engine_mode()
    obs.inc(f"engine.dispatch.{mode}")
    with obs.span(
        "engine.simulate", cat="engine", model=report.model_name, mode=mode
    ):
        if mode == "fast":
            schedule = schedule_for(timings)
            run = schedule.serial_run(
                batch=1, label=report.model_name, record_timeline=record_timeline
            )
            run.energy_pj = schedule.dynamic_pj + energy.static_pj(run.makespan_s)
            return run
        engine = Engine()
        machine = BishopMachine(engine)
        timeline: list[TimelineEntry] | None = [] if record_timeline else None
        engine.spawn(
            inference_process(
                engine, machine, timings, report.model_name, 1, timeline
            ),
            name=report.model_name,
        )
        engine.run()
        dynamic_pj = sum(timing.dynamic_pj for timing in timings)
        return EngineRun.capture(
            engine,
            energy_pj=dynamic_pj + energy.static_pj(engine.now),
            timeline=timeline,
        )
