"""TT-Bundle Dense Core — output-stationary systolic array (Sec. 5.4).

Organization (Fig. 9): ``dense_rows`` TT-bundles × ``dense_cols`` output
features, 512 PEs total.  Spiking bundles flow top-to-bottom, coordinated
weights flow left-to-right, partial sums stay in PE registers
(output-stationary).  Each PE executes Select-ACcumulate (SAC) operations —
one MUX + one accumulator — on up to ``spikes_per_cycle`` spikes per cycle.

Weight reuse:
* intra-bundle — one weight serves all ``BS_t × BS_n`` spikes of a bundle;
* inter-bundle — the same weight row serves all bundles in a row-tile, and
  is re-streamed once per bundle-row tile (``⌈B/rows⌉`` passes per layer),
  instead of once per token-time as in conventional spike-serial dataflows.

Cycle model: per (bundle-row-tile × output-tile), the array streams the
layer's input features; each step costs ``⌈volume/spikes_per_cycle⌉`` cycles
for rows whose bundle is active, and is skipped (tag lookahead) otherwise.
Rows advance in lockstep, so a feature step costs the maximum over the
tile's rows — fully-inactive feature columns vanish, partially-active ones
do not (this is why stratification matters: mixed-density workloads stall
the dense array).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bundles import BundleSpec, TTBGrid
from .config import BishopConfig
from .energy import EnergyModel
from .memory import TrafficLedger, bundle_storage_bytes

__all__ = ["DenseCoreResult", "simulate_dense_core"]


@dataclass(frozen=True)
class DenseCoreResult:
    """Cycle/op/traffic outcome of one layer's dense partition."""

    cycles: float
    sac_ops: float
    idle_slots: float
    utilization: float
    traffic: TrafficLedger
    tiles: int = 0     # bundle-row × output tiles — the engine's acquire grain

    def time_s(self, config: BishopConfig) -> float:
        return self.cycles / config.clock_hz

    def compute_energy_pj(self, energy: EnergyModel) -> float:
        """Active select-accumulates plus clocked-but-gated slot overhead —
        the lockstep array pays a toll for every stall it forces."""
        return energy.compute_pj("sac", self.sac_ops) + energy.compute_pj(
            "idle", self.idle_slots
        )


def simulate_dense_core(
    spikes: np.ndarray,
    out_features: int,
    config: BishopConfig,
    skip_inactive: bool | None = None,
) -> DenseCoreResult:
    """Simulate the dense core on ``spikes (T, N, D_dense)`` × ``(D_dense, O)``.

    ``spikes`` is the stratified dense partition (already restricted to the
    dense feature set).  Returns cycles, SAC operation count, utilization,
    and the GLB/spad traffic the pass generates.
    """
    if skip_inactive is None:
        skip_inactive = config.skip_inactive_bundles
    traffic = TrafficLedger()
    t, n, d_in = spikes.shape
    if d_in == 0 or out_features == 0:
        return DenseCoreResult(0.0, 0.0, 0.0, 0.0, traffic)

    spec: BundleSpec = config.bundle_spec
    grid = TTBGrid(spikes, spec)
    num_bundles = grid.n_bt * grid.n_bn
    active = grid.active.reshape(num_bundles, d_in)          # (B, D_in)

    # A bundle larger than the PE's psum register file is processed in
    # chunks, re-streaming the weights once per chunk (Fig.-16 penalty).
    chunks = -(-spec.volume // config.psum_regs_per_pe)
    chunk_volume = -(-spec.volume // chunks)
    volume_cycles = -(-chunk_volume // config.spikes_per_cycle) * chunks

    row_tiles = -(-num_bundles // config.dense_rows)
    col_tiles = -(-out_features // config.dense_cols)

    # --- cycles ---------------------------------------------------------
    cycles = 0.0
    total_needed_steps = 0.0
    occupied_slots = 0.0
    for tile in range(row_tiles):
        rows = active[tile * config.dense_rows : (tile + 1) * config.dense_rows]
        if skip_inactive:
            # A feature step is needed iff any row in the tile is active for
            # that feature (lockstep: the slowest row paces the column).
            needed_steps = float(rows.any(axis=0).sum())
        else:
            needed_steps = float(d_in)
        total_needed_steps += needed_steps
        cycles += needed_steps * volume_cycles
        occupied_slots += (
            needed_steps * volume_cycles * config.spikes_per_cycle * rows.shape[0]
        )
    cycles *= col_tiles
    cycles += (row_tiles * col_tiles) * config.pipeline_fill_cycles
    occupied_slots *= col_tiles * config.dense_cols

    # --- operations (energy) ---------------------------------------------
    # Each active (bundle, feature) pair costs `volume` SAC lane-slots per
    # output feature; gated slots in occupied lockstep steps still pay the
    # clocked-idle toll (registers toggle, clock tree runs).
    active_pairs = float(active.sum()) if skip_inactive else float(active.size)
    sac_ops = active_pairs * spec.volume * out_features
    idle_slots = max(0.0, occupied_slots - sac_ops)

    # --- utilization ------------------------------------------------------
    peak_ops = cycles * config.dense_throughput
    utilization = float(sac_ops / peak_ops) if peak_ops else 0.0

    # --- traffic ----------------------------------------------------------
    # Weights stream through the array once per bundle-row tile (and once
    # per psum-register chunk), but only for input features some bundle in
    # the tile actually needs — the activity tags gate weight fetches as
    # well as compute (the structured weight skipping BSA amplifies).
    weight_bytes = (
        total_needed_steps * chunks * out_features * config.weight_bits / 8.0
    )
    traffic.add("glb", "weight", weight_bytes)
    # Activation bundles are re-broadcast once per output tile; only active
    # payloads move (plus the tag bitmap).
    act_bytes = bundle_storage_bytes(
        active.sum() if skip_inactive else active.size,
        spec.volume,
        active.size,
    )
    traffic.add("glb", "activation", act_bytes * col_tiles)
    # Output partial sums drain to the output buffer once per tile pass.
    psum_bytes = num_bundles * spec.volume * out_features * config.accumulator_bits / 8.0
    traffic.add("spad", "output", psum_bytes)

    return DenseCoreResult(
        cycles=cycles,
        sac_ops=sac_ops,
        idle_slots=idle_slots,
        utilization=utilization,
        traffic=traffic,
        tiles=row_tiles * col_tiles,
    )
