"""Spike Generator — sparse-dense addition + parallel LIF update (Fig. 9).

Partial sums streaming out of the dense and sparse cores (or the attention
core's rescaled ``Y``) are merged, added to each neuron's membrane potential,
compared against ``V_th``, conditionally reset, and the binary output spikes
are written back to the TTB GLBs.  Up to ``spike_generator_lanes`` neurons
update per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import BishopConfig
from .energy import EnergyModel
from .memory import TrafficLedger, spike_payload_bytes

__all__ = ["SpikeGeneratorResult", "simulate_spike_generator"]


@dataclass(frozen=True)
class SpikeGeneratorResult:
    """Cycle/energy outcome of generating one layer's output spikes."""

    cycles: float
    updates: float
    traffic: TrafficLedger

    def time_s(self, config: BishopConfig) -> float:
        return self.cycles / config.clock_hz

    def compute_energy_pj(self, energy: EnergyModel) -> float:
        return energy.compute_pj("lif", self.updates)


def simulate_spike_generator(
    timesteps: int,
    tokens: int,
    out_features: int,
    config: BishopConfig,
) -> SpikeGeneratorResult:
    """LIF updates for a ``(T, N, D_out)`` output tensor.

    Membrane state forces time-serial processing per neuron, but the
    ``N × D_out`` neurons update in parallel across lanes, so the cycle count
    is ``T × ⌈N·D_out / lanes⌉``.
    """
    neurons = tokens * out_features
    updates = float(timesteps * neurons)
    cycles = float(timesteps * -(-neurons // config.spike_generator_lanes))
    traffic = TrafficLedger()
    # Binary output spikes written back to the spike TTB GLB.
    traffic.add("glb", "activation", spike_payload_bytes(timesteps * tokens, out_features))
    return SpikeGeneratorResult(cycles=cycles, updates=updates, traffic=traffic)
