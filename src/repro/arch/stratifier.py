"""The TTB stratifier — Algorithm 1 of the paper.

For each input feature ``i``, compare the number of active bundles in column
``i`` against the stratification threshold ``θ_s``: features with more active
bundles than ``θ_s`` are routed (with their weight rows) to the dense core,
the rest to the sparse core.  The feature-index buffers ``R_D``/``R_S``
realign the weight matrix, so ``X_D·W_D + X_S·W_S = X·W`` exactly — the
partition is a correctness-preserving reordering (property-tested).

``θ_s`` selection: Sec. 6.5.1 shows EDP is near-optimal when the threshold
approximately balances the two cores' latencies; :func:`balanced_theta`
implements that search, and :func:`theta_for_dense_fraction` realizes the
"targeted dense-to-sparse split ratio" strategies of Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bundles import BundleSpec, TTBGrid

__all__ = [
    "StratifiedWorkload",
    "stratify",
    "theta_for_dense_fraction",
    "balanced_theta",
]


@dataclass(frozen=True)
class StratifiedWorkload:
    """Output of Algorithm 1 for one layer's input spikes."""

    dense_features: np.ndarray   # R_D: indices routed to the dense core
    sparse_features: np.ndarray  # R_S: indices routed to the sparse core
    theta: float                 # θ_s actually applied
    active_per_feature: np.ndarray

    @property
    def num_features(self) -> int:
        return len(self.dense_features) + len(self.sparse_features)

    @property
    def dense_fraction(self) -> float:
        return len(self.dense_features) / self.num_features if self.num_features else 0.0

    def split(self, spikes: np.ndarray, weights: np.ndarray | None = None):
        """Partition ``spikes (T,N,D)`` (and optionally ``weights (D,O)``).

        Returns ``(x_dense, x_sparse)`` or, with weights,
        ``(x_dense, w_dense, x_sparse, w_sparse)``.
        """
        x_dense = spikes[:, :, self.dense_features]
        x_sparse = spikes[:, :, self.sparse_features]
        if weights is None:
            return x_dense, x_sparse
        return (
            x_dense,
            weights[self.dense_features, :],
            x_sparse,
            weights[self.sparse_features, :],
        )


def stratify(
    spikes: np.ndarray, spec: BundleSpec, theta: float
) -> StratifiedWorkload:
    """Algorithm 1: route features with ``active_bundles > θ_s`` to the dense
    core, the rest to the sparse core."""
    grid = TTBGrid(spikes, spec)
    counts = grid.active_per_feature
    dense = np.flatnonzero(counts > theta)
    sparse = np.flatnonzero(counts <= theta)
    return StratifiedWorkload(
        dense_features=dense,
        sparse_features=sparse,
        theta=float(theta),
        active_per_feature=counts,
    )


def theta_for_dense_fraction(
    spikes: np.ndarray, spec: BundleSpec, dense_fraction: float
) -> float:
    """θ_s that routes approximately ``dense_fraction`` of features dense.

    Implements the Fig.-15 "targeted dense-to-sparse split" strategies: the
    threshold is the (1 - fraction) quantile of the per-feature active-bundle
    counts.
    """
    if not 0.0 <= dense_fraction <= 1.0:
        raise ValueError(f"dense_fraction must be in [0, 1], got {dense_fraction}")
    counts = TTBGrid(spikes, spec).active_per_feature
    if dense_fraction >= 1.0:
        return -1.0                      # every feature is > -1 → all dense
    if dense_fraction <= 0.0:
        return float(counts.max())       # nothing exceeds the max → all sparse
    return float(np.quantile(counts, 1.0 - dense_fraction, method="lower"))


def balanced_theta(
    spikes: np.ndarray,
    spec: BundleSpec,
    dense_time_fn,
    sparse_time_fn,
    num_candidates: int = 16,
) -> float:
    """Pick θ_s minimizing ``max(dense core time, sparse core time)``.

    ``dense_time_fn(workload)`` / ``sparse_time_fn(workload)`` are callbacks
    supplied by the accelerator so the search uses the real cycle models.
    Candidates are quantiles of the per-feature activity distribution.
    """
    counts = TTBGrid(spikes, spec).active_per_feature
    unique = np.unique(counts)
    if len(unique) > num_candidates:
        quantiles = np.linspace(0.0, 1.0, num_candidates)
        candidates = np.unique(np.quantile(unique, quantiles, method="lower"))
    else:
        candidates = unique
    best_theta, best_time = float(candidates[0]), np.inf
    for theta in candidates:
        workload = stratify(spikes, spec, float(theta))
        bottleneck = max(dense_time_fn(workload), sparse_time_fn(workload))
        if bottleneck < best_time:
            best_time = bottleneck
            best_theta = float(theta)
    return best_theta
