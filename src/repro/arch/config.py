"""Hardware configuration of the Bishop accelerator (Sec. 6.1 parameters).

Paper values: the TT-bundle sparse core has up to 128 parallel TTB units;
the TTB dense core and TTB attention core each have 512 PEs (32 output
features × 16 TT-bundles in parallel); each TTB unit processes up to 10
spikes per cycle; the spike generator handles up to 512 neurons in parallel;
144 KB weight GLB; 2 × 12 KB ping-pong spike TTB GLBs; DDR4-2400 at
76.8 GB/s; 500 MHz clock in a 28 nm process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from ..bundles import BundleSpec

__all__ = ["DRAMConfig", "BishopConfig", "PTBConfig", "resolve_overrides"]


@dataclass(frozen=True)
class DRAMConfig:
    """Off-chip memory: DDR4-2400 numbers from the paper."""

    bandwidth_bytes_per_s: float = 76.8e9
    power_w: float = 0.3239
    energy_pj_per_byte: float = 20.0   # interface + core energy per byte

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"DRAM bandwidth must be positive, got {self.bandwidth_bytes_per_s}"
            )
        if self.power_w < 0 or self.energy_pj_per_byte < 0:
            raise ValueError("DRAM power/energy constants must be non-negative")

    def transfer_time_s(self, num_bytes: float) -> float:
        return num_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class BishopConfig:
    """The accelerator's architectural hyperparameters."""

    bundle_spec: BundleSpec = field(default_factory=lambda: BundleSpec(2, 4))
    # Dense core: dense_rows TT-bundles × dense_cols output features = 512 PEs.
    dense_rows: int = 16
    dense_cols: int = 32
    # Sparse core: SIGMA-like with parallel TTB units.
    sparse_units: int = 128
    sparse_overhead: float = 1.2       # distribution/reduction network slack
    # Attention core: same 512-PE organization, reconfigurable AAC/SAC.
    attn_rows: int = 16
    attn_cols: int = 32
    attn_utilization: float = 0.85     # fill/imbalance derate
    # TTB units process up to this many spikes per cycle (paper: 10).
    spikes_per_cycle: int = 10
    # Partial-sum registers per PE: a bundle whose volume exceeds this is
    # processed in chunks, re-streaming its weights per chunk — the register
    # budget behind Fig. 16's penalty for oversized bundle volumes.
    psum_regs_per_pe: int = 16
    spike_generator_lanes: int = 512
    clock_hz: float = 500e6
    weight_bits: int = 8
    accumulator_bits: int = 24
    score_bits: int = 8                # attention scores: 6-10 bits
    # Memories.
    weight_glb_bytes: int = 144 * 1024
    spike_glb_bytes: int = 12 * 1024   # each of the two ping-pong GLBs
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    # Policies (ablation switches).
    use_stratifier: bool = True
    skip_inactive_bundles: bool = True
    stratify_dense_fraction: float | None = None  # None → balance core times
    stratify_theta: float | None = None           # explicit θ_s overrides
    pipeline_fill_cycles: int = 64

    def __post_init__(self) -> None:
        if self.dense_rows < 1 or self.dense_cols < 1:
            raise ValueError(
                f"dense core must have PEs, got {self.dense_rows}x{self.dense_cols}"
            )
        if self.attn_rows < 1 or self.attn_cols < 1:
            raise ValueError(
                f"attention core must have PEs, got {self.attn_rows}x{self.attn_cols}"
            )
        if self.sparse_units < 1:
            raise ValueError(f"sparse core needs TTB units, got {self.sparse_units}")
        if self.sparse_overhead < 1.0:
            raise ValueError(
                f"sparse_overhead is a >=1 network derate, got {self.sparse_overhead}"
            )
        if not 0.0 < self.attn_utilization <= 1.0:
            raise ValueError(
                f"attn_utilization must be in (0, 1], got {self.attn_utilization}"
            )
        if self.spikes_per_cycle < 1:
            raise ValueError("spikes_per_cycle must be >= 1")
        if self.psum_regs_per_pe < 1:
            raise ValueError(
                f"psum_regs_per_pe must be >= 1, got {self.psum_regs_per_pe}"
            )
        if self.spike_generator_lanes < 1:
            raise ValueError(
                f"spike_generator_lanes must be >= 1, got {self.spike_generator_lanes}"
            )
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.weight_glb_bytes < 1 or self.spike_glb_bytes < 1:
            raise ValueError(
                "GLB sizes must be positive, got"
                f" weight={self.weight_glb_bytes} spike={self.spike_glb_bytes}"
            )
        if self.stratify_dense_fraction is not None and not (
            0.0 <= self.stratify_dense_fraction <= 1.0
        ):
            raise ValueError(
                "stratify_dense_fraction must be in [0, 1],"
                f" got {self.stratify_dense_fraction}"
            )
        if self.pipeline_fill_cycles < 0:
            raise ValueError(
                f"pipeline_fill_cycles must be >= 0, got {self.pipeline_fill_cycles}"
            )

    @property
    def dense_pes(self) -> int:
        return self.dense_rows * self.dense_cols

    @property
    def attn_pes(self) -> int:
        return self.attn_rows * self.attn_cols

    @property
    def total_pes(self) -> int:
        return self.dense_pes + self.attn_pes + self.sparse_units

    @property
    def dense_throughput(self) -> int:
        """Peak SAC operations per cycle of the dense core."""
        return self.dense_pes * self.spikes_per_cycle

    @property
    def sparse_throughput(self) -> int:
        return self.sparse_units * self.spikes_per_cycle

    @property
    def attn_throughput(self) -> int:
        """Peak AAC/SAC operations per cycle of the attention core."""
        return self.attn_pes * self.spikes_per_cycle

    def with_overrides(self, **kwargs) -> "BishopConfig":
        return replace(self, **kwargs)


def resolve_overrides(base: BishopConfig, overrides: Mapping) -> BishopConfig:
    """``with_overrides`` that also accepts JSON-safe nested sub-configs.

    Chip-kind profiles (``repro.cluster.fleet``) and DSE fleet exports
    carry ``bundle_spec`` / ``dram`` as plain dicts; this resolves them
    against the base config's values, so a kind file round-trips through
    JSON without losing the nested dataclasses.
    """
    resolved = dict(overrides)
    spec = resolved.get("bundle_spec")
    if isinstance(spec, Mapping):
        resolved["bundle_spec"] = replace(
            base.bundle_spec, **{k: int(v) for k, v in spec.items()}
        )
    dram = resolved.get("dram")
    if isinstance(dram, Mapping):
        resolved["dram"] = replace(base.dram, **dram)
    return base.with_overrides(**resolved)


@dataclass(frozen=True)
class PTBConfig:
    """The PTB baseline [27], matched in PE count / area (Sec. 6.1).

    PTB packs spiking activity across a *time window* only (paper: effective
    for 100-300 steps, weak for the 4-20 steps of spiking transformers) and
    has no token bundling, no stratified heterogeneous cores, and no
    dedicated attention core.
    """

    pe_count: int = 1152               # = 512 + 512 + 128, equal-area match
    time_window: int = 10              # time points batched per PE
    # PTB's published PE performs one spike-accumulate per cycle; the time
    # window batches *weight reuse*, not throughput.  We grant two parallel
    # accumulate lanes per PE (a generous equal-area reading of "identical
    # compute resources", see DESIGN.md calibration notes).
    lanes_per_pe: int = 2
    mapping_efficiency: float = 0.8    # transformer matmuls on a CNN/FC array
    clock_hz: float = 500e6
    weight_bits: int = 8
    score_bits: int = 8
    accumulator_bits: int = 24
    # PTB exploits spike sparsity within a window, but skipping is
    # fine-grained and desynchronizes the systolic flow; only part of the
    # skippable work converts into saved cycles.
    skip_efficiency: float = 0.4
    weight_glb_bytes: int = 156 * 1024  # same total SRAM budget
    act_glb_bytes: int = 12 * 1024
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    pipeline_fill_cycles: int = 64

    @property
    def throughput(self) -> float:
        """Effective select-accumulate ops per cycle on matmul workloads."""
        return self.pe_count * self.lanes_per_pe * self.mapping_efficiency

    # Without Bishop's reconfigurable AAC/SAC datapath and score-stationary
    # mode, the array must stage the multi-bit attention scores through its
    # weight path, stalling most cycles (the Sec.-5.5 motivation for a
    # dedicated attention core).
    attention_staging_efficiency: float = 0.3

    @property
    def attention_throughput(self) -> float:
        """Attention ops per cycle: both operands are time-indexed, so PTB's
        time-window batching buys nothing — one op per PE per cycle, further
        derated by multi-bit score staging."""
        return (
            self.pe_count
            * self.mapping_efficiency
            * self.attention_staging_efficiency
        )

    def effective_time_lanes(self, timesteps: int) -> int:
        """Time points actually packed per PE — the short-T weakness."""
        return max(1, min(timesteps, self.time_window))

    def with_overrides(self, **kwargs) -> "PTBConfig":
        return replace(self, **kwargs)
