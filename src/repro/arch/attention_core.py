"""TT-Bundle Attention Core — reconfigurable AAC/SAC systolic array (Sec. 5.5).

Two-step spiking attention on binary Q/K/V:

* **Mode 1** (And-ACcumulate, S-stationary): Q bundles flow left→right, K
  tokens stream top→bottom; each PE ANDs binary Q/K bits and accumulates the
  attention score ``S`` in a local register.  K-tokens are reused intra- and
  inter-Q-bundle.
* **Mode 2** (Select-ACcumulate, S-stationary): ``S`` stays in the PE
  registers — the multi-bit scores never travel — while binary ``V`` streams
  and selects scores into ``Y`` partial sums; ``Y`` is rescaled by the
  power-of-two factor ``s`` (a shifter) and fed to the spike generator.

ECP (Sec. 5.1) runs ahead of the core: pruned Q bundle-rows and K rows are
never fetched nor scheduled, so compute shrinks by the *product* of the two
surviving fractions, V fetches shrink with K, and Y writebacks with Q.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algo import ECPConfig, ecp_prune_qk
from ..bundles import TTBGrid
from .config import BishopConfig
from .energy import EnergyModel
from .memory import TrafficLedger, bundle_storage_bytes

__all__ = ["AttentionCoreResult", "simulate_attention_core", "merge_attention_heads"]


def merge_attention_heads(per_head: np.ndarray) -> np.ndarray:
    """``(T, H, N, d)`` → full-feature ``(T, N, H·d)`` (concat of heads)."""
    t, h, n, d = per_head.shape
    return per_head.transpose(0, 2, 1, 3).reshape(t, n, h * d)


@dataclass(frozen=True)
class AttentionCoreResult:
    """Outcome of one spiking self-attention layer on the attention core."""

    mode1_cycles: float
    mode2_cycles: float
    aac_ops: float                 # Mode-1 AND-accumulates
    sac_ops: float                 # Mode-2 select-accumulates
    q_keep_fraction: float         # after ECP ∧ activity skipping
    k_keep_fraction: float
    utilization: float
    traffic: TrafficLedger
    tiles: int = 0                 # Q-row × K-column tiles — engine acquire grain

    @property
    def cycles(self) -> float:
        return self.mode1_cycles + self.mode2_cycles

    def time_s(self, config: BishopConfig) -> float:
        return self.cycles / config.clock_hz

    def compute_energy_pj(self, energy: EnergyModel) -> float:
        return energy.compute_pj("aac", self.aac_ops) + energy.compute_pj(
            "sac", self.sac_ops
        )

    @property
    def score_compute_fraction(self) -> float:
        """Surviving share of the dense S computation (the Fig.-7 compounding)."""
        return self.q_keep_fraction * self.k_keep_fraction


def _row_survivors(
    spikes_full: np.ndarray, config: BishopConfig, keep_rows: np.ndarray | None
) -> np.ndarray:
    """Token-time keep mask ``(T, N)``: ECP survivors ∧ bundle activity."""
    grid = TTBGrid(spikes_full, config.bundle_spec)
    rows = grid.active_per_bundle_row > 0 if config.skip_inactive_bundles else np.ones(
        (grid.n_bt, grid.n_bn), dtype=bool
    )
    if keep_rows is not None:
        rows = rows & keep_rows
    spec = config.bundle_spec
    per_time = np.repeat(rows, spec.bs_t, axis=0)[: spikes_full.shape[0]]
    return np.repeat(per_time, spec.bs_n, axis=1)[:, : spikes_full.shape[1]]


def simulate_attention_core(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    config: BishopConfig,
    ecp: ECPConfig | None = None,
) -> AttentionCoreResult:
    """Simulate one SSA layer: ``q, k, v`` are binary ``(T, H, N, d)``.

    With ``ecp`` set, Q/K bundle-rows below the thresholds are pruned before
    scheduling (the certified-error path); without it, only intrinsically
    inactive bundles are skipped (when the config allows).
    """
    if q.shape != k.shape or q.shape != v.shape:
        raise ValueError(f"Q/K/V shapes differ: {q.shape}, {k.shape}, {v.shape}")
    t, h, n, d = q.shape
    features = h * d
    traffic = TrafficLedger()

    q_full = merge_attention_heads(q)
    k_full = merge_attention_heads(k)
    if ecp is not None:
        _, _, report = ecp_prune_qk(q_full, k_full, ecp)
        q_keep_rows, k_keep_rows = report.q_row_keep, report.k_row_keep
    else:
        q_keep_rows = k_keep_rows = None

    q_mask = _row_survivors(q_full, config, q_keep_rows)   # (T, N)
    k_mask = _row_survivors(k_full, config, k_keep_rows)

    q_tokens_per_t = q_mask.sum(axis=1).astype(np.float64)
    k_tokens_per_t = k_mask.sum(axis=1).astype(np.float64)
    pair_count = float((q_tokens_per_t * k_tokens_per_t).sum())  # Σ_t N_q(t)·N_k(t)

    # Mode 1: S[t,i,j] accumulated over all features with AND-accumulate.
    aac_ops = pair_count * features
    # Mode 2: Y[t,i,:] = Σ_j S[t,i,j]·V[t,j,:] — same op count, SAC flavour.
    sac_ops = pair_count * features

    effective = config.attn_throughput * config.attn_utilization
    mode1_cycles = aac_ops / effective + config.pipeline_fill_cycles
    mode2_cycles = sac_ops / effective + config.pipeline_fill_cycles

    q_keep = float(q_mask.mean())
    k_keep = float(k_mask.mean())

    # ---- traffic ---------------------------------------------------------
    spec = config.bundle_spec
    q_grid = TTBGrid(q_full * q_mask[:, :, None], spec)
    k_grid = TTBGrid(k_full * k_mask[:, :, None], spec)
    v_grid = TTBGrid(merge_attention_heads(v) * k_mask[:, :, None], spec)

    q_bytes = bundle_storage_bytes(q_grid.num_active_bundles, spec.volume, q_grid.num_bundles)
    k_bytes = bundle_storage_bytes(k_grid.num_active_bundles, spec.volume, k_grid.num_bundles)
    v_bytes = bundle_storage_bytes(v_grid.num_active_bundles, spec.volume, v_grid.num_bundles)

    # Tiling: surviving Q bundle-rows across PE rows, K tokens across columns.
    q_rows_surviving = max(
        1.0, float(q_mask.any(axis=0).sum()) / spec.bs_n
    )
    k_col_tiles = max(1.0, float(np.ceil(k_tokens_per_t.max() / config.attn_cols)) if n else 1.0)
    q_row_tiles = max(1.0, np.ceil(q_rows_surviving / config.attn_rows))

    # Q re-streamed once per K column tile; K/V reused across Q tiles
    # (intra/inter-Q-bundle K-reuse, intra/inter-S-bundle V-reuse).
    traffic.add("glb", "activation", q_bytes * k_col_tiles)
    traffic.add("glb", "activation", k_bytes * q_row_tiles)
    traffic.add("glb", "activation", v_bytes * q_row_tiles)

    # S never leaves the PEs (score-stationary): local register traffic only.
    s_entries = pair_count
    traffic.add("spad", "score", s_entries * config.score_bits / 8.0)
    # Y streams through the shifter straight into the spike generator — it is
    # never stored wholesale, so it costs output-buffer traffic only.
    y_bytes = q_keep * t * n * features * config.accumulator_bits / 8.0
    traffic.add("spad", "output", y_bytes)

    dense_ops = 2.0 * t * n * n * features
    utilization = (
        (aac_ops + sac_ops)
        / ((mode1_cycles + mode2_cycles) * config.attn_throughput)
        if (mode1_cycles + mode2_cycles) > 0
        else 0.0
    )

    return AttentionCoreResult(
        mode1_cycles=mode1_cycles,
        mode2_cycles=mode2_cycles,
        aac_ops=aac_ops,
        sac_ops=sac_ops,
        q_keep_fraction=q_keep,
        k_keep_fraction=k_keep,
        utilization=float(utilization),
        traffic=traffic,
        tiles=int(q_row_tiles * k_col_tiles),
    )
