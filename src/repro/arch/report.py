"""Result containers for accelerator simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .energy import EnergyModel
from .memory import TrafficLedger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine uses reports)
    from ..compiler.ir import Program
    from .engine.timeline import EngineRun

__all__ = ["EnergyBreakdown", "LayerReport", "InferenceReport"]


@dataclass
class EnergyBreakdown:
    """Per-layer energy decomposition (picojoules)."""

    compute_pj: float = 0.0
    memory_pj: float = 0.0
    spike_gen_pj: float = 0.0
    static_pj: float = 0.0
    memory_by_kind_pj: dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return self.compute_pj + self.memory_pj + self.spike_gen_pj + self.static_pj

    @property
    def total_mj(self) -> float:
        return self.total_pj * 1e-9

    def add(self, other: "EnergyBreakdown") -> None:
        self.compute_pj += other.compute_pj
        self.memory_pj += other.memory_pj
        self.spike_gen_pj += other.spike_gen_pj
        self.static_pj += other.static_pj
        for kind, value in other.memory_by_kind_pj.items():
            self.memory_by_kind_pj[kind] = self.memory_by_kind_pj.get(kind, 0.0) + value


@dataclass
class LayerReport:
    """Latency/energy of one layer on one accelerator."""

    block: int
    kind: str
    phase: str                      # P1 / ATN / P2 / MLP (Fig. 11 labels)
    cycles: float
    latency_s: float
    energy: EnergyBreakdown
    traffic: TrafficLedger
    unit_cycles: dict[str, float] = field(default_factory=dict)
    utilization: float = 0.0
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def edp(self) -> float:
        """Energy-delay product (pJ·s)."""
        return self.energy.total_pj * self.latency_s


@dataclass
class InferenceReport:
    """End-to-end single-inference result: a list of layer reports."""

    accelerator: str
    model_name: str
    layers: list[LayerReport] = field(default_factory=list)
    # Event timeline of the same inference on the discrete-event engine
    # (attached by BishopAccelerator.run_trace; None for closed-form-only
    # baselines such as PTB and the GPU roofline).
    engine_run: "EngineRun | None" = None
    # The compiled program this report was materialized from (Bishop only;
    # None for baselines and hand-assembled reports).
    program: "Program | None" = None

    # -- totals ----------------------------------------------------------
    @property
    def total_latency_s(self) -> float:
        return sum(layer.latency_s for layer in self.layers)

    @property
    def event_latency_s(self) -> float:
        """Engine-measured makespan; falls back to the closed-form total."""
        if self.engine_run is not None:
            return self.engine_run.makespan_s
        return self.total_latency_s

    @property
    def total_energy_pj(self) -> float:
        return sum(layer.energy_pj for layer in self.layers)

    @property
    def total_energy_mj(self) -> float:
        return self.total_energy_pj * 1e-9

    @property
    def edp(self) -> float:
        return self.total_energy_pj * self.total_latency_s

    # -- slicing ----------------------------------------------------------
    def by_phase(self) -> dict[tuple[int, str], LayerReport]:
        """Aggregate layers into Fig.-11 cells keyed by (block, phase)."""
        cells: dict[tuple[int, str], LayerReport] = {}
        for layer in self.layers:
            key = (layer.block, layer.phase)
            if key not in cells:
                cells[key] = LayerReport(
                    block=layer.block,
                    kind=layer.phase,
                    phase=layer.phase,
                    cycles=0.0,
                    latency_s=0.0,
                    energy=EnergyBreakdown(),
                    traffic=TrafficLedger(),
                )
            cell = cells[key]
            cell.cycles += layer.cycles
            cell.latency_s += layer.latency_s
            cell.energy.add(layer.energy)
            cell.traffic.merge(layer.traffic)
        return cells

    def phase_latency(self, phase: str) -> float:
        return sum(l.latency_s for l in self.layers if l.phase == phase)

    def phase_energy_pj(self, phase: str) -> float:
        return sum(l.energy_pj for l in self.layers if l.phase == phase)

    def attention_latency_s(self) -> float:
        return self.phase_latency("ATN")

    def attention_energy_pj(self) -> float:
        return self.phase_energy_pj("ATN")

    def traffic_bytes(self, level: str | None = None, kind: str | None = None) -> float:
        return sum(l.traffic.bytes(level, kind) for l in self.layers)

    def memory_energy_share_by_kind(self, energy_model: EnergyModel) -> dict[str, float]:
        """Fraction of total energy spent moving each data kind (Fig. 16)."""
        total = self.total_energy_pj
        shares: dict[str, float] = {}
        for layer in self.layers:
            for kind, pj in layer.traffic.energy_by_kind_pj(energy_model).items():
                shares[kind] = shares.get(kind, 0.0) + pj
        return {kind: pj / total for kind, pj in shares.items()} if total else shares
