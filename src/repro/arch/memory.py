"""Traffic accounting for the three-level memory hierarchy (Sec. 6.1).

The simulators record every byte moved as ``(level, kind)`` entries in a
:class:`TrafficLedger`; energy and DRAM time are derived from the ledger.
Levels: ``dram`` (off-chip), ``glb`` (weight GLB / spike TTB GLBs), ``spad``
(PE-local and output buffers).  Kinds: ``weight``, ``activation``, ``score``,
``output`` — the decomposition behind Fig. 16's memory-share discussion.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .config import DRAMConfig
from .energy import EnergyModel

__all__ = ["TrafficLedger", "spike_payload_bytes", "bundle_storage_bytes"]

_LEVELS = ("dram", "glb", "spad")
_KINDS = ("weight", "activation", "score", "output")


@dataclass
class TrafficLedger:
    """Byte counts per (memory level, data kind)."""

    entries: dict[tuple[str, str], float] = field(
        default_factory=lambda: defaultdict(float)
    )

    def add(self, level: str, kind: str, num_bytes: float) -> None:
        if level not in _LEVELS:
            raise ValueError(f"unknown level {level!r}; options {_LEVELS}")
        if kind not in _KINDS:
            raise ValueError(f"unknown kind {kind!r}; options {_KINDS}")
        if num_bytes < 0:
            raise ValueError("traffic must be non-negative")
        self.entries[(level, kind)] += num_bytes

    def bytes(self, level: str | None = None, kind: str | None = None) -> float:
        """Total bytes, optionally filtered by level and/or kind."""
        total = 0.0
        for (entry_level, entry_kind), count in self.entries.items():
            if level is not None and entry_level != level:
                continue
            if kind is not None and entry_kind != kind:
                continue
            total += count
        return total

    def energy_pj(self, model: EnergyModel) -> float:
        return sum(
            model.memory_pj(level, count)
            for (level, _), count in self.entries.items()
        )

    def energy_by_kind_pj(self, model: EnergyModel) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for (level, kind), count in self.entries.items():
            out[kind] += model.memory_pj(level, count)
        return dict(out)

    def dram_time_s(self, dram: DRAMConfig) -> float:
        return dram.transfer_time_s(self.bytes(level="dram"))

    def merge(self, other: "TrafficLedger") -> None:
        for key, count in other.entries.items():
            self.entries[key] += count


def spike_payload_bytes(num_token_times: float, num_features: float) -> float:
    """Bytes of a dense binary spike tensor (1 bit per token-time-feature)."""
    return num_token_times * num_features / 8.0


def bundle_storage_bytes(
    active_bundles: float, bundle_volume: int, total_bundles: float
) -> float:
    """Storage/traffic for a TTB-compressed spike tensor.

    Active bundles move their full binary payload (``bundle_volume`` bits);
    every bundle slot additionally carries a 1-bit activity tag (the tag
    bitmap is how the stratifier, skip logic, and ECP read sparsity without
    touching payloads).
    """
    payload_bits = active_bundles * bundle_volume
    tag_bits = total_bundles
    return (payload_bits + tag_bits) / 8.0
