"""Energy and area model, anchored to the paper's 28 nm synthesis (Fig. 17).

Two ingredients:

* **Per-event energies** (pJ): datapath operations (select-accumulate,
  AND-accumulate, 8-bit MAC, LIF update) and per-byte memory access at each
  hierarchy level.  Values follow standard 28 nm estimates and are calibrated
  so a fully-busy core dissipates approximately its Fig.-17 peak power.
* **Published anchors**: the paper's synthesized area/power breakdown
  (Fig. 17) and the PTB comparison point (2.80 mm², 606.9 mW), exposed for
  the `fig17` experiment and for static-power accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyModel", "AreaPowerBreakdown", "BISHOP_BREAKDOWN", "PTB_BREAKDOWN"]


@dataclass(frozen=True)
class AreaPowerBreakdown:
    """Synthesis-anchor numbers for one accelerator (area mm², power mW)."""

    components: dict[str, tuple[float, float]]  # name -> (area_mm2, power_mw)

    @property
    def total_area_mm2(self) -> float:
        return sum(area for area, _ in self.components.values())

    @property
    def total_power_mw(self) -> float:
        return sum(power for _, power in self.components.values())

    def area_fraction(self, name: str) -> float:
        return self.components[name][0] / self.total_area_mm2

    def power_fraction(self, name: str) -> float:
        return self.components[name][1] / self.total_power_mw


# Fig. 17: per-component (area mm^2, power mW) of the synthesized Bishop at
# 28 nm / 500 MHz.  "other" absorbs the residue to the published totals
# (2.96 mm^2, 627 mW).
BISHOP_BREAKDOWN = AreaPowerBreakdown(
    components={
        "sparse_core": (0.38, 72.2),
        "dense_core": (0.92, 246.1),
        "attention_core": (1.06, 242.51),
        "spike_generator": (0.09, 18.1),
        "glb": (0.495, 48.3),
        "other": (0.015, -0.21),  # rounding residue in the published numbers
    }
)

# The synthesized PTB baseline (Sec. 6.1): 2.80 mm^2, 606.9 mW peak.
PTB_BREAKDOWN = AreaPowerBreakdown(
    components={
        "pe_array": (2.10, 520.0),
        "glb": (0.60, 70.0),
        "control": (0.10, 16.9),
    }
)


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants (all picojoules).

    ``e_sac``/``e_aac`` include the PE-local register traffic of the dense /
    attention TTB units; ``e_mac8`` is the multiplier path PTB must use for
    multi-bit attention scores (roughly 8× a select-accumulate at 8 bits,
    consistent with mult-vs-mux cost at 28 nm).
    """

    e_sac_pj: float = 0.048            # select-accumulate (MUX + 24b add)
    e_aac_pj: float = 0.044            # AND-accumulate
    e_mac8_pj: float = 0.38            # 8-bit multiply-accumulate
    e_sparse_op_pj: float = 0.058      # sparse-core SAC incl. network slack
    e_idle_slot_pj: float = 0.022      # clocked-but-gated lockstep PE slot
    e_lif_update_pj: float = 0.09      # Vmem add + compare + conditional reset
    e_spad_pj_per_byte: float = 0.12   # PE-local / output-buffer access
    e_glb_pj_per_byte: float = 0.8     # 12-144 KB SRAM (CACTI-7-like)
    e_dram_pj_per_byte: float = 20.0   # DDR4 interface + core
    static_power_w: float = 0.055      # leakage + clock tree (≈9% of peak)

    def compute_pj(self, kind: str, ops: float) -> float:
        """Energy of ``ops`` datapath operations of the given kind."""
        per_op = {
            "sac": self.e_sac_pj,
            "aac": self.e_aac_pj,
            "mac8": self.e_mac8_pj,
            "sparse": self.e_sparse_op_pj,
            "idle": self.e_idle_slot_pj,
            "lif": self.e_lif_update_pj,
        }
        try:
            return per_op[kind] * ops
        except KeyError:
            raise ValueError(f"unknown op kind {kind!r}") from None

    def memory_pj(self, level: str, num_bytes: float) -> float:
        per_byte = {
            "spad": self.e_spad_pj_per_byte,
            "glb": self.e_glb_pj_per_byte,
            "dram": self.e_dram_pj_per_byte,
        }
        try:
            return per_byte[level] * num_bytes
        except KeyError:
            raise ValueError(f"unknown memory level {level!r}") from None

    def static_pj(self, seconds: float) -> float:
        return self.static_power_w * seconds * 1e12
