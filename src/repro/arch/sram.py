"""CACTI-like SRAM energy/area estimator.

The paper derives its GLB energy numbers from CACTI 7.0 [3].  Offline we
provide a compact analytic stand-in with the same role: given a capacity and
port width at 28 nm, estimate the per-access (and per-byte) read/write energy,
leakage power, and area.  The scaling laws follow the standard CACTI shape:

* dynamic energy per access grows ≈ √capacity (longer bit/word-lines),
* area grows linearly with capacity plus a periphery overhead,
* leakage grows linearly with capacity.

Constants are calibrated so the paper's GLB configuration (144 KB weight GLB
plus 2 × 12 KB spike GLBs) lands on its published 0.495 mm² / 48.3 mW
(Fig. 17), and the default per-byte energy matches the
:class:`~repro.arch.energy.EnergyModel` GLB constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SRAMEstimate", "estimate_sram", "glb_configuration_estimate"]

# 28 nm anchor constants (per-access energy at the reference geometry).
_REFERENCE_BYTES = 64 * 1024
_E_ACCESS_REF_PJ = 38.0        # per 512-bit access at 64 KB
_AREA_PER_BYTE_MM2 = 2.45e-6   # dense 6T array + redundancy
_AREA_PERIPHERY_MM2 = 0.018    # decoders/sense amps per bank
_LEAK_PER_BYTE_MW = 2.6e-4


@dataclass(frozen=True)
class SRAMEstimate:
    """Estimated properties of one SRAM macro."""

    capacity_bytes: int
    port_bits: int
    read_energy_pj: float       # per full-port access
    write_energy_pj: float
    leakage_mw: float
    area_mm2: float

    @property
    def energy_pj_per_byte(self) -> float:
        return self.read_energy_pj / (self.port_bits / 8.0)


def estimate_sram(capacity_bytes: int, port_bits: int = 512) -> SRAMEstimate:
    """Estimate a 28 nm SRAM macro of the given capacity and port width."""
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    if port_bits <= 0 or port_bits % 8:
        raise ValueError("port width must be a positive multiple of 8 bits")
    scale = np.sqrt(capacity_bytes / _REFERENCE_BYTES)
    port_scale = port_bits / 512.0
    read = _E_ACCESS_REF_PJ * scale * port_scale
    write = read * 1.12                     # write drivers cost slightly more
    leakage = _LEAK_PER_BYTE_MW * capacity_bytes
    area = _AREA_PER_BYTE_MM2 * capacity_bytes + _AREA_PERIPHERY_MM2
    return SRAMEstimate(
        capacity_bytes=capacity_bytes,
        port_bits=port_bits,
        read_energy_pj=read,
        write_energy_pj=write,
        leakage_mw=leakage,
        area_mm2=area,
    )


def glb_configuration_estimate() -> dict[str, SRAMEstimate]:
    """The paper's GLB configuration: 144 KB weight GLB with a 512-bit port
    plus two 12 KB ping-pong spike TTB GLBs."""
    return {
        "weight_glb": estimate_sram(144 * 1024, port_bits=512),
        "spike_glb0": estimate_sram(12 * 1024, port_bits=256),
        "spike_glb1": estimate_sram(12 * 1024, port_bits=256),
    }
