"""The Bishop accelerator: schedules a traced model onto the heterogeneous cores.

For every MLP / projection layer the stratifier (Alg. 1) splits the input
features; the dense and sparse cores run concurrently and the spike generator
merges their partial sums into output spikes.  Every spiking self-attention
layer runs on the attention core (Modes 1+2), optionally behind ECP pruning.
DRAM transfers are double-buffered, so a layer's latency is
``max(compute time, DRAM streaming time)``.

The tokenizer and classification head are outside Bishop's scope (the paper
delegates spiking-CNN front-ends to prior accelerators, Sec. 2.2) and are not
simulated.

Per-layer numbers come from the analytical core models; ``run_trace`` then
replays the layer chain on the discrete-event engine (``repro.arch.engine``)
and attaches the resulting timeline to the report.  For one uncontended
request the event makespan reproduces the closed-form total, which keeps the
analytical numbers as the engine's validation oracle; the serving layer
(``repro.serve``) reuses the same task graph under contention.
"""

from __future__ import annotations

import numpy as np

from ..algo import ECPConfig
from ..bundles import TTBGrid
from ..model import LayerRecord, ModelTrace
from .attention_core import simulate_attention_core
from .config import BishopConfig
from .dense_core import simulate_dense_core
from .energy import EnergyModel
from .engine.machine import simulate_inference
from .memory import TrafficLedger, bundle_storage_bytes, spike_payload_bytes
from .report import EnergyBreakdown, InferenceReport, LayerReport
from .sparse_core import simulate_sparse_core
from .spike_generator import simulate_spike_generator
from .stratifier import (
    StratifiedWorkload,
    balanced_theta,
    stratify,
    theta_for_dense_fraction,
)

__all__ = ["BishopAccelerator"]


class BishopAccelerator:
    """Analytic simulator of the full Bishop architecture (Fig. 9)."""

    def __init__(
        self,
        config: BishopConfig | None = None,
        energy: EnergyModel | None = None,
    ):
        self.config = config or BishopConfig()
        self.energy = energy or EnergyModel()

    # ------------------------------------------------------------------
    # Stratification policy
    # ------------------------------------------------------------------
    def stratify_layer(
        self, spikes: np.ndarray, out_features: int
    ) -> StratifiedWorkload:
        """Apply the configured θ_s policy to one layer's input spikes."""
        config = self.config
        spec = config.bundle_spec
        if not config.use_stratifier:
            counts = TTBGrid(spikes, spec).active_per_feature
            return StratifiedWorkload(
                dense_features=np.arange(spikes.shape[2]),
                sparse_features=np.array([], dtype=np.int64),
                theta=-1.0,
                active_per_feature=counts,
            )
        if config.stratify_theta is not None:
            theta = config.stratify_theta
        elif config.stratify_dense_fraction is not None:
            theta = theta_for_dense_fraction(
                spikes, spec, config.stratify_dense_fraction
            )
        else:
            theta = balanced_theta(
                spikes,
                spec,
                dense_time_fn=lambda w: simulate_dense_core(
                    spikes[:, :, w.dense_features], out_features, config
                ).cycles,
                sparse_time_fn=lambda w: simulate_sparse_core(
                    spikes[:, :, w.sparse_features], out_features, config
                ).cycles,
            )
        return stratify(spikes, spec, theta)

    # ------------------------------------------------------------------
    # Layer simulations
    # ------------------------------------------------------------------
    def run_matmul_layer(self, record: LayerRecord) -> LayerReport:
        """Simulate one projection/MLP layer on the dense+sparse cores."""
        config, energy = self.config, self.energy
        spikes = record.input_spikes
        d_in, d_out = record.weight_shape
        timesteps, tokens, _ = spikes.shape

        workload = self.stratify_layer(spikes, d_out)
        x_dense, x_sparse = workload.split(spikes)
        dense = simulate_dense_core(x_dense, d_out, config)
        sparse = simulate_sparse_core(x_sparse, d_out, config)
        spike_gen = simulate_spike_generator(timesteps, tokens, d_out, config)

        core_cycles = max(dense.cycles, sparse.cycles)
        cycles = core_cycles + spike_gen.cycles
        compute_time = cycles / config.clock_hz

        traffic = TrafficLedger()
        traffic.merge(dense.traffic)
        traffic.merge(sparse.traffic)
        traffic.merge(spike_gen.traffic)

        # DRAM: weights streamed once (output-tiled when they exceed the
        # weight GLB); rows of completely silent input features are never
        # fetched (tag-gated — the structured pruning BSA amplifies).
        # Input/output spike tensors spill only past the ping-pong spike GLB.
        grid = TTBGrid(spikes, config.bundle_spec)
        if config.skip_inactive_bundles:
            alive_features = int((grid.active_per_feature > 0).sum())
        else:
            alive_features = d_in
        weight_bytes = alive_features * d_out * config.weight_bits / 8.0
        traffic.add("dram", "weight", weight_bytes)
        in_payload = bundle_storage_bytes(
            grid.num_active_bundles, config.bundle_spec.volume, grid.num_bundles
        )
        out_payload = spike_payload_bytes(timesteps * tokens, d_out)
        for payload in (in_payload, out_payload):
            spill = max(0.0, payload - config.spike_glb_bytes)
            if spill:
                traffic.add("dram", "activation", 2.0 * spill)  # write + read

        dram_time = traffic.dram_time_s(config.dram)
        latency = max(compute_time, dram_time)

        breakdown = EnergyBreakdown(
            compute_pj=dense.compute_energy_pj(energy) + sparse.compute_energy_pj(energy),
            memory_pj=traffic.energy_pj(energy),
            spike_gen_pj=spike_gen.compute_energy_pj(energy),
            static_pj=energy.static_pj(latency),
            memory_by_kind_pj=traffic.energy_by_kind_pj(energy),
        )
        total_ops = dense.sac_ops + sparse.sparse_ops
        peak = cycles * (config.dense_throughput + config.sparse_throughput)
        return LayerReport(
            block=record.block,
            kind=record.kind,
            phase=record.phase,
            cycles=cycles,
            latency_s=latency,
            energy=breakdown,
            traffic=traffic,
            unit_cycles={
                "dense": dense.cycles,
                "sparse": sparse.cycles,
                "spike_gen": spike_gen.cycles,
            },
            utilization=float(total_ops / peak) if peak else 0.0,
            notes={
                "theta_s": workload.theta,
                "dense_fraction": workload.dense_fraction,
                "dense_cycles": dense.cycles,
                "sparse_cycles": sparse.cycles,
                "sparse_active_pairs": sparse.active_pairs,
                "dram_time_s": dram_time,
                "compute_time_s": compute_time,
                "dense_tiles": dense.tiles,
                "sparse_tiles": sparse.waves,
            },
        )

    def run_attention_layer(
        self, record: LayerRecord, ecp: ECPConfig | None = None
    ) -> LayerReport:
        """Simulate one SSA layer on the attention core (Modes 1 + 2)."""
        config, energy = self.config, self.energy
        result = simulate_attention_core(record.q, record.k, record.v, config, ecp=ecp)
        timesteps, heads, tokens, head_dim = record.q.shape
        features = heads * head_dim
        spike_gen = simulate_spike_generator(timesteps, tokens, features, config)

        cycles = result.cycles + spike_gen.cycles
        compute_time = cycles / config.clock_hz

        traffic = TrafficLedger()
        traffic.merge(result.traffic)
        traffic.merge(spike_gen.traffic)
        # Q/K/V/Y share the ping-pong spike GLBs, equally partitioned; the
        # binary Q/K/V tensors spill past their quarter share.  Y itself is
        # consumed by the spike generator in-flight and never spills.
        tensor_capacity = 2 * config.spike_glb_bytes / 4.0
        qkv_payload = spike_payload_bytes(timesteps * tokens, features)
        for _ in range(3):  # Q, K, V
            spill = max(0.0, qkv_payload - tensor_capacity)
            if spill:
                traffic.add("dram", "activation", spill)

        dram_time = traffic.dram_time_s(config.dram)
        latency = max(compute_time, dram_time)

        breakdown = EnergyBreakdown(
            compute_pj=result.compute_energy_pj(energy),
            memory_pj=traffic.energy_pj(energy),
            spike_gen_pj=spike_gen.compute_energy_pj(energy),
            static_pj=energy.static_pj(latency),
            memory_by_kind_pj=traffic.energy_by_kind_pj(energy),
        )
        return LayerReport(
            block=record.block,
            kind=record.kind,
            phase=record.phase,
            cycles=cycles,
            latency_s=latency,
            energy=breakdown,
            traffic=traffic,
            unit_cycles={
                "mode1": result.mode1_cycles,
                "mode2": result.mode2_cycles,
                "spike_gen": spike_gen.cycles,
            },
            utilization=result.utilization,
            notes={
                "q_keep_fraction": result.q_keep_fraction,
                "k_keep_fraction": result.k_keep_fraction,
                "score_compute_fraction": result.score_compute_fraction,
                "dram_time_s": dram_time,
                "compute_time_s": compute_time,
                "attention_tiles": result.tiles,
            },
        )

    # ------------------------------------------------------------------
    def run_trace(
        self,
        trace: ModelTrace,
        ecp: ECPConfig | None = None,
        simulate_events: bool = True,
    ) -> InferenceReport:
        """Simulate a full single-image inference.

        The per-layer analytical reports are replayed on the discrete-event
        engine and the resulting timeline is attached as
        ``report.engine_run`` (set ``simulate_events=False`` to skip, e.g.
        inside tight design-space loops).
        """
        report = InferenceReport(accelerator="bishop", model_name=trace.model_name)
        for record in trace.records:
            if record.is_matmul:
                report.layers.append(self.run_matmul_layer(record))
            elif record.kind == "attention":
                report.layers.append(self.run_attention_layer(record, ecp=ecp))
            # tokenizer/head records are outside the accelerator's scope
        if simulate_events:
            report.engine_run = simulate_inference(report, self.config, self.energy)
        return report
