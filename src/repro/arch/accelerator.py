"""The Bishop accelerator: schedules a traced model onto the heterogeneous cores.

For every MLP / projection layer the stratifier (Alg. 1) splits the input
features; the dense and sparse cores run concurrently and the spike generator
merges their partial sums into output spikes.  Every spiking self-attention
layer runs on the attention core (Modes 1+2), optionally behind ECP pruning.
DRAM transfers are double-buffered, so a layer's latency is
``max(compute time, DRAM streaming time)``.

The tokenizer and classification head are outside Bishop's scope (the paper
delegates spiking-CNN front-ends to prior accelerators, Sec. 2.2) and are not
simulated.

Lowering goes through the compiler (``repro.compiler``): ``run_trace``
compiles the trace with the pass pipeline derived from this config (plus an
optional :class:`~repro.algo.ECPConfig`), materializes the per-layer
analytical reports from the compiled :class:`~repro.compiler.ir.Program`,
and replays the layer chain on the discrete-event engine
(``repro.arch.engine``), attaching the resulting timeline to the report.
For one uncontended request the event makespan reproduces the closed-form
total, which keeps the analytical numbers as the engine's validation
oracle; the serving layer (``repro.serve``) replays the same compiled
programs under contention.
"""

from __future__ import annotations

import numpy as np

from ..algo import ECPConfig
from ..compiler.lowering import (
    lower_attention_layer,
    lower_matmul_layer,
    plan_stratification,
)
from ..compiler.passes import PassConfig, compile_trace, materialize_report
from ..model import LayerRecord, ModelTrace
from .config import BishopConfig
from .energy import EnergyModel
from .engine.machine import simulate_inference
from .report import InferenceReport, LayerReport
from .stratifier import StratifiedWorkload

__all__ = ["BishopAccelerator"]


class BishopAccelerator:
    """Analytic simulator of the full Bishop architecture (Fig. 9)."""

    def __init__(
        self,
        config: BishopConfig | None = None,
        energy: EnergyModel | None = None,
    ):
        self.config = config or BishopConfig()
        self.energy = energy or EnergyModel()

    # ------------------------------------------------------------------
    # Stratification policy
    # ------------------------------------------------------------------
    def stratify_layer(
        self, spikes: np.ndarray, out_features: int
    ) -> StratifiedWorkload:
        """Apply the configured θ_s policy to one layer's input spikes."""
        return plan_stratification(spikes, out_features, self.config)

    # ------------------------------------------------------------------
    # Layer simulations (the compiler's lowering, config-driven)
    # ------------------------------------------------------------------
    def run_matmul_layer(self, record: LayerRecord) -> LayerReport:
        """Simulate one projection/MLP layer on the dense+sparse cores."""
        workload = self.stratify_layer(
            record.input_spikes, record.weight_shape[1]
        )
        return lower_matmul_layer(record, workload, self.config, self.energy)

    def run_attention_layer(
        self, record: LayerRecord, ecp: ECPConfig | None = None
    ) -> LayerReport:
        """Simulate one SSA layer on the attention core (Modes 1 + 2)."""
        return lower_attention_layer(record, self.config, self.energy, ecp=ecp)

    # ------------------------------------------------------------------
    def run_trace(
        self,
        trace: ModelTrace,
        ecp: ECPConfig | None = None,
        simulate_events: bool = True,
        passes: "PassConfig | str | None" = None,
    ) -> InferenceReport:
        """Simulate a full single-image inference.

        The trace is compiled through the pass pipeline (``repro.compiler``)
        and the per-layer analytical reports are materialized from the
        resulting program, available as ``report.program``.  The layer
        chain is then replayed on the discrete-event engine and the
        resulting timeline attached as ``report.engine_run`` (set
        ``simulate_events=False`` to skip, e.g. inside tight design-space
        loops).  ``passes`` toggles individual optimization passes; the
        config's own policy switches (``use_stratifier``,
        ``skip_inactive_bundles``) stay authoritative either way.
        """
        program = compile_trace(
            trace, self.config, self.energy, ecp=ecp, passes=passes
        )
        report = materialize_report(program)
        if simulate_events:
            report.engine_run = simulate_inference(report, self.config, self.energy)
        return report
