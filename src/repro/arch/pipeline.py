"""Inter-layer pipelining via the double-buffered memory hierarchy.

The paper's memory system is double-buffered at every level "to hide
latency" (Sec. 6.1): while layer *i* computes, the ping-pong GLBs prefetch
layer *i+1*'s weights.  The serial schedule is *measured* by replaying the
layer chain on the discrete-event engine — the datapath and the DRAM
channel are two contended resources, each layer's compute and streaming
tasks run concurrently, and the layer completes when both finish — so
``serial_latency_s`` is an event makespan, not a closed-form sum (for an
uncontended chain the two coincide, which the tests pin).

The steady-state *pipelined* bound composes the same engine-measured
resource busy times: with prefetch, DRAM streaming for any layer may hide
under any other layer's compute, so

    pipelined latency = max(Σ compute_i, Σ dram_i)

— the two shared resources each become the bottleneck wholesale, which is
both the achievable steady state and the information-theoretic lower bound
for a serial layer chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .engine.kernel import Engine, Join
from .engine.timeline import EngineRun, TimelineEntry, use
from .report import InferenceReport

__all__ = ["PipelineSchedule", "pipeline_schedule"]


@dataclass(frozen=True)
class PipelineSchedule:
    """Serial vs pipelined end-to-end latency of one inference."""

    serial_latency_s: float      # engine makespan, layers serialized
    pipelined_latency_s: float   # prefetch overlapped across layers
    compute_total_s: float
    dram_total_s: float
    # The engine run behind the serial numbers (timeline + busy stats).
    run: EngineRun | None = field(default=None, compare=False)

    @property
    def savings_fraction(self) -> float:
        if self.serial_latency_s == 0:
            return 0.0
        return 1.0 - self.pipelined_latency_s / self.serial_latency_s

    @property
    def lower_bound_s(self) -> float:
        """No schedule can beat max(total compute, total DRAM)."""
        return max(self.compute_total_s, self.dram_total_s)


def _serial_process(
    engine: Engine,
    datapath,
    dram,
    layers: list[tuple[float, float]],
    timeline: list[TimelineEntry],
):
    """Layer-serial schedule: per layer, compute ∥ DRAM, then a barrier."""
    for index, (compute_s, dram_s) in enumerate(layers):
        tasks = []
        if compute_s > 0:
            tasks.append(engine.spawn(
                use(engine, datapath, compute_s, timeline, f"L{index}:compute"),
                name=f"L{index}:compute",
            ))
        if dram_s > 0:
            tasks.append(engine.spawn(
                use(engine, dram, dram_s, timeline, f"L{index}:dram"),
                name=f"L{index}:dram",
            ))
        for task in tasks:
            yield Join(task)


def pipeline_schedule(report: InferenceReport) -> PipelineSchedule:
    """Compose a double-buffered schedule from a layer-serial report.

    Layers lacking timing notes (e.g. GPU roofline reports) fall back to
    their recorded latency with no overlap.
    """
    layers = [
        (
            layer.notes.get("compute_time_s", layer.latency_s),
            layer.notes.get("dram_time_s", 0.0),
        )
        for layer in report.layers
    ]

    engine = Engine()
    datapath = engine.resource("datapath")
    dram = engine.resource("dram")
    timeline: list[TimelineEntry] = []
    engine.spawn(
        _serial_process(engine, datapath, dram, layers, timeline),
        name=f"{report.model_name}:serial",
    )
    engine.run()
    run = EngineRun.capture(engine, timeline=timeline)

    compute_total = datapath.stats.busy_s
    dram_total = dram.stats.busy_s
    return PipelineSchedule(
        serial_latency_s=run.makespan_s,
        pipelined_latency_s=max(compute_total, dram_total),
        compute_total_s=compute_total,
        dram_total_s=dram_total,
        run=run,
    )
