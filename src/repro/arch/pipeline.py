"""Inter-layer pipelining via the double-buffered memory hierarchy.

The paper's memory system is double-buffered at every level "to hide
latency" (Sec. 6.1): while layer *i* computes, the ping-pong GLBs prefetch
layer *i+1*'s weights.  The per-layer reports already model *intra*-layer
overlap (``max(compute, dram)``); this module composes the steady-state
*inter*-layer schedule, where DRAM streaming for any layer may hide under
any other layer's compute:

    pipelined latency = max(Σ compute_i, Σ dram_i)

— the two shared resources (datapath, DRAM channel) each become the
bottleneck wholesale, which is both the achievable steady state and the
information-theoretic lower bound for a serial layer chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import InferenceReport

__all__ = ["PipelineSchedule", "pipeline_schedule"]


@dataclass(frozen=True)
class PipelineSchedule:
    """Serial vs pipelined end-to-end latency of one inference."""

    serial_latency_s: float      # Σ max(compute, dram) per layer
    pipelined_latency_s: float   # prefetch overlapped across layers
    compute_total_s: float
    dram_total_s: float

    @property
    def savings_fraction(self) -> float:
        if self.serial_latency_s == 0:
            return 0.0
        return 1.0 - self.pipelined_latency_s / self.serial_latency_s

    @property
    def lower_bound_s(self) -> float:
        """No schedule can beat max(total compute, total DRAM)."""
        return max(self.compute_total_s, self.dram_total_s)


def pipeline_schedule(report: InferenceReport) -> PipelineSchedule:
    """Compose a double-buffered schedule from a layer-serial report.

    Layers lacking timing notes (e.g. GPU roofline reports) fall back to
    their recorded latency with no overlap.
    """
    compute_times: list[float] = []
    dram_times: list[float] = []
    for layer in report.layers:
        compute_times.append(layer.notes.get("compute_time_s", layer.latency_s))
        dram_times.append(layer.notes.get("dram_time_s", 0.0))

    serial = sum(max(c, d) for c, d in zip(compute_times, dram_times))
    pipelined = max(sum(compute_times), sum(dram_times))

    return PipelineSchedule(
        serial_latency_s=serial,
        pipelined_latency_s=pipelined,
        compute_total_s=sum(compute_times),
        dram_total_s=sum(dram_times),
    )
