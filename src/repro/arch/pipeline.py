"""Inter-layer pipelining via the double-buffered memory hierarchy.

The paper's memory system is double-buffered at every level "to hide
latency" (Sec. 6.1): while layer *i* computes, the ping-pong GLBs prefetch
layer *i+1*'s weights.  All three numbers here are produced by the
compiler's two-resource emissions (``repro.compiler.emit``) — the datapath
and the DRAM channel are two contended resources, each layer's compute and
streaming tasks run concurrently, and the layer completes when both finish:

* ``serial_latency_s`` — the layer-serial engine makespan (for an
  uncontended chain it equals the closed-form ``Σ max(compute, dram)``,
  which the tests pin);
* ``scheduled_latency_s`` — the engine makespan under the compiler's
  depth-1 prefetch schedule (*weight* streaming runs ahead of compute,
  bounded by the double buffer; activation traffic stays bound to its
  layer);
* ``pipelined_latency_s`` — the steady-state bound ``max(Σ compute,
  Σ dram)``: with unbounded prefetch either shared resource becomes the
  bottleneck wholesale, the information-theoretic floor for a serial
  layer chain.

``serial ≥ scheduled ≥ pipelined`` always holds; the gap between the first
two is what the compiler's scheduling pass actually wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.emit import prefetch_pairs_makespan, serial_pairs_run
from .engine.timeline import EngineRun
from .report import InferenceReport

__all__ = ["PipelineSchedule", "pipeline_schedule"]


@dataclass(frozen=True)
class PipelineSchedule:
    """Serial vs pipelined end-to-end latency of one inference."""

    serial_latency_s: float      # engine makespan, layers serialized
    pipelined_latency_s: float   # prefetch overlapped across layers (bound)
    compute_total_s: float
    dram_total_s: float
    # Engine makespan under the depth-1 prefetch schedule (between the
    # serial makespan and the pipelined bound).
    scheduled_latency_s: float = 0.0
    # The engine run behind the serial numbers (timeline + busy stats).
    run: EngineRun | None = field(default=None, compare=False)

    @property
    def savings_fraction(self) -> float:
        if self.serial_latency_s == 0:
            return 0.0
        return 1.0 - self.pipelined_latency_s / self.serial_latency_s

    @property
    def scheduled_savings_fraction(self) -> float:
        """Fraction of the serial latency the achievable (depth-1
        prefetch) schedule actually recovers."""
        if self.serial_latency_s == 0:
            return 0.0
        return 1.0 - self.scheduled_latency_s / self.serial_latency_s

    @property
    def lower_bound_s(self) -> float:
        """No schedule can beat max(total compute, total DRAM)."""
        return max(self.compute_total_s, self.dram_total_s)


def _layer_triples(report: InferenceReport) -> list[tuple[float, float, float]]:
    """Per-layer ``(compute_s, weight_dram_s, activation_dram_s)``, from
    the compiled program when available, else from the layer timing notes.

    Only the weight stream is prefetchable; notes-based reports split
    their total DRAM time by the traffic ledger's weight/activation byte
    fractions (a report with DRAM time but no recorded DRAM bytes —
    synthetic test reports — is treated as all-weight).  Layers lacking
    timing notes (e.g. GPU roofline reports) fall back to their recorded
    latency with no overlap.
    """
    if report.program is not None:
        return [
            (stage.compute_s, stage.weight_dram_s, stage.activation_dram_s)
            for stage in report.program.stages
        ]
    triples = []
    for layer in report.layers:
        compute_s = layer.notes.get("compute_time_s", layer.latency_s)
        dram_s = layer.notes.get("dram_time_s", 0.0)
        total_bytes = layer.traffic.bytes(level="dram")
        if dram_s > 0 and total_bytes > 0:
            weight_fraction = (
                layer.traffic.bytes(level="dram", kind="weight") / total_bytes
            )
        else:
            weight_fraction = 1.0
        triples.append(
            (compute_s, dram_s * weight_fraction, dram_s * (1 - weight_fraction))
        )
    return triples


def pipeline_schedule(report: InferenceReport) -> PipelineSchedule:
    """Compose a double-buffered schedule from a layer-serial report."""
    layers = _layer_triples(report)
    run, compute_total, dram_total = serial_pairs_run(
        [(compute, weight + activation) for compute, weight, activation in layers],
        label=f"{report.model_name}:serial",
    )
    return PipelineSchedule(
        serial_latency_s=run.makespan_s,
        pipelined_latency_s=max(compute_total, dram_total),
        compute_total_s=compute_total,
        dram_total_s=dram_total,
        scheduled_latency_s=prefetch_pairs_makespan(layers),
        run=run,
    )
