"""Content-addressed cache of compiled programs.

A compiled :class:`~repro.compiler.ir.Program` is a pure function of
``(model, chip configuration, pass configuration, ECP thresholds, trace
seed, compiler source)``, so it can be content-addressed exactly like the
runtime's experiment results: the cache key is the SHA-256 of that tuple's
canonical JSON, with the package source hash standing in for the compiler
version (any source edit invalidates cleanly).

Two layers back the cache:

* an in-process memory map — repeated :func:`compile_model` calls inside
  one simulation (every request of a serving run, every chip of a fleet)
  hit it for free;
* an on-disk JSON store under ``artifacts/programs`` (override with the
  ``REPRO_PROGRAM_CACHE`` environment variable; ``off`` disables) — worker
  *processes* of ``repro run-all``/``sweep``/``bench`` reuse programs
  compiled by earlier runs instead of re-running the numpy core models,
  which is where the serving experiments' wall-clock win comes from.

Entries live at ``<root>/<key[:2]>/<key>.json``; corrupted entries are
treated as misses and deleted (self-healing, same contract as
``repro.runtime.cache.ResultCache``).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path

from .. import obs
from ..algo.ecp import ECPConfig
from ..arch.config import BishopConfig
from ..arch.energy import EnergyModel
from .ir import Program
from .passes import PassConfig, compile_trace

__all__ = [
    "ProgramCache",
    "compile_model",
    "default_program_cache",
    "package_code_hash",
    "program_key",
]


@lru_cache(maxsize=1)
def package_code_hash() -> str:
    """SHA-256 over every ``repro`` source file (compiler-version stamp)."""
    digest = hashlib.sha256()
    package_root = Path(__file__).resolve().parents[1]
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
    return digest.hexdigest()


def program_key(
    model: str,
    config: BishopConfig,
    passes: PassConfig,
    seed: int = 0,
    ecp: ECPConfig | None = None,
    energy: EnergyModel | None = None,
) -> str:
    """Cache key: (model, chip config, pass config, ECP, energy, seed, code).

    ``energy=None`` keys as the default :class:`EnergyModel` — the stage
    annotations bake in per-event energies, so a non-default model must
    miss entries compiled under the default one.
    """
    payload = {
        "model": model,
        "chip": asdict(config),
        "passes": passes.spec(),
        "seed": int(seed),
        "ecp": (
            {"theta_q": ecp.theta_q, "theta_k": ecp.theta_k}
            if ecp is not None
            else None
        ),
        "energy": asdict(energy if energy is not None else EnergyModel()),
        "code": package_code_hash(),
    }
    text = json.dumps(payload, sort_keys=True, default=float)
    return hashlib.sha256(text.encode()).hexdigest()


class ProgramCache:
    """Memory + disk cache of compiled programs.

    ``root=None`` keeps the cache memory-only (tests, throwaway configs);
    a path enables the cross-process disk layer.

    The package source hash in every key means a source edit orphans all
    prior disk entries (they can never hit again); :meth:`gc` reclaims
    them by recency, and ``repro cache gc --keep-latest N`` applies it
    alongside the result cache.
    """

    # A .tmp this old cannot be a write in flight; gc may reclaim it.
    TMP_ORPHAN_AGE_S = 60.0

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else None
        self._memory: dict[str, Program] = {}

    # -- bookkeeping -------------------------------------------------------
    def path_for(self, key: str) -> Path | None:
        if self.root is None:
            return None
        return self.root / key[:2] / f"{key}.json"

    def clear_memory(self) -> None:
        self._memory.clear()

    def entry_count(self) -> int:
        if self.root is None or not self.root.is_dir():
            return len(self._memory)
        return sum(1 for _ in self.root.glob("*/*.json"))

    def disk_usage(self) -> tuple[int, int]:
        """(entries, total bytes) of the on-disk layer."""
        entries = total = 0
        if self.root is None or not self.root.is_dir():
            return 0, 0
        for path in self.root.glob("*/*.json"):
            try:
                total += path.stat().st_size
            except FileNotFoundError:
                continue
            entries += 1
        return entries, total

    def gc(self, keep_latest: int) -> tuple[int, int, int]:
        """Delete all but the ``keep_latest`` most recent disk entries.

        Returns ``(kept, removed, freed bytes)``.  Victims are picked by
        recency (stat only); stale ``.tmp`` orphans from crashed writes
        are collected too, and empty shard directories pruned — the same
        contract as the result cache's gc.
        """
        if keep_latest < 0:
            raise ValueError("keep_latest must be >= 0")
        if self.root is None or not self.root.is_dir():
            return 0, 0, 0
        found = []
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            found.append((path, stat.st_size, stat.st_mtime))
        found.sort(key=lambda e: (-e[2], str(e[0])))
        doomed = found[keep_latest:]
        freed = 0
        for path, size, _ in doomed:
            freed += size
            path.unlink(missing_ok=True)
        removed = len(doomed)
        obs.inc("cache.program.evict", removed)
        cutoff = time.time() - self.TMP_ORPHAN_AGE_S
        for tmp in self.root.glob("*/*.tmp"):
            try:
                stat = tmp.stat()
            except FileNotFoundError:
                continue
            if stat.st_mtime < cutoff:
                freed += stat.st_size
                removed += 1
                tmp.unlink(missing_ok=True)
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass
        return len(found) - len(doomed), removed, freed

    # -- lookup ------------------------------------------------------------
    def get(self, key: str) -> Program | None:
        program = self._memory.get(key)
        if program is not None:
            obs.inc("cache.program.hit")
            obs.inc("cache.program.hit_memory")
            return program
        path = self.path_for(key)
        if path is None:
            obs.inc("cache.program.miss")
            return None
        try:
            program = Program.from_dict(json.loads(path.read_text()))
        except FileNotFoundError:
            obs.inc("cache.program.miss")
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                UnicodeDecodeError):
            path.unlink(missing_ok=True)  # corrupted: self-heal on next put
            obs.inc("cache.program.corrupt")
            obs.inc("cache.program.miss")
            return None
        self._memory[key] = program
        obs.inc("cache.program.hit")
        obs.inc("cache.program.hit_disk")
        return program

    def put(self, key: str, program: Program) -> None:
        obs.inc("cache.program.put")
        self._memory[key] = program
        path = self.path_for(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(program.to_dict(), sort_keys=True, default=float)
        )
        tmp.replace(path)  # atomic: a crashed write never corrupts an entry

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        path = self.path_for(key)
        return path is not None and path.is_file()


_DEFAULT_CACHE: ProgramCache | None = None


def default_program_cache() -> ProgramCache:
    """The process-wide cache; disk root from ``REPRO_PROGRAM_CACHE``
    (default ``artifacts/programs``; ``0``/``off``/``none`` → memory-only)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        raw = os.environ.get("REPRO_PROGRAM_CACHE", "")
        if raw.strip().lower() in ("0", "off", "none", "disabled"):
            _DEFAULT_CACHE = ProgramCache(None)
        elif raw.strip():
            _DEFAULT_CACHE = ProgramCache(Path(raw))
        else:
            _DEFAULT_CACHE = ProgramCache(Path("artifacts") / "programs")
    return _DEFAULT_CACHE


def compile_model(
    model: str,
    config: BishopConfig | None = None,
    *,
    bs_t: int = 2,
    bs_n: int = 4,
    seed: int = 0,
    ecp: ECPConfig | None = None,
    passes: "PassConfig | str | None" = None,
    energy: EnergyModel | None = None,
    cache: ProgramCache | None = None,
) -> Program:
    """Compile one Table-2 zoo model (cache-backed).

    Without an explicit ``config``, the chip is the standard serving
    configuration at the given bundle shape
    (:func:`repro.serve.profiles.profile_config`).  The returned program
    may come from the cache, in which case its stages carry no analytic
    reports — everything the engine needs is in the IR.
    """
    # Imported lazily: the serve/harness layers sit above the compiler in
    # the package graph (serve itself compiles through this module).
    from ..harness.synthetic import PROFILES, synthetic_trace
    from ..model import model_config
    from ..serve.profiles import profile_config

    if model not in PROFILES:
        raise ValueError(f"unknown model {model!r}; options {sorted(PROFILES)}")
    if config is None:
        config = profile_config(bs_t, bs_n)
    pass_config = PassConfig.parse(passes)
    cache = cache if cache is not None else default_program_cache()
    key = program_key(model, config, pass_config, seed=seed, ecp=ecp, energy=energy)
    with obs.span("compile.model", cat="compile", model=model) as span:
        program = cache.get(key)
        if program is not None:
            span.set(cache="hit")
            return program
        span.set(cache="miss")
        trace = synthetic_trace(
            model_config(model), PROFILES[model], config.bundle_spec, seed=seed
        )
        program = compile_trace(
            trace,
            config,
            energy=energy,
            ecp=ecp,
            passes=pass_config,
            meta={"seed": int(seed), "cache_key": key},
        )
        cache.put(key, program)
        return program
