"""Engine emission: replay compiled programs on the discrete-event engine.

The compiler's contract with the runtime: a :class:`~repro.compiler.ir.Program`
(or its :class:`~repro.arch.engine.machine.LayerTiming` tuple) replays
through one of two process shapes —

* **serial** — :func:`~repro.arch.engine.machine.inference_process`: per
  layer, compute ∥ streaming with a barrier (the legacy ``run_trace``
  semantics; for one request the makespan is ``Σ max(compute, dram)``);
* **scheduled** — :func:`~repro.arch.engine.machine.scheduled_inference_process`:
  the scheduling pass's depth-1 weight prefetch, makespan ≤ serial.

This module also hosts the generic two-resource (datapath + DRAM channel)
emissions that :func:`repro.arch.pipeline.pipeline_schedule` composes, so
the accelerator, the pipeline analysis, and the serving layers all lower
through one path.
"""

from __future__ import annotations

from .. import obs
from ..arch.engine.fastpath import engine_mode, schedule_for
from ..arch.engine.kernel import Engine, Join, WaitFor
from ..arch.engine.machine import (
    BishopMachine,
    LayerTiming,
    inference_process,
    scheduled_inference_process,
)
from ..arch.engine.timeline import EngineRun, TimelineEntry, use
from .ir import Program

__all__ = [
    "measure_program",
    "measure_timings",
    "measure_timings_kernel",
    "prefetch_pairs_makespan",
    "request_process",
    "serial_pairs_run",
]


def request_process(
    engine: Engine,
    machine: BishopMachine,
    timings: tuple[LayerTiming, ...],
    label: str = "request",
    batch: int = 1,
    timeline: list[TimelineEntry] | None = None,
    scheduled: bool = False,
):
    """The engine process of one (possibly batched) compiled request."""
    process = scheduled_inference_process if scheduled else inference_process
    return process(engine, machine, timings, label, batch, timeline)


def measure_timings(
    timings: tuple[LayerTiming, ...],
    scheduled: bool = False,
    batch: int = 1,
) -> float:
    """Uncontended single-request makespan of a task graph.

    In fast mode (the ``REPRO_ENGINE`` default) this is answered in
    closed form by the memoized :class:`~repro.arch.engine.fastpath.
    FastSchedule` — the schedule-pass and DSE hot path; kernel mode
    replays the task graph on a fresh event engine
    (:func:`measure_timings_kernel`, the reference implementation).
    """
    timings = tuple(timings)
    mode = engine_mode()
    obs.inc(f"engine.dispatch.{mode}")
    if mode == "fast":
        schedule = schedule_for(timings)
        if scheduled:
            return schedule.scheduled_makespan(batch)
        return schedule.serial_makespan(batch)
    return measure_timings_kernel(timings, scheduled, batch)


def measure_timings_kernel(
    timings: tuple[LayerTiming, ...],
    scheduled: bool = False,
    batch: int = 1,
) -> float:
    """Event-kernel reference measurement (fresh engine, full replay)."""
    engine = Engine()
    machine = BishopMachine(engine)
    engine.spawn(
        request_process(engine, machine, timings, "measure", batch, None, scheduled),
        name="measure",
    )
    return engine.run()


def measure_program(program: Program, batch: int = 1) -> float:
    """Uncontended makespan of a program under its compiled schedule."""
    return measure_timings(program.timings(), program.scheduled, batch)


# ----------------------------------------------------------------------
# Generic two-resource emissions (datapath + DRAM channel), used by the
# inter-layer pipeline analysis for any accelerator's layer chain.
# ----------------------------------------------------------------------
def _serial_pairs_process(
    engine: Engine,
    datapath,
    dram,
    layers: list[tuple[float, float]],
    timeline: list[TimelineEntry],
):
    """Layer-serial schedule: per layer, compute ∥ DRAM, then a barrier."""
    for index, (compute_s, dram_s) in enumerate(layers):
        tasks = []
        if compute_s > 0:
            tasks.append(engine.spawn(
                use(engine, datapath, compute_s, timeline, f"L{index}:compute"),
                name=f"L{index}:compute",
            ))
        if dram_s > 0:
            tasks.append(engine.spawn(
                use(engine, dram, dram_s, timeline, f"L{index}:dram"),
                name=f"L{index}:dram",
            ))
        for task in tasks:
            yield Join(task)


def serial_pairs_run(
    layers: list[tuple[float, float]], label: str = "serial"
) -> tuple[EngineRun, float, float]:
    """Replay ``(compute_s, dram_s)`` pairs layer-serially on the engine.

    Returns ``(run, total compute busy, total dram busy)`` — the busy
    totals feed the pipelined steady-state bound.
    """
    engine = Engine()
    datapath = engine.resource("datapath")
    dram = engine.resource("dram")
    timeline: list[TimelineEntry] = []
    engine.spawn(
        _serial_pairs_process(engine, datapath, dram, layers, timeline),
        name=label,
    )
    engine.run()
    run = EngineRun.capture(engine, timeline=timeline)
    return run, datapath.stats.busy_s, dram.stats.busy_s


def prefetch_pairs_makespan(
    layers: "list[tuple[float, float] | tuple[float, float, float]]",
) -> float:
    """Engine-measured makespan of the depth-1 prefetch schedule on the
    generic two-resource model.

    Layers are ``(compute_s, weight_dram_s, activation_dram_s)`` triples
    (a two-tuple means all-weight traffic).  Only the *weight* stream may
    move early — as soon as the channel frees up and the previous layer
    began computing (the depth-1 double buffer); a layer's activation
    traffic is produced/consumed by the layer itself and stays bound to
    it, exactly as in the executable
    :func:`~repro.arch.engine.machine.scheduled_inference_process`.  Each
    layer completes only when its compute and both its streams have
    finished, so the result sits between the serial ``Σ max(c, d)`` and
    the steady-state bound ``max(Σc, Σd)``.
    """
    triples = [
        (layer[0], layer[1], layer[2] if len(layer) > 2 else 0.0)
        for layer in layers
    ]
    engine = Engine()
    datapath = engine.resource("datapath")
    dram = engine.resource("dram")
    n = len(triples)
    weights_done = [False] * n
    compute_started = [False] * n
    done_gate = engine.gate()
    started_gate = engine.gate()

    def streamer():
        for index, (_, weight_s, _activation_s) in enumerate(triples):
            while index > 0 and not compute_started[index - 1]:
                yield WaitFor(started_gate)
            if weight_s > 0:
                yield from use(engine, dram, weight_s, None, f"L{index}:dram.w")
            weights_done[index] = True
            done_gate.signal()

    def compute_chain():
        streamer_process = None
        for index, (compute_s, _weight_s, activation_s) in enumerate(triples):
            compute_started[index] = True
            tasks = []
            if compute_s > 0:
                tasks.append(engine.spawn(
                    use(engine, datapath, compute_s, None, f"L{index}:compute"),
                    name=f"L{index}:compute",
                ))
            if activation_s > 0:
                tasks.append(engine.spawn(
                    use(engine, dram, activation_s, None, f"L{index}:dram.a"),
                    name=f"L{index}:dram.a",
                ))
            # Spawn/wake the streamer only after this layer's own streams
            # are queued (activation must not trail the next prefetch).
            if streamer_process is None:
                streamer_process = engine.spawn(streamer(), name="streamer")
            started_gate.signal()
            for task in tasks:
                yield Join(task)
            while not weights_done[index]:
                yield WaitFor(done_gate)

    engine.spawn(compute_chain(), name="compute")
    return engine.run()
