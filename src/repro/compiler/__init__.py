"""The Bishop compiler: trace → optimization passes → chip program.

The compiler is the repo's single lowering path.  A
:class:`~repro.model.trace.ModelTrace` is ingested into a tile-level IR
(:class:`Program` → :class:`Stage` → :class:`TileOp`), refined by ordered
optimization passes — TTB bundle packing, error-constrained pruning
planning, stratified dense/sparse core assignment, prefetch/double-buffer
scheduling — and emitted as an engine-ready task graph that the
accelerator, the serving simulator, and the cluster simulator all replay.
Compiled programs are content-addressed in ``repro.compiler.cache`` so
serving and cluster runs reuse compilation across requests, chips, and
worker processes.

See ``docs/COMPILER.md`` for the IR reference, the pass catalog, and the
cache-key semantics.
"""

from .cache import (
    ProgramCache,
    compile_model,
    default_program_cache,
    package_code_hash,
    program_key,
)
from .emit import (
    measure_program,
    measure_timings,
    prefetch_pairs_makespan,
    request_process,
    serial_pairs_run,
)
from .ir import CORE_CLASSES, LEGAL_CORES, Program, Stage, TileOp, legal_cores_for
from .lowering import (
    lower_attention_layer,
    lower_matmul_layer,
    plan_stratification,
    stage_ops,
    unstratified_workload,
)
from .passes import (
    BundlePackingPass,
    Compilation,
    CompilerPass,
    ECPPlanningPass,
    LowerPass,
    PassConfig,
    PassManager,
    SchedulePass,
    StageDraft,
    StratifyPass,
    TraceIngestPass,
    compile_trace,
    default_pipeline,
    materialize_report,
)

__all__ = [
    "CORE_CLASSES",
    "LEGAL_CORES",
    "BundlePackingPass",
    "Compilation",
    "CompilerPass",
    "ECPPlanningPass",
    "LowerPass",
    "PassConfig",
    "PassManager",
    "Program",
    "ProgramCache",
    "SchedulePass",
    "Stage",
    "StageDraft",
    "StratifyPass",
    "TileOp",
    "TraceIngestPass",
    "compile_model",
    "compile_trace",
    "default_pipeline",
    "default_program_cache",
    "legal_cores_for",
    "lower_attention_layer",
    "lower_matmul_layer",
    "materialize_report",
    "measure_program",
    "measure_timings",
    "package_code_hash",
    "plan_stratification",
    "prefetch_pairs_makespan",
    "program_key",
    "request_process",
    "serial_pairs_run",
    "stage_ops",
    "unstratified_workload",
]
