"""The Bishop compiler's tile-level IR: ``Program`` → ``Stage`` → ``TileOp``.

A :class:`Program` is the compiled form of one model inference on one chip
configuration: an ordered tuple of :class:`Stage` objects (one per traced
matmul / attention layer), each holding the :class:`TileOp` occupancies the
stage places on the chip's execution units — dense core, sparse core,
attention core, spike generator, and the DRAM channel — plus JSON-safe
annotations recording what the optimization passes decided (bundle
occupancy, stratification split, ECP keep fractions, work and traffic
accounting).

The IR is deliberately *post-binding*: durations are in seconds on the
target chip's clock, so a deserialized program replays on the discrete-event
engine without touching numpy or the analytic core models — which is what
makes the on-disk program cache (``repro.compiler.cache``) a cheap
cross-process reuse path for serving and cluster simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..model.trace import MATMUL_KINDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arch.engine.machine import LayerTiming
    from ..arch.report import LayerReport

__all__ = [
    "CORE_CLASSES",
    "DRAM_TAGS",
    "LEGAL_CORES",
    "Program",
    "Stage",
    "TileOp",
    "legal_cores_for",
]

# The chip's five contended execution units (Fig. 9) — every TileOp binds to
# exactly one of these core classes.
CORE_CLASSES = ("dense_core", "sparse_core", "attention_core", "spike_gen", "dram")

# DRAM stream kinds: weights may be prefetched by the scheduling pass,
# activations are produced/consumed by the stage itself.
DRAM_TAGS = ("weight", "activation")

# Which core classes may legally execute a stage of each layer kind: matmul
# layers map onto the stratified dense+sparse datapath, attention layers onto
# the reconfigurable AAC/SAC attention core; both feed the spike generator
# and stream through the DRAM channel.
LEGAL_CORES: dict[str, frozenset[str]] = {
    **{
        kind: frozenset({"dense_core", "sparse_core", "spike_gen", "dram"})
        for kind in MATMUL_KINDS
    },
    "attention": frozenset({"attention_core", "spike_gen", "dram"}),
}


def legal_cores_for(kind: str) -> frozenset[str]:
    """Core classes allowed to execute a stage of layer ``kind``."""
    return LEGAL_CORES.get(kind, frozenset(CORE_CLASSES))


@dataclass(frozen=True)
class TileOp:
    """One stage's occupancy of one core class.

    ``tiles`` is the acquire/release granularity on the event engine (TTB
    tile interleaving); ``bytes`` is nonzero for DRAM streams, with ``tag``
    distinguishing the weight stream (prefetchable) from the activation
    stream (bound to its stage).
    """

    core: str
    duration_s: float
    tiles: int = 1
    bytes: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.core not in CORE_CLASSES:
            raise ValueError(
                f"unknown core class {self.core!r}; options {CORE_CLASSES}"
            )
        if self.duration_s < 0:
            raise ValueError(f"negative duration {self.duration_s}")
        if self.tiles < 1:
            raise ValueError(f"tiles must be >= 1, got {self.tiles}")
        if self.tag and self.tag not in DRAM_TAGS:
            raise ValueError(f"unknown dram tag {self.tag!r}; options {DRAM_TAGS}")

    def to_dict(self) -> dict:
        payload = {
            "core": self.core,
            "duration_s": self.duration_s,
            "tiles": self.tiles,
        }
        if self.bytes:
            payload["bytes"] = self.bytes
        if self.tag:
            payload["tag"] = self.tag
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TileOp":
        return cls(
            core=str(payload["core"]),
            duration_s=float(payload["duration_s"]),
            tiles=int(payload.get("tiles", 1)),
            bytes=float(payload.get("bytes", 0.0)),
            tag=str(payload.get("tag", "")),
        )


@dataclass(frozen=True)
class Stage:
    """One traced layer bound to the chip: tile ops plus pass annotations.

    ``report`` carries the full analytic :class:`~repro.arch.report.LayerReport`
    when the stage was compiled in-process (``run_trace`` materializes the
    inference report from it); it is *not* serialized — a cache-loaded
    program has ``report=None`` and still replays on the engine.
    """

    index: int
    block: int
    kind: str
    phase: str
    ops: tuple[TileOp, ...] = ()
    annotations: dict = field(default_factory=dict)
    report: "LayerReport | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        illegal = [op.core for op in self.ops if op.core not in self.legal_cores]
        if illegal:
            raise ValueError(
                f"stage {self.index} ({self.kind}) binds illegal core(s)"
                f" {illegal}; legal: {sorted(self.legal_cores)}"
            )

    # -- structure ---------------------------------------------------------
    @property
    def legal_cores(self) -> frozenset[str]:
        return legal_cores_for(self.kind)

    def op(self, core: str, tag: str | None = None) -> TileOp | None:
        """The (first) op bound to ``core`` (and ``tag``, when given)."""
        for op in self.ops:
            if op.core == core and (tag is None or op.tag == tag):
                return op
        return None

    def _duration(self, core: str, tag: str | None = None) -> float:
        op = self.op(core, tag)
        return op.duration_s if op is not None else 0.0

    # -- timing ------------------------------------------------------------
    @property
    def weight_dram_s(self) -> float:
        return self._duration("dram", "weight")

    @property
    def activation_dram_s(self) -> float:
        return self._duration("dram", "activation")

    @property
    def dram_s(self) -> float:
        return sum(op.duration_s for op in self.ops if op.core == "dram")

    @property
    def compute_s(self) -> float:
        """Critical-path compute time — the Fig.-9 dataflow: dense ∥ sparse
        (or the attention core), then the spike generator merges/fires."""
        return (
            max(self._duration("dense_core"), self._duration("sparse_core"))
            + self._duration("attention_core")
            + self._duration("spike_gen")
        )

    @property
    def latency_s(self) -> float:
        """Uncontended stage latency: compute ∥ double-buffered streaming."""
        return max(self.compute_s, self.dram_s)

    def timing(self) -> "LayerTiming":
        """The engine task descriptor of this stage (exact float round-trip
        with :func:`repro.arch.engine.machine.layer_timing`)."""
        from ..arch.engine.machine import LayerTiming

        def tiles(core: str) -> int:
            op = self.op(core)
            return op.tiles if op is not None else 1

        return LayerTiming(
            block=self.block,
            kind=self.kind,
            phase=self.phase,
            dense_s=self._duration("dense_core"),
            sparse_s=self._duration("sparse_core"),
            attention_s=self._duration("attention_core"),
            spike_gen_s=self._duration("spike_gen"),
            weight_dram_s=self.weight_dram_s,
            activation_dram_s=self.activation_dram_s,
            dynamic_pj=float(self.annotations.get("dynamic_pj", 0.0)),
            weight_dram_pj=float(self.annotations.get("weight_dram_pj", 0.0)),
            dense_tiles=tiles("dense_core"),
            sparse_tiles=tiles("sparse_core"),
            attention_tiles=tiles("attention_core"),
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "block": self.block,
            "kind": self.kind,
            "phase": self.phase,
            "ops": [op.to_dict() for op in self.ops],
            "annotations": dict(self.annotations),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Stage":
        return cls(
            index=int(payload["index"]),
            block=int(payload["block"]),
            kind=str(payload["kind"]),
            phase=str(payload["phase"]),
            ops=tuple(TileOp.from_dict(op) for op in payload.get("ops", ())),
            annotations=dict(payload.get("annotations", {})),
        )


@dataclass(frozen=True)
class Program:
    """A compiled, engine-ready inference: the unit the program cache stores.

    ``passes`` records the pass pipeline that produced the program (in run
    order); ``chip`` is the JSON-safe chip configuration it was bound to;
    ``meta`` carries program-level results (estimated serial latency, the
    scheduling pass's measured makespan, total dynamic energy, …).
    """

    model: str
    stages: tuple[Stage, ...] = ()
    passes: tuple[str, ...] = ()
    chip: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    # -- latency estimates -------------------------------------------------
    @property
    def serial_latency_s(self) -> float:
        """Layer-serial makespan: ``Σ max(compute, dram)`` — the legacy
        ``run_trace`` closed form."""
        return sum(stage.latency_s for stage in self.stages)

    @property
    def pipelined_bound_s(self) -> float:
        """No schedule beats ``max(Σ compute, Σ dram)`` on two resources."""
        return max(
            sum(stage.compute_s for stage in self.stages),
            sum(stage.dram_s for stage in self.stages),
        )

    @property
    def scheduled(self) -> bool:
        """Whether the prefetch/double-buffer scheduling pass ran."""
        return "schedule" in self.passes

    @property
    def scheduled_latency_s(self) -> float | None:
        """Engine-measured makespan under depth-1 weight prefetch (set by
        the scheduling pass; ``None`` when the pass did not run)."""
        value = self.meta.get("scheduled_latency_s")
        return float(value) if value is not None else None

    @property
    def request_latency_s(self) -> float:
        """Uncontended single-request latency under the compiled schedule."""
        if self.scheduled and self.scheduled_latency_s is not None:
            return self.scheduled_latency_s
        return self.serial_latency_s

    # -- energy / work -----------------------------------------------------
    @property
    def dynamic_pj(self) -> float:
        return sum(
            float(stage.annotations.get("dynamic_pj", 0.0)) for stage in self.stages
        )

    @property
    def dram_bytes(self) -> float:
        return sum(op.bytes for stage in self.stages for op in stage.ops)

    # -- engine emission ---------------------------------------------------
    def timings(self) -> tuple["LayerTiming", ...]:
        """The engine task graph (one :class:`LayerTiming` per stage)."""
        return tuple(stage.timing() for stage in self.stages)

    # -- summaries ---------------------------------------------------------
    def tile_counts(self) -> dict[str, int]:
        """Total TTB tiles bound per core class (the ``repro compile`` view)."""
        counts = {core: 0 for core in CORE_CLASSES}
        for stage in self.stages:
            for op in stage.ops:
                counts[op.core] += op.tiles
        return counts

    def bundle_occupancy(self) -> float:
        """Mean active-bundle fraction over stages that annotated it."""
        values = [
            float(stage.annotations["bundle_occupancy"])
            for stage in self.stages
            if "bundle_occupancy" in stage.annotations
        ]
        return sum(values) / len(values) if values else 0.0

    def stage_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for stage in self.stages:
            counts[stage.phase] = counts.get(stage.phase, 0) + 1
        return counts

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "passes": list(self.passes),
            "chip": dict(self.chip),
            "meta": dict(self.meta),
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Program":
        return cls(
            model=str(payload["model"]),
            stages=tuple(Stage.from_dict(s) for s in payload.get("stages", ())),
            passes=tuple(str(p) for p in payload.get("passes", ())),
            chip=dict(payload.get("chip", {})),
            meta=dict(payload.get("meta", {})),
        )
