"""The Bishop compiler's pass pipeline.

Compilation turns a :class:`~repro.model.trace.ModelTrace` into an
engine-ready :class:`~repro.compiler.ir.Program` through ordered,
individually-testable passes over a mutable :class:`Compilation`:

``ingest``
    One :class:`StageDraft` per traced matmul/attention record, annotated
    with raw workload statistics (spikes, MACs, shapes).
``packing``
    TTB bundle packing (Sec. 3): activity tags gate fetch and compute, so
    inactive bundles vanish.  Off → every bundle processed as if active.
``ecp``
    Error-constrained pruning plan (Sec. 5.1, reusing ``repro.algo.ecp``):
    attention stages get certified Q/K bundle-row keep plans.
``stratify``
    Algorithm-1 dense/sparse feature assignment (reusing
    ``repro.arch.stratifier`` through the lowering helpers).  Off → the
    whole layer runs on the dense core.
``lower``
    The analytic core models realize the plans into cycles, energy, and
    traffic; stage drafts gain :class:`~repro.compiler.ir.TileOp` bindings.
``schedule``
    Depth-1 weight-prefetch/double-buffer scheduling: marks weight streams
    prefetchable and measures the scheduled makespan on the event engine.

:func:`compile_trace` assembles the pipeline from a :class:`PassConfig`
(each optimization pass can be toggled off — the ``compiler_pass_ablation``
experiment does exactly that) and the chip config's own policy switches,
which a pass may *disable* but never override on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .. import obs
from ..algo.ecp import ECPConfig
from ..arch.attention_core import merge_attention_heads
from ..arch.config import BishopConfig
from ..arch.energy import EnergyModel
from ..arch.report import InferenceReport, LayerReport
from ..bundles import TTBGrid
from ..model.trace import LayerRecord, ModelTrace
from .ir import Program, Stage, TileOp
from .lowering import (
    lower_attention_layer,
    lower_matmul_layer,
    plan_stratification,
    stage_ops,
    unstratified_workload,
)

__all__ = [
    "Compilation",
    "CompilerPass",
    "PassConfig",
    "PassManager",
    "StageDraft",
    "BundlePackingPass",
    "ECPPlanningPass",
    "LowerPass",
    "SchedulePass",
    "StratifyPass",
    "TraceIngestPass",
    "compile_trace",
    "default_pipeline",
    "materialize_report",
]

# Optimization-pass toggles addressable from CLI specs.
_PASS_TOKENS = {
    "packing": "bundle_packing",
    "bundle_packing": "bundle_packing",
    "stratify": "stratify",
    "ecp": "ecp",
    "schedule": "schedule",
}


@dataclass(frozen=True)
class PassConfig:
    """Which optimization passes run (the mandatory ingest/lower always do)."""

    bundle_packing: bool = True
    stratify: bool = True
    ecp: bool = True
    schedule: bool = True

    @classmethod
    def parse(cls, spec: "str | PassConfig | None") -> "PassConfig":
        """``"all"`` / ``"none"`` / ``"packing+stratify+ecp+schedule"`` (any
        subset, ``+``-separated) → a :class:`PassConfig`."""
        if spec is None:
            return cls()
        if isinstance(spec, PassConfig):
            return spec
        text = spec.strip().lower()
        if text in ("all", "", "default"):
            return cls()
        if text in ("none", "off"):
            return cls(
                bundle_packing=False, stratify=False, ecp=False, schedule=False
            )
        enabled = {}
        for token in text.split("+"):
            token = token.strip()
            if not token:
                continue
            if token not in _PASS_TOKENS:
                raise ValueError(
                    f"unknown compiler pass {token!r}; options"
                    f" {sorted(set(_PASS_TOKENS))} (or 'all'/'none')"
                )
            enabled[_PASS_TOKENS[token]] = True
        return cls(
            bundle_packing=enabled.get("bundle_packing", False),
            stratify=enabled.get("stratify", False),
            ecp=enabled.get("ecp", False),
            schedule=enabled.get("schedule", False),
        )

    def spec(self) -> str:
        """Canonical string form (stable — feeds the program cache key)."""
        names = [
            name
            for name, on in (
                ("packing", self.bundle_packing),
                ("stratify", self.stratify),
                ("ecp", self.ecp),
                ("schedule", self.schedule),
            )
            if on
        ]
        if len(names) == 4:
            return "all"
        return "+".join(names) if names else "none"

    def without(self, name: str) -> "PassConfig":
        """This config with one pass toggled off (ablation helper)."""
        if name not in _PASS_TOKENS:
            raise ValueError(
                f"unknown compiler pass {name!r}; options {sorted(set(_PASS_TOKENS))}"
            )
        return replace(self, **{_PASS_TOKENS[name]: False})


@dataclass
class StageDraft:
    """Mutable per-stage state the passes successively refine."""

    index: int
    record: LayerRecord
    annotations: dict = field(default_factory=dict)
    workload: object | None = None      # StratifiedWorkload (stratify pass)
    packed: bool = False                # bundle-packing pass ran
    ecp: ECPConfig | None = None        # ECP plan (attention stages)
    report: LayerReport | None = None   # set by the lower pass
    ops: tuple[TileOp, ...] = ()

    @property
    def kind(self) -> str:
        return self.record.kind

    @property
    def is_matmul(self) -> bool:
        return self.record.is_matmul


@dataclass
class Compilation:
    """One compilation in flight: inputs, drafts, and the pass log."""

    trace: ModelTrace
    config: BishopConfig
    energy: EnergyModel
    ecp: ECPConfig | None = None
    drafts: list[StageDraft] = field(default_factory=list)
    log: list[str] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def lowering_config(self, draft: StageDraft) -> BishopConfig:
        """The chip config the core models see for ``draft``: the packing
        decision is the pass's, not the config flag's."""
        if self.config.skip_inactive_bundles == draft.packed:
            return self.config
        return self.config.with_overrides(skip_inactive_bundles=draft.packed)


class CompilerPass:
    """One step of the pipeline; subclasses set ``name`` and ``run``."""

    name = "pass"

    def run(self, comp: Compilation) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class TraceIngestPass(CompilerPass):
    """Trace → stage drafts with raw workload statistics."""

    name = "ingest"

    def run(self, comp: Compilation) -> None:
        for record in comp.trace.records:
            if not (record.is_matmul or record.kind == "attention"):
                continue  # tokenizer/head are outside Bishop's scope
            draft = StageDraft(index=len(comp.drafts), record=record)
            draft.annotations["macs"] = float(record.macs())
            if record.is_matmul:
                t, n, d_in = record.input_spikes.shape
                draft.annotations.update(
                    timesteps=float(t), tokens=float(n),
                    in_features=float(d_in),
                    out_features=float(record.weight_shape[1]),
                    spike_count=float(record.input_spikes.sum()),
                )
            else:
                t, h, n, d = record.q.shape
                draft.annotations.update(
                    timesteps=float(t), tokens=float(n), heads=float(h),
                    in_features=float(h * d),
                    spike_count=float(
                        record.q.sum() + record.k.sum() + record.v.sum()
                    ),
                )
            comp.drafts.append(draft)


class BundlePackingPass(CompilerPass):
    """TTB bundle packing: annotate activity tags, enable inactive-bundle
    skipping in the lowering (Sec. 3's Eq.-9 tags)."""

    name = "packing"

    def run(self, comp: Compilation) -> None:
        spec = comp.config.bundle_spec
        for draft in comp.drafts:
            draft.packed = True
            if draft.is_matmul:
                grid = TTBGrid(draft.record.input_spikes, spec)
                draft.annotations.update(
                    num_bundles=float(grid.num_bundles),
                    active_bundles=float(grid.num_active_bundles),
                    bundle_occupancy=grid.bundle_density,
                )
            else:
                q_grid = TTBGrid(merge_attention_heads(draft.record.q), spec)
                k_grid = TTBGrid(merge_attention_heads(draft.record.k), spec)
                total = q_grid.num_bundles + k_grid.num_bundles
                active = q_grid.num_active_bundles + k_grid.num_active_bundles
                draft.annotations.update(
                    num_bundles=float(total),
                    active_bundles=float(active),
                    bundle_occupancy=active / total if total else 0.0,
                )


class ECPPlanningPass(CompilerPass):
    """Error-constrained pruning plan for attention stages (Sec. 5.1).

    The pass decides *which* stages prune and records the certified
    per-score error bound (``max(θ_q, θ_k)`` by construction — no pruning
    run needed); the realized Q/K keep fractions come out of the lowering
    itself (``q_keep_fraction``/``k_keep_fraction`` annotations), which
    runs the pruning exactly once per stage.
    """

    name = "ecp"

    def run(self, comp: Compilation) -> None:
        if comp.ecp is None:
            return
        for draft in comp.drafts:
            if draft.kind != "attention":
                continue
            draft.ecp = comp.ecp
            draft.annotations.update(
                ecp_theta_q=float(comp.ecp.theta_q),
                ecp_theta_k=float(comp.ecp.theta_k),
                ecp_error_bound=float(
                    max(comp.ecp.theta_q, comp.ecp.theta_k)
                ),
            )


class StratifyPass(CompilerPass):
    """Algorithm-1 dense/sparse feature assignment for matmul stages."""

    name = "stratify"

    def run(self, comp: Compilation) -> None:
        for draft in comp.drafts:
            if not draft.is_matmul:
                continue
            config = comp.lowering_config(draft).with_overrides(use_stratifier=True)
            workload = plan_stratification(
                draft.record.input_spikes, draft.record.weight_shape[1], config
            )
            draft.workload = workload
            draft.annotations.update(
                theta_s=workload.theta,
                dense_fraction=workload.dense_fraction,
                dense_features=float(len(workload.dense_features)),
                sparse_features=float(len(workload.sparse_features)),
            )


class LowerPass(CompilerPass):
    """Realize the plans through the analytic core models → tile ops."""

    name = "lower"

    def run(self, comp: Compilation) -> None:
        spec = comp.config.bundle_spec
        for draft in comp.drafts:
            config = comp.lowering_config(draft)
            if draft.is_matmul:
                workload = draft.workload
                if workload is None:  # stratify pass off → everything dense
                    workload = unstratified_workload(draft.record.input_spikes, spec)
                report = lower_matmul_layer(
                    draft.record, workload, config, comp.energy
                )
            else:
                report = lower_attention_layer(
                    draft.record, config, comp.energy, ecp=draft.ecp
                )
            draft.report = report
            ops, annotations = stage_ops(report, config, comp.energy)
            draft.ops = ops
            # Pass annotations (the plan) take precedence over lowering
            # echoes of the same keys.
            draft.annotations = {**annotations, **draft.annotations}


class SchedulePass(CompilerPass):
    """Prefetch/double-buffer scheduling: mark weight streams prefetchable
    and measure the scheduled makespan on the event engine."""

    name = "schedule"

    def run(self, comp: Compilation) -> None:
        from .emit import measure_timings  # local: emit imports the engine

        timings = []
        for draft in comp.drafts:
            if draft.report is None:
                raise RuntimeError("schedule pass requires lowered stages")
            draft.annotations["prefetch_weights"] = True
            timings.append(_draft_stage(draft).timing())
        comp.meta["scheduled_latency_s"] = measure_timings(
            tuple(timings), scheduled=True
        )


def _draft_stage(draft: StageDraft) -> Stage:
    return Stage(
        index=draft.index,
        block=draft.record.block,
        kind=draft.record.kind,
        phase=draft.record.phase,
        ops=draft.ops,
        annotations=dict(draft.annotations),
        report=draft.report,
    )


class PassManager:
    """Runs an ordered pass pipeline and finishes the Program."""

    def __init__(self, pipeline: Sequence[CompilerPass]):
        self.pipeline = tuple(pipeline)

    def run(self, comp: Compilation, meta: dict | None = None) -> Program:
        for compiler_pass in self.pipeline:
            with obs.span(
                f"compile.pass.{compiler_pass.name}", cat="compile"
            ):
                compiler_pass.run(comp)
            comp.log.append(compiler_pass.name)
        if any(draft.report is None for draft in comp.drafts):
            raise RuntimeError(
                "pass pipeline finished without lowering every stage;"
                " include LowerPass"
            )
        stages = tuple(_draft_stage(draft) for draft in comp.drafts)
        program = Program(
            model=comp.trace.model_name,
            stages=stages,
            passes=tuple(comp.log),
            chip=_chip_dict(comp.config),
            meta={**comp.meta, **(meta or {})},
        )
        # Program-level estimates, recorded for dumps and cache hits.
        extra = {
            "serial_latency_s": program.serial_latency_s,
            "pipelined_bound_s": program.pipelined_bound_s,
            "dynamic_pj": program.dynamic_pj,
            "request_latency_s": program.request_latency_s,
        }
        program.meta.update(extra)
        return program


def _chip_dict(config: BishopConfig) -> dict:
    """JSON-safe chip description (nested dataclasses flattened)."""
    import dataclasses

    return dataclasses.asdict(config)


def default_pipeline(
    config: BishopConfig,
    passes: PassConfig,
    ecp: ECPConfig | None = None,
) -> list[CompilerPass]:
    """The standard pipeline for a chip config and pass toggles.

    A pass can *disable* an optimization the chip config already turned
    off (e.g. ``use_stratifier=False``) but never force it back on — the
    config's policy switches remain authoritative, which keeps the
    accelerator's config-driven ablations and the compiler's pass-driven
    ablations consistent.
    """
    pipeline: list[CompilerPass] = [TraceIngestPass()]
    if passes.bundle_packing and config.skip_inactive_bundles:
        pipeline.append(BundlePackingPass())
    if passes.ecp and ecp is not None:
        pipeline.append(ECPPlanningPass())
    if passes.stratify and config.use_stratifier:
        pipeline.append(StratifyPass())
    pipeline.append(LowerPass())
    if passes.schedule:
        pipeline.append(SchedulePass())
    return pipeline


def compile_trace(
    trace: ModelTrace,
    config: BishopConfig | None = None,
    energy: EnergyModel | None = None,
    ecp: ECPConfig | None = None,
    passes: "PassConfig | str | None" = None,
    meta: dict | None = None,
) -> Program:
    """Compile one model trace into an engine-ready :class:`Program`."""
    config = config or BishopConfig()
    energy = energy or EnergyModel()
    pass_config = PassConfig.parse(passes)
    comp = Compilation(trace=trace, config=config, energy=energy, ecp=ecp)
    manager = PassManager(default_pipeline(config, pass_config, ecp))
    base_meta = {"pass_config": pass_config.spec()}
    if meta:
        base_meta.update(meta)
    return manager.run(comp, meta=base_meta)


def materialize_report(program: Program) -> InferenceReport:
    """The analytic :class:`InferenceReport` behind an in-process program.

    Only available when the program was compiled in this process (stage
    reports are not serialized; a cache-loaded program raises).
    """
    layers = []
    for stage in program.stages:
        if stage.report is None:
            raise ValueError(
                "program has no stage reports (loaded from cache?);"
                " recompile from the trace to materialize an InferenceReport"
            )
        layers.append(stage.report)
    return InferenceReport(
        accelerator="bishop",
        model_name=program.model,
        layers=layers,
        program=program,
    )
