"""Layer lowering: the analytic core models applied to one traced layer.

This module is the compiler's back end — and the *single* lowering path of
the repo: :class:`~repro.arch.accelerator.BishopAccelerator` delegates its
per-layer methods here, and the :class:`~repro.compiler.passes.LowerPass`
calls the same functions with pass-derived plans, so config-driven and
pass-driven compilation produce bit-identical :class:`LayerReport`s.

The split of responsibilities:

* :func:`plan_stratification` — Algorithm-1 θ_s policy (the stratify pass);
* :func:`unstratified_workload` — the everything-dense fallback used when
  the stratify pass (or ``config.use_stratifier``) is off;
* :func:`lower_matmul_layer` / :func:`lower_attention_layer` — cycle/energy/
  traffic models composed into a :class:`LayerReport`;
* :func:`stage_ops` — decompose a lowered report into the IR's
  :class:`~repro.compiler.ir.TileOp` occupancies (exact float round-trip
  with the engine's :func:`~repro.arch.engine.machine.layer_timing`).
"""

from __future__ import annotations

import numpy as np

from ..algo.ecp import ECPConfig
from ..arch.attention_core import simulate_attention_core
from ..arch.config import BishopConfig
from ..arch.dense_core import simulate_dense_core
from ..arch.energy import EnergyModel
from ..arch.engine.machine import layer_timing
from ..arch.memory import TrafficLedger, bundle_storage_bytes, spike_payload_bytes
from ..arch.report import EnergyBreakdown, LayerReport
from ..arch.sparse_core import simulate_sparse_core
from ..arch.spike_generator import simulate_spike_generator
from ..arch.stratifier import (
    StratifiedWorkload,
    balanced_theta,
    stratify,
    theta_for_dense_fraction,
)
from ..bundles import BundleSpec, TTBGrid
from ..model.trace import LayerRecord
from .ir import TileOp

__all__ = [
    "lower_attention_layer",
    "lower_matmul_layer",
    "plan_stratification",
    "stage_ops",
    "unstratified_workload",
]


def unstratified_workload(spikes: np.ndarray, spec: BundleSpec) -> StratifiedWorkload:
    """Every feature on the dense core (stratify pass / flag off)."""
    counts = TTBGrid(spikes, spec).active_per_feature
    return StratifiedWorkload(
        dense_features=np.arange(spikes.shape[2]),
        sparse_features=np.array([], dtype=np.int64),
        theta=-1.0,
        active_per_feature=counts,
    )


def plan_stratification(
    spikes: np.ndarray, out_features: int, config: BishopConfig
) -> StratifiedWorkload:
    """Apply the configured θ_s policy to one layer's input spikes.

    Honors ``config.use_stratifier`` (off → everything dense) so the
    accelerator's config-driven path and the compiler's pass-driven path
    share one implementation.
    """
    spec = config.bundle_spec
    if not config.use_stratifier:
        return unstratified_workload(spikes, spec)
    if config.stratify_theta is not None:
        theta = config.stratify_theta
    elif config.stratify_dense_fraction is not None:
        theta = theta_for_dense_fraction(
            spikes, spec, config.stratify_dense_fraction
        )
    else:
        theta = balanced_theta(
            spikes,
            spec,
            dense_time_fn=lambda w: simulate_dense_core(
                spikes[:, :, w.dense_features], out_features, config
            ).cycles,
            sparse_time_fn=lambda w: simulate_sparse_core(
                spikes[:, :, w.sparse_features], out_features, config
            ).cycles,
        )
    return stratify(spikes, spec, theta)


def lower_matmul_layer(
    record: LayerRecord,
    workload: StratifiedWorkload,
    config: BishopConfig,
    energy: EnergyModel,
) -> LayerReport:
    """Lower one projection/MLP layer onto the dense+sparse cores."""
    spikes = record.input_spikes
    d_in, d_out = record.weight_shape
    timesteps, tokens, _ = spikes.shape

    x_dense, x_sparse = workload.split(spikes)
    dense = simulate_dense_core(x_dense, d_out, config)
    sparse = simulate_sparse_core(x_sparse, d_out, config)
    spike_gen = simulate_spike_generator(timesteps, tokens, d_out, config)

    core_cycles = max(dense.cycles, sparse.cycles)
    cycles = core_cycles + spike_gen.cycles
    compute_time = cycles / config.clock_hz

    traffic = TrafficLedger()
    traffic.merge(dense.traffic)
    traffic.merge(sparse.traffic)
    traffic.merge(spike_gen.traffic)

    # DRAM: weights streamed once (output-tiled when they exceed the
    # weight GLB); rows of completely silent input features are never
    # fetched (tag-gated — the structured pruning BSA amplifies).
    # Input/output spike tensors spill only past the ping-pong spike GLB.
    grid = TTBGrid(spikes, config.bundle_spec)
    if config.skip_inactive_bundles:
        alive_features = int((grid.active_per_feature > 0).sum())
    else:
        alive_features = d_in
    weight_bytes = alive_features * d_out * config.weight_bits / 8.0
    traffic.add("dram", "weight", weight_bytes)
    in_payload = bundle_storage_bytes(
        grid.num_active_bundles, config.bundle_spec.volume, grid.num_bundles
    )
    out_payload = spike_payload_bytes(timesteps * tokens, d_out)
    for payload in (in_payload, out_payload):
        spill = max(0.0, payload - config.spike_glb_bytes)
        if spill:
            traffic.add("dram", "activation", 2.0 * spill)  # write + read

    dram_time = traffic.dram_time_s(config.dram)
    latency = max(compute_time, dram_time)

    breakdown = EnergyBreakdown(
        compute_pj=dense.compute_energy_pj(energy) + sparse.compute_energy_pj(energy),
        memory_pj=traffic.energy_pj(energy),
        spike_gen_pj=spike_gen.compute_energy_pj(energy),
        static_pj=energy.static_pj(latency),
        memory_by_kind_pj=traffic.energy_by_kind_pj(energy),
    )
    total_ops = dense.sac_ops + sparse.sparse_ops
    peak = cycles * (config.dense_throughput + config.sparse_throughput)
    return LayerReport(
        block=record.block,
        kind=record.kind,
        phase=record.phase,
        cycles=cycles,
        latency_s=latency,
        energy=breakdown,
        traffic=traffic,
        unit_cycles={
            "dense": dense.cycles,
            "sparse": sparse.cycles,
            "spike_gen": spike_gen.cycles,
        },
        utilization=float(total_ops / peak) if peak else 0.0,
        notes={
            "theta_s": workload.theta,
            "dense_fraction": workload.dense_fraction,
            "dense_cycles": dense.cycles,
            "sparse_cycles": sparse.cycles,
            "sparse_active_pairs": sparse.active_pairs,
            "dram_time_s": dram_time,
            "compute_time_s": compute_time,
            "dense_tiles": dense.tiles,
            "sparse_tiles": sparse.waves,
            "sac_ops": dense.sac_ops,
            "sparse_ops": sparse.sparse_ops,
            "spike_count": float(spikes.sum()),
            "alive_features": float(alive_features),
            "bundle_occupancy": grid.bundle_density,
        },
    )


def lower_attention_layer(
    record: LayerRecord,
    config: BishopConfig,
    energy: EnergyModel,
    ecp: ECPConfig | None = None,
) -> LayerReport:
    """Lower one SSA layer onto the attention core (Modes 1 + 2)."""
    result = simulate_attention_core(record.q, record.k, record.v, config, ecp=ecp)
    timesteps, heads, tokens, head_dim = record.q.shape
    features = heads * head_dim
    spike_gen = simulate_spike_generator(timesteps, tokens, features, config)

    cycles = result.cycles + spike_gen.cycles
    compute_time = cycles / config.clock_hz

    traffic = TrafficLedger()
    traffic.merge(result.traffic)
    traffic.merge(spike_gen.traffic)
    # Q/K/V/Y share the ping-pong spike GLBs, equally partitioned; the
    # binary Q/K/V tensors spill past their quarter share.  Y itself is
    # consumed by the spike generator in-flight and never spills.
    tensor_capacity = 2 * config.spike_glb_bytes / 4.0
    qkv_payload = spike_payload_bytes(timesteps * tokens, features)
    for _ in range(3):  # Q, K, V
        spill = max(0.0, qkv_payload - tensor_capacity)
        if spill:
            traffic.add("dram", "activation", spill)

    dram_time = traffic.dram_time_s(config.dram)
    latency = max(compute_time, dram_time)

    breakdown = EnergyBreakdown(
        compute_pj=result.compute_energy_pj(energy),
        memory_pj=traffic.energy_pj(energy),
        spike_gen_pj=spike_gen.compute_energy_pj(energy),
        static_pj=energy.static_pj(latency),
        memory_by_kind_pj=traffic.energy_by_kind_pj(energy),
    )
    return LayerReport(
        block=record.block,
        kind=record.kind,
        phase=record.phase,
        cycles=cycles,
        latency_s=latency,
        energy=breakdown,
        traffic=traffic,
        unit_cycles={
            "mode1": result.mode1_cycles,
            "mode2": result.mode2_cycles,
            "spike_gen": spike_gen.cycles,
        },
        utilization=result.utilization,
        notes={
            "q_keep_fraction": result.q_keep_fraction,
            "k_keep_fraction": result.k_keep_fraction,
            "score_compute_fraction": result.score_compute_fraction,
            "dram_time_s": dram_time,
            "compute_time_s": compute_time,
            "attention_tiles": result.tiles,
            "aac_ops": result.aac_ops,
            "sac_ops": result.sac_ops,
            "spike_count": float(record.q.sum() + record.k.sum() + record.v.sum()),
        },
    )


def stage_ops(
    report: LayerReport, config: BishopConfig, energy: EnergyModel
) -> tuple[tuple[TileOp, ...], dict]:
    """Decompose a lowered report into IR tile ops plus energy annotations.

    Built on :func:`~repro.arch.engine.machine.layer_timing`, so a stage's
    :meth:`~repro.compiler.ir.Stage.timing` round-trips the engine task
    descriptor exactly — the compiled serving path replays the same floats
    the legacy path did.
    """
    timing = layer_timing(report, config, energy)
    weight_bytes = report.traffic.bytes(level="dram", kind="weight")
    activation_bytes = report.traffic.bytes(level="dram") - weight_bytes

    ops: list[TileOp] = []
    if timing.dense_s > 0:
        ops.append(TileOp("dense_core", timing.dense_s, tiles=timing.dense_tiles))
    if timing.sparse_s > 0:
        ops.append(TileOp("sparse_core", timing.sparse_s, tiles=timing.sparse_tiles))
    if timing.attention_s > 0:
        ops.append(
            TileOp("attention_core", timing.attention_s, tiles=timing.attention_tiles)
        )
    if timing.spike_gen_s > 0:
        ops.append(TileOp("spike_gen", timing.spike_gen_s))
    if timing.weight_dram_s > 0:
        ops.append(
            TileOp("dram", timing.weight_dram_s, bytes=weight_bytes, tag="weight")
        )
    if timing.activation_dram_s > 0:
        ops.append(
            TileOp(
                "dram",
                timing.activation_dram_s,
                bytes=activation_bytes,
                tag="activation",
            )
        )

    annotations = {
        "dynamic_pj": timing.dynamic_pj,
        "weight_dram_pj": timing.weight_dram_pj,
        "energy_pj": report.energy.total_pj,
        "latency_s": report.latency_s,
        "cycles": report.cycles,
        "utilization": report.utilization,
        "dram_weight_bytes": weight_bytes,
        "dram_activation_bytes": activation_bytes,
    }
    # Numeric lowering notes (θ_s, keep fractions, op counts, …) become IR
    # annotations verbatim — they are what the passes decided.
    for key, value in report.notes.items():
        if isinstance(value, (int, float)):
            annotations.setdefault(key, float(value))
    return tuple(ops), annotations
