"""Synthetic datasets standing in for CIFAR / ImageNet-100 / DVS-Gesture / GSC.

No network access means no natural-image datasets; every reproduced claim is
*relative* (sparsity structure, pruning-accuracy trade-off shape, relative
speedups), so we substitute classification tasks with the same tensor shapes
and controllable difficulty:

* :func:`make_image_dataset` — oriented sinusoidal gratings + noise, the
  classic learnable-by-small-models stand-in for natural images.
* :func:`make_event_dataset` — DVS-style event streams of a dot moving in a
  class-dependent direction, voxelized to binary ``(T, P, H, W)`` frames.
* :func:`make_sequence_dataset` — spectrogram-like token sequences with a
  class-dependent frequency contour (Google-Speech-Commands stand-in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..snn import events_to_frames

__all__ = [
    "Dataset",
    "make_image_dataset",
    "make_event_dataset",
    "make_sequence_dataset",
]


@dataclass
class Dataset:
    """Train/test split with iteration helpers.

    ``x`` layouts: images ``(B, C, H, W)``; events ``(B, T, P, H, W)``;
    sequences ``(B, N, F)``.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    kind: str
    num_classes: int

    def batches(
        self, batch_size: int, rng: np.random.Generator
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Shuffled mini-batches over the training split."""
        order = rng.permutation(len(self.x_train))
        for start in range(0, len(order), batch_size):
            index = order[start : start + batch_size]
            yield self.x_train[index], self.y_train[index]


def _split(
    x: np.ndarray, y: np.ndarray, test_fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    order = rng.permutation(len(x))
    x, y = x[order], y[order]
    n_test = max(1, int(len(x) * test_fraction))
    return x[n_test:], y[n_test:], x[:n_test], y[:n_test]


def make_image_dataset(
    num_classes: int = 4,
    samples_per_class: int = 40,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.15,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """Oriented-grating images in ``[0, 1]``, one orientation per class."""
    rng = np.random.default_rng(seed)
    coords = np.arange(image_size) / image_size
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    images, labels = [], []
    for label in range(num_classes):
        angle = np.pi * label / num_classes
        direction = np.cos(angle) * xx + np.sin(angle) * yy
        for _ in range(samples_per_class):
            phase = rng.uniform(0, 2 * np.pi)
            freq = rng.uniform(2.5, 3.5)
            pattern = 0.5 + 0.5 * np.sin(2 * np.pi * freq * direction + phase)
            img = np.repeat(pattern[None], channels, axis=0)
            img = img + rng.normal(0, noise, img.shape)
            images.append(np.clip(img, 0.0, 1.0))
            labels.append(label)
    x = np.asarray(images)
    y = np.asarray(labels, dtype=np.int64)
    return Dataset(*_split(x, y, test_fraction, rng), kind="image", num_classes=num_classes)


def make_event_dataset(
    num_classes: int = 4,
    samples_per_class: int = 40,
    image_size: int = 16,
    timesteps: int = 8,
    events_per_step: int = 12,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """DVS-Gesture-like streams: a drifting event blob anchored, per class, in
    one region of the sensor.

    Class identity is carried by the blob's home region (laptop-scale models
    learn it reliably); the drift, per-event timing jitter, and random
    polarities keep the stream genuinely spatiotemporal, so the resulting
    spike tensors exercise the same code paths as DVS-Gesture clips.
    """
    rng = np.random.default_rng(seed)
    grid = int(np.ceil(np.sqrt(num_classes)))
    clips, labels = [], []
    for label in range(num_classes):
        home = (
            np.array([label % grid + 0.5, label // grid + 0.5])
            / grid * image_size
        )
        for _ in range(samples_per_class):
            start = home + rng.normal(0, image_size / 16, size=2)
            angle = rng.uniform(0, 2 * np.pi)
            velocity = np.array([np.cos(angle), np.sin(angle)])
            events = []
            for step in range(timesteps):
                center = start + velocity * step * (image_size / (4 * timesteps))
                jitter = rng.normal(0, 1.0, size=(events_per_step, 2))
                positions = np.clip(center + jitter, 0, image_size - 1)
                polarity = (rng.random(events_per_step) < 0.5).astype(np.int64)
                for (px, py), pol in zip(positions, polarity):
                    events.append((step + rng.random() * 0.99, px, py, pol))
            frames = events_to_frames(
                np.asarray(events),
                timesteps=timesteps,
                height=image_size,
                width=image_size,
                duration=timesteps,
            )
            clips.append(frames)
            labels.append(label)
    x = np.asarray(clips)  # (B, T, P, H, W)
    y = np.asarray(labels, dtype=np.int64)
    return Dataset(*_split(x, y, test_fraction, rng), kind="event", num_classes=num_classes)


def make_sequence_dataset(
    num_classes: int = 4,
    samples_per_class: int = 40,
    num_tokens: int = 16,
    num_features: int = 16,
    noise: float = 0.1,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """Spectrogram-like sequences: class sets the frequency-contour slope."""
    rng = np.random.default_rng(seed)
    token_axis = np.linspace(0, 1, num_tokens)
    feat_axis = np.arange(num_features)
    sequences, labels = [], []
    for label in range(num_classes):
        slope = (label - (num_classes - 1) / 2) * 0.8
        for _ in range(samples_per_class):
            center0 = rng.uniform(0.3, 0.7) * num_features
            centers = center0 + slope * num_features * (token_axis - 0.5)
            width = rng.uniform(1.2, 2.0)
            contour = np.exp(-0.5 * ((feat_axis[None] - centers[:, None]) / width) ** 2)
            contour = contour + rng.normal(0, noise, contour.shape)
            sequences.append(np.clip(contour, 0.0, 1.0))
            labels.append(label)
    x = np.asarray(sequences)  # (B, N, F)
    y = np.asarray(labels, dtype=np.int64)
    return Dataset(
        *_split(x, y, test_fraction, rng), kind="sequence", num_classes=num_classes
    )
