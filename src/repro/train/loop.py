"""Training loop implementing the paper's BSA / ECP-aware pipeline.

``L_tot = L_CE + λ·L_bsp`` (Sec. 4.1); ECP-aware training simply leaves the
pruner attached during optimization so the network learns around the pruned
attention rows (Sec. 5.1: "Incorporating ECP into training does not
necessarily degrade model accuracy").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algo import BundleSparsityLoss
from ..autograd import Adam, CosineSchedule, SGD, Tensor, functional as F, no_grad
from ..model import SpikingTransformer
from ..snn import direct_encode
from .data import Dataset

__all__ = ["TrainConfig", "TrainHistory", "Trainer", "encode_batch"]


def encode_batch(
    inputs: np.ndarray, kind: str, timesteps: int
) -> np.ndarray:
    """Arrange a raw batch into the ``(T, B, ...)`` layout the model expects."""
    if kind == "image":
        return direct_encode(inputs, timesteps)            # (T, B, C, H, W)
    if kind == "event":
        if inputs.shape[1] != timesteps:
            raise ValueError(
                f"event clips have T={inputs.shape[1]}, model expects {timesteps}"
            )
        return np.moveaxis(inputs, 1, 0)                   # (T, B, P, H, W)
    if kind == "sequence":
        return direct_encode(inputs, timesteps)            # (T, B, N, F)
    raise ValueError(f"unknown dataset kind {kind!r}")


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters for one training run."""

    epochs: int = 10
    batch_size: int = 16
    lr: float = 2e-3
    optimizer: str = "adam"           # "adam" | "sgd"
    weight_decay: float = 0.0
    lambda_bsp: float = 0.0           # λ of Eq. 10; 0 disables BSA
    cosine_lr: bool = True
    seed: int = 0


@dataclass
class TrainHistory:
    """Per-epoch curves recorded by the trainer."""

    loss: list[float] = field(default_factory=list)
    ce_loss: list[float] = field(default_factory=list)
    bsp_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)


class Trainer:
    """Fits a :class:`SpikingTransformer` on a synthetic :class:`Dataset`.

    Parameters
    ----------
    model, dataset:
        The model and data; the dataset ``kind`` must match the model's
        ``input_kind``.
    config:
        Optimization settings.  ``lambda_bsp > 0`` enables BSA, in which case
        ``bsa_loss`` must be provided (it defines the bundle volume and tag).
    bsa_loss:
        A :class:`~repro.algo.bsa.BundleSparsityLoss`; required iff
        ``config.lambda_bsp > 0``.
    """

    def __init__(
        self,
        model: SpikingTransformer,
        dataset: Dataset,
        config: TrainConfig,
        bsa_loss: BundleSparsityLoss | None = None,
    ):
        if dataset.kind != model.config.input_kind:
            raise ValueError(
                f"dataset kind {dataset.kind!r} != model input {model.config.input_kind!r}"
            )
        if config.lambda_bsp > 0 and bsa_loss is None:
            raise ValueError("lambda_bsp > 0 requires a BundleSparsityLoss")
        self.model = model
        self.dataset = dataset
        self.config = config
        self.bsa_loss = bsa_loss
        self.history = TrainHistory()
        params = model.parameters()
        if config.optimizer == "adam":
            self.optimizer = Adam(params, lr=config.lr, weight_decay=config.weight_decay)
        elif config.optimizer == "sgd":
            self.optimizer = SGD(
                params, lr=config.lr, momentum=0.9, weight_decay=config.weight_decay
            )
        else:
            raise ValueError(f"unknown optimizer {config.optimizer!r}")
        steps = max(
            1,
            config.epochs * -(-len(dataset.x_train) // config.batch_size),
        )
        self.schedule = CosineSchedule(self.optimizer, steps) if config.cosine_lr else None
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    def train_step(self, inputs: np.ndarray, labels: np.ndarray) -> dict[str, float]:
        """One optimization step; returns the loss terms and batch accuracy."""
        self.model.train()
        encoded = encode_batch(inputs, self.dataset.kind, self.model.config.timesteps)
        taps: list[tuple[str, Tensor]] | None = (
            [] if self.config.lambda_bsp > 0 else None
        )
        logits = self.model(encoded, taps=taps)
        ce = F.cross_entropy(logits, labels)
        if self.config.lambda_bsp > 0:
            bsp = self.bsa_loss(taps)
            loss = ce + bsp * self.config.lambda_bsp
            bsp_value = bsp.item()
        else:
            loss = ce
            bsp_value = 0.0
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        if self.schedule is not None:
            self.schedule.step()
        predictions = logits.data.argmax(axis=1)
        return {
            "loss": loss.item(),
            "ce": ce.item(),
            "bsp": bsp_value,
            "accuracy": float((predictions == labels).mean()),
        }

    def fit(self, log: bool = False) -> TrainHistory:
        """Run the full training schedule; returns per-epoch history."""
        for epoch in range(self.config.epochs):
            stats: list[dict[str, float]] = []
            for inputs, labels in self.dataset.batches(self.config.batch_size, self._rng):
                stats.append(self.train_step(inputs, labels))
            means = {key: float(np.mean([s[key] for s in stats])) for key in stats[0]}
            test_acc = self.evaluate(self.dataset.x_test, self.dataset.y_test)
            self.history.loss.append(means["loss"])
            self.history.ce_loss.append(means["ce"])
            self.history.bsp_loss.append(means["bsp"])
            self.history.train_accuracy.append(means["accuracy"])
            self.history.test_accuracy.append(test_acc)
            if log:  # pragma: no cover - console output
                print(
                    f"epoch {epoch:3d}  loss {means['loss']:.4f}  "
                    f"ce {means['ce']:.4f}  bsp {means['bsp']:.4f}  "
                    f"train {means['accuracy']:.3f}  test {test_acc:.3f}"
                )
        return self.history

    # ------------------------------------------------------------------
    def evaluate(
        self, inputs: np.ndarray, labels: np.ndarray, batch_size: int = 64
    ) -> float:
        """Top-1 accuracy of the current model on ``(inputs, labels)``."""
        self.model.eval()
        correct = 0
        with no_grad():
            for start in range(0, len(inputs), batch_size):
                chunk = inputs[start : start + batch_size]
                encoded = encode_batch(
                    chunk, self.dataset.kind, self.model.config.timesteps
                )
                logits = self.model(encoded)
                correct += int((logits.data.argmax(axis=1) == labels[start : start + batch_size]).sum())
        self.model.train()
        return correct / len(inputs)
