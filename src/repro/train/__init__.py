"""Training substrate (system S8): synthetic data, trainer, metrics."""

from .data import Dataset, make_event_dataset, make_image_dataset, make_sequence_dataset
from .loop import TrainConfig, Trainer, TrainHistory, encode_batch
from .metrics import collect_taps, confusion_matrix, model_bundle_distributions

__all__ = [
    "Dataset",
    "make_image_dataset",
    "make_event_dataset",
    "make_sequence_dataset",
    "TrainConfig",
    "Trainer",
    "TrainHistory",
    "encode_batch",
    "confusion_matrix",
    "collect_taps",
    "model_bundle_distributions",
]
