"""Evaluation metrics and bundle-statistics extraction from trained models."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..bundles import ActiveBundleDistribution, BundleSpec, active_bundle_distribution
from ..model import SpikingTransformer
from .data import Dataset
from .loop import encode_batch

__all__ = ["confusion_matrix", "collect_taps", "model_bundle_distributions"]


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``matrix[i, j]`` = count of true class ``i`` predicted as ``j``."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def collect_taps(
    model: SpikingTransformer, dataset: Dataset, inputs: np.ndarray
) -> list[tuple[str, np.ndarray]]:
    """Run one eval forward pass and return named spike activations (NumPy)."""
    encoded = encode_batch(inputs, dataset.kind, model.config.timesteps)
    taps: list[tuple[str, Tensor]] = []
    model.eval()
    with no_grad():
        model(encoded, taps=taps)
    model.train()
    return [(name, tensor.data) for name, tensor in taps]


def model_bundle_distributions(
    model: SpikingTransformer,
    dataset: Dataset,
    spec: BundleSpec,
    inputs: np.ndarray | None = None,
    sample: int = 0,
) -> dict[str, ActiveBundleDistribution]:
    """Fig.-5 statistics: active-bundle distribution of every tapped tensor.

    Returns a mapping from tap name (e.g. ``block0.q``) to the per-feature
    active-bundle distribution of batch element ``sample``.
    """
    if inputs is None:
        inputs = dataset.x_test[: max(sample + 1, 4)]
    taps = collect_taps(model, dataset, inputs)
    out: dict[str, ActiveBundleDistribution] = {}
    for name, data in taps:
        spikes = data[:, sample]  # (T, N, D)
        out[name] = active_bundle_distribution(spikes, spec)
    return out
