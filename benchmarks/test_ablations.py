"""Architecture ablations — the design choices DESIGN.md calls out.

Not a single paper figure, but the decomposition behind Figs. 1/9: what TTB
bundling, TTB-level skipping, and stratified heterogeneous dispatch each
contribute on the ImageNet-100 workload.
"""

from conftest import run_once

from repro.harness.ablation import architecture_ablation


def test_architecture_ablations(benchmark, record_result):
    points = run_once(benchmark, lambda: architecture_ablation("model3"))

    full = points["full"]
    # The full design is Pareto-best on latency.
    for variant, point in points.items():
        assert point.latency_s >= full.latency_s * 0.999, variant

    # Each mechanism contributes:
    assert points["no_stratifier"].latency_s > 1.2 * full.latency_s
    assert points["no_skip"].energy_mj > full.energy_mj
    assert points["tiny_bundles"].latency_s > 1.5 * full.latency_s
    assert points["tiny_bundles"].energy_mj > 1.2 * full.energy_mj
    # Removing both skipping and stratification is at least as bad as either.
    assert points["no_skip_no_strat"].edp >= max(
        points["no_skip"].edp, points["no_stratifier"].edp
    ) * 0.999

    record_result(
        "ablations",
        {
            "paper": "mechanism decomposition (Figs. 1/9 narrative)",
            "measured": {
                variant: {
                    "latency_ms": point.latency_s * 1e3,
                    "energy_mj": point.energy_mj,
                    "edp": point.edp,
                    "latency_vs_full": point.latency_s / full.latency_s,
                    "energy_vs_full": point.energy_mj / full.energy_mj,
                }
                for variant, point in points.items()
            },
        },
    )
