"""Sec. 6.4 — heterogeneity ablation (Model 3, architecture only).

Paper: stratified dense∥sparse processing vs dense-core-only gives a 1.39×
speedup and 1.57× energy saving on the MLP/projection workload.
"""

from conftest import run_once

from repro.harness import hetero


def test_sec64_heterogeneity(benchmark, record_result):
    result = run_once(benchmark, lambda: hetero.heterogeneity_ablation("model3"))

    # Paper: 1.39× / 1.57×.  Band: meaningful but bounded gains.
    assert 1.1 < result.speedup < 3.0
    assert 1.1 < result.energy_gain < 4.0
    # The stratifier routes roughly half the features dense (Sec. 6.4: "50%
    # of the workload to the dense core").
    assert 0.15 < result.mean_dense_fraction < 0.85

    record_result(
        "sec64_hetero",
        {
            "paper": {"speedup": 1.39, "energy_gain": 1.57, "dense_share": 0.5},
            "measured": {
                "speedup": result.speedup,
                "energy_gain": result.energy_gain,
                "mean_dense_fraction": result.mean_dense_fraction,
                "hetero_latency_ms": result.hetero_latency_s * 1e3,
                "dense_only_latency_ms": result.dense_only_latency_s * 1e3,
                "hetero_energy_mj": result.hetero_energy_mj,
                "dense_only_energy_mj": result.dense_only_energy_mj,
            },
        },
    )
