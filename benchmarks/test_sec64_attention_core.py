"""Sec. 6.4 — the dedicated attention core vs PTB on SSA layers only
(architecture only, no BSA/ECP).

Paper: 10.7-23.3× latency reduction and 1.39-1.96× energy saving.
"""

import numpy as np
from conftest import run_once

from repro.harness import hetero

MODELS = ("model1", "model2", "model3", "model4")


def test_sec64_attention_core(benchmark, record_result):
    results = run_once(
        benchmark,
        lambda: {m: hetero.attention_core_comparison(m) for m in MODELS},
    )

    latency_gains = [r.latency_gain for r in results.values()]
    energy_gains = [r.energy_gain for r in results.values()]

    # Paper band 10.7-23.3× latency: require every model in a generous
    # envelope and the mean inside 8-30×.
    assert all(5.0 < g < 45.0 for g in latency_gains), latency_gains
    assert 8.0 < float(np.mean(latency_gains)) < 30.0
    # Paper band 1.39-1.96× energy.
    assert all(1.1 < g < 15.0 for g in energy_gains), energy_gains

    record_result(
        "sec64_attention",
        {
            "paper": {"latency_gain_band": [10.7, 23.3], "energy_gain_band": [1.39, 1.96]},
            "measured": {
                model: {
                    "latency_gain": r.latency_gain,
                    "energy_gain": r.energy_gain,
                    "bishop_latency_ms": r.bishop_latency_s * 1e3,
                    "ptb_latency_ms": r.ptb_latency_s * 1e3,
                }
                for model, r in results.items()
            },
        },
    )
