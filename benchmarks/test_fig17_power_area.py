"""Fig. 17 — power/area breakdown of the synthesized Bishop accelerator."""

import pytest
from conftest import run_once

from repro.harness import run_experiment

PAPER = {
    "totals": {"area_mm2": 2.96, "power_mw": 627.0},
    "ptb_totals": {"area_mm2": 2.80, "power_mw": 606.9},
    "power_fractions": {
        "sparse_core": 0.115, "dense_core": 0.392, "attention_core": 0.387,
        "spike_generator": 0.029, "glb": 0.077,
    },
    "area_fractions": {
        "sparse_core": 0.128, "dense_core": 0.313, "attention_core": 0.360,
        "spike_generator": 0.032, "glb": 0.167,
    },
}


def test_fig17_power_area(benchmark, record_result):
    out = run_once(benchmark, lambda: run_experiment("fig17"))

    assert out["bishop_totals"]["area_mm2"] == pytest.approx(2.96, abs=0.01)
    assert out["bishop_totals"]["power_mw"] == pytest.approx(627.0, abs=0.5)
    assert out["ptb_totals"]["area_mm2"] == pytest.approx(2.80, abs=0.01)

    total_power = out["bishop_totals"]["power_mw"]
    total_area = out["bishop_totals"]["area_mm2"]
    for component, fraction in PAPER["power_fractions"].items():
        measured = out["bishop"][component]["power_mw"] / total_power
        assert measured == pytest.approx(fraction, abs=0.01), component
    for component, fraction in PAPER["area_fractions"].items():
        measured = out["bishop"][component]["area_mm2"] / total_area
        assert measured == pytest.approx(fraction, abs=0.01), component

    record_result("fig17", {"paper": PAPER, "measured": out})
