"""Fig. 16 — TTB bundle-volume (BS_t, BS_n) sensitivity (Model 3).

Paper shape: U-curves for energy and latency with a near-optimal band at
volume ≈4-8; very small volumes lose reuse, very large ones bundle idle
tokens so spike-activation memory share grows while weight share falls
(13%→21.4% and 36.9%→16.9% when going from (2,4) to (4,14)).
"""

import numpy as np
from conftest import run_once

from repro.harness import fig16


def test_fig16_bundle_volume(benchmark, record_result):
    points = run_once(benchmark, lambda: fig16.bundle_volume_sweep("model3"))
    by_volume = sorted(points, key=lambda p: p.volume)

    # Optimal total latency lands in the paper's 4-8 volume band.
    best = min(points, key=lambda p: p.total_latency_s)
    assert 4 <= best.volume <= 8, (best.bs_t, best.bs_n)

    # U-shape: the extremes are worse than the band optimum.
    smallest = by_volume[0]
    largest = by_volume[-1]
    assert smallest.total_latency_s > best.total_latency_s
    assert largest.total_latency_s > best.total_latency_s

    # Memory-share crossover: activation share grows with volume while the
    # weight share falls.
    small_band = [p for p in points if p.volume <= 8]
    large_band = [p for p in points if p.volume >= 28]
    assert large_band, "sweep must include a large-volume point"
    act_small = np.mean([p.activation_memory_share for p in small_band])
    act_large = np.mean([p.activation_memory_share for p in large_band])
    w_small = np.mean([p.weight_memory_share for p in small_band])
    w_large = np.mean([p.weight_memory_share for p in large_band])
    assert act_large > act_small
    assert w_large < w_small

    record_result(
        "fig16",
        {
            "paper": {
                "optimal_volume_band": [4, 8],
                "activation_share_growth": [0.13, 0.214],
                "weight_share_drop": [0.369, 0.169],
            },
            "measured": [
                {
                    "bs_t": p.bs_t,
                    "bs_n": p.bs_n,
                    "volume": p.volume,
                    "total_latency_ms": p.total_latency_s * 1e3,
                    "total_energy_mj": p.total_energy_mj,
                    "attention_latency_ms": p.attention_latency_s * 1e3,
                    "matmul_latency_ms": p.matmul_latency_s * 1e3,
                    "weight_memory_share": p.weight_memory_share,
                    "activation_memory_share": p.activation_memory_share,
                }
                for p in by_volume
            ],
        },
    )
