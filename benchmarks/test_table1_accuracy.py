"""Table 1 — accuracy comparison: ANN vs conventional SNNs vs spiking
transformer, reproduced as an *ordering* on the synthetic task.

Paper shape (per dataset): ANN ≥ spiking transformer > prior SNNs, with the
spiking transformer clearly closing most of the ANN-SNN gap.
"""

from conftest import run_once

from repro.harness import table1


def test_table1_accuracy(benchmark, record_result):
    rows = run_once(benchmark, lambda: table1.run_table1(seed=0, epochs=12))
    accuracy = {row.network: row.accuracy for row in rows}

    chance = 0.25  # 4 synthetic classes
    # Everything learns something.
    for network, acc in accuracy.items():
        assert acc > chance + 0.1, (network, acc)

    # The spiking transformer is the best SNN.
    snn_rows = [row for row in rows if row.family == "SNN"]
    best_snn = max(snn_rows, key=lambda r: r.accuracy)
    assert best_snn.network == "Spiking Transformer", accuracy

    # And approaches (or matches) the ANN reference.
    assert accuracy["Spiking Transformer"] >= accuracy["ANN MLP"] - 0.15, accuracy

    record_result(
        "table1",
        {
            "paper": "ANN >= spiking transformer > conventional SNNs",
            "measured_accuracy": accuracy,
        },
    )
