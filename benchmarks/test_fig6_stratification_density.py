"""Fig. 6 — spike/TTB density of the raw and stratified workloads, ± BSA.

Paper anchors (output projection, 3rd block, Model 1): unstratified
6.34%/11.16% (spike/TTB) → stratified-up 1.28%/8.58% and stratified-down
23.89%/75.50%; with BSA everything drops (2.75%/5.22% unstratified).
"""

from conftest import run_once

from repro.harness import run_experiment


def test_fig6_stratification_density(benchmark, record_result):
    out = run_once(benchmark, lambda: run_experiment("fig6"))

    for variant in ("without_bsa", "with_bsa"):
        entry = out[variant]
        dense = entry["stratified_down_dense"]
        sparse = entry["stratified_up_sparse"]
        overall = entry["overall"]
        # Stratification separates densities in both directions.
        assert dense["spike_density"] > overall["spike_density"] > sparse["spike_density"]
        assert dense["bundle_density"] > overall["bundle_density"] > sparse["bundle_density"]
        # TTB density always sits above spike density (bundle clustering).
        for report in (dense, sparse, overall):
            if report["num_features"]:
                assert report["bundle_density"] >= report["spike_density"]

    # BSA lowers both densities of the whole workload.
    assert (
        out["with_bsa"]["overall"]["spike_density"]
        < out["without_bsa"]["overall"]["spike_density"]
    )
    assert (
        out["with_bsa"]["overall"]["bundle_density"]
        < out["without_bsa"]["overall"]["bundle_density"]
    )

    record_result(
        "fig6",
        {
            "paper": {
                "without_bsa": {"overall": [0.0634, 0.1116], "up": [0.0128, 0.0858], "down": [0.2389, 0.7550]},
                "with_bsa": {"overall": [0.0275, 0.0522]},
            },
            "measured": out,
        },
    )
