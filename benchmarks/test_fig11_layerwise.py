"""Fig. 11 — layer-wise (block × phase) latency/energy, Bishop vs PTB.

Paper shape: PTB bars sit above Bishop's in every phase, with the spiking
self-attention (ATN) phase showing the largest gap.
"""

from conftest import run_once

from repro.harness import fig11

MODELS = ("model1", "model2", "model3", "model4")


def test_fig11_layerwise(benchmark, record_result):
    comparisons = run_once(
        benchmark,
        lambda: {model: fig11.layerwise_comparison(model) for model in MODELS},
    )

    payload = {}
    for model, comparison in comparisons.items():
        # Bishop wins every phase on average.
        for phase in fig11.PHASES:
            assert comparison.mean_latency_ratio(phase) > 1.0, (model, phase)
        # Attention is the biggest win (the dedicated AAC/SAC core).
        atn = comparison.mean_latency_ratio("ATN")
        rest = max(comparison.mean_latency_ratio(p) for p in ("P1", "P2", "MLP"))
        assert atn > rest, model
        payload[model] = {
            "mean_latency_ratio_by_phase": {
                phase: comparison.mean_latency_ratio(phase) for phase in fig11.PHASES
            },
            "mean_energy_ratio_by_phase": {
                phase: comparison.mean_energy_ratio(phase) for phase in fig11.PHASES
            },
            "cells": [
                {
                    "block": cell.block,
                    "phase": cell.phase,
                    "bishop_latency": cell.bishop_latency,
                    "ptb_latency": cell.ptb_latency,
                    "bishop_energy": cell.bishop_energy,
                    "ptb_energy": cell.ptb_energy,
                }
                for cell in comparison.cells
            ],
        }

    record_result(
        "fig11",
        {
            "paper": "PTB > Bishop on every (block, phase); ATN gap largest",
            "measured": payload,
        },
    )
