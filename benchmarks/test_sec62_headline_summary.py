"""Sec. 6.2 — headline averages: 5.91× speedup and 6.11× energy efficiency
over PTB, ~299× speedup over the edge GPU (full Bishop+BSA+ECP stack)."""

from conftest import run_once

from repro.harness import endtoend


def test_sec62_headline_summary(benchmark, record_result):
    def run():
        grid = endtoend.run_grid()
        return grid, endtoend.headline_summary(grid)

    grid, summary = run_once(benchmark, run)

    # Paper: 5.91× mean speedup; accept a generous band around it since our
    # substrate is an analytic simulator, not the authors' RTL.
    assert 3.0 < summary["mean_speedup_vs_ptb"] < 12.0
    # Paper: 6.11× mean energy gain.
    assert 2.5 < summary["mean_energy_gain_vs_ptb"] < 12.0
    # Paper: ~299× mean over the edge GPU (173.9-474.8 per model).
    assert 100 < summary["mean_speedup_vs_gpu"] < 700

    record_result(
        "sec62",
        {
            "paper": {
                "mean_speedup_vs_ptb": 5.91,
                "mean_energy_gain_vs_ptb": 6.11,
                "mean_speedup_vs_gpu": 299.0,
            },
            "measured": summary,
        },
    )
