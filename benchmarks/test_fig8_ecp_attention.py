"""Figs. 7-8 — ECP mechanics: compounding reduction and attention focus.

Paper shape: pruning Q rows and K rows compounds multiplicatively on the
attention map; the surviving scores concentrate the attention mass ("ECP
enhances focus on important regions"); every pruned score was below the
certified bound.
"""

from conftest import run_once

from repro.harness import run_experiment


def test_fig8_ecp_attention(benchmark, record_result):
    out = run_once(benchmark, lambda: run_experiment("fig8"))

    # Focus: far fewer nonzero score entries after ECP.
    assert out["nonzero_score_fraction_after"] < out["nonzero_score_fraction_before"]
    # Compounding (Fig. 7): the surviving S fraction is the product of the
    # Q/K keep fractions — both well below 1 on the ImageNet-100 model.
    assert out["q_keep_fraction"] < 0.6
    assert out["k_keep_fraction"] < 0.6
    # The certified bound holds on the real tensors.
    assert out["max_score_error"] < out["certified_bound"]

    record_result("fig8", {"paper": "error < θ_p; compounding Q×K reduction", "measured": out})
