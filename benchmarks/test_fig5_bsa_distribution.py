"""Fig. 5 — BSA reshapes the active-bundle distribution of Q/K.

Paper shape: with BSA, the mean number of active bundles per feature drops
and the fraction of features with *no* active bundles rises (9.3%→52.2% for
Model 1's Q), all without losing accuracy.
"""

from conftest import run_once

from repro.harness import run_experiment


def test_fig5_bsa_distribution(benchmark, record_result):
    out = run_once(benchmark, lambda: run_experiment("fig5"))

    base, bsa = out["baseline"], out["bsa"]
    # BSA lowers per-feature bundle activity...
    assert bsa["mean_active_bundles"] < base["mean_active_bundles"]
    # ...raises (or at least keeps) the silent-feature fraction...
    assert bsa["zero_feature_fraction"] >= base["zero_feature_fraction"] - 0.02
    # ...and keeps the model usable — well above 4-class chance (the paper
    # preserves accuracy outright, but at 300 epochs with a tuned λ).
    assert bsa["accuracy"] > 0.45
    assert bsa["accuracy"] > base["accuracy"] - 0.35

    record_result(
        "fig5",
        {
            "paper": {
                "zero_feature_fraction_shift_model1_q": [0.093, 0.522],
                "note": "laptop-scale: 12 epochs vs the paper's 300",
            },
            "measured": out,
        },
    )
