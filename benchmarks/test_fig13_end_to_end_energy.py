"""Fig. 13 — end-to-end normalized energy across the five models.

The paper's headline: 6.11× average energy-efficiency gain over PTB for the
full Bishop+BSA+ECP stack, with every algorithm step adding savings.
"""

from conftest import run_once

from repro.harness import endtoend


def test_fig13_end_to_end_energy(benchmark, record_result):
    grid = run_once(benchmark, endtoend.run_grid)

    measured = {
        model: {
            system: comparison.energy_gain_vs(system)
            for system in ("bishop", "bishop_bsa", "bishop_bsa_ecp")
        }
        for model, comparison in grid.items()
    }

    for model, comparison in grid.items():
        # Bishop saves energy vs PTB; BSA and ECP never cost energy.
        assert measured[model]["bishop"] > 1.2, model
        assert (
            measured[model]["bishop"]
            <= measured[model]["bishop_bsa"] * 1.001
            <= measured[model]["bishop_bsa_ecp"] * 1.002
        ), model
        # GPU is orders of magnitude worse.
        gpu_gain = (
            comparison.results["gpu"].energy_mj
            / comparison.results["bishop_bsa_ecp"].energy_mj
        )
        assert gpu_gain > 100, model

    mean_gain = sum(m["bishop_bsa_ecp"] for m in measured.values()) / len(measured)
    # Paper average: 6.11×.  Accept the 2-12× band for the shape criterion.
    assert 2.0 < mean_gain < 12.0

    record_result(
        "fig13",
        {
            "paper": {"mean_energy_gain_vs_ptb": 6.11},
            "measured_mean_energy_gain_vs_ptb": mean_gain,
            "measured_energy_gains_vs_ptb": measured,
            "measured_energy_mj": {
                model: {
                    system: result.energy_mj
                    for system, result in comparison.results.items()
                }
                for model, comparison in grid.items()
            },
        },
    )
