"""Table 2 — the spiking transformer model zoo."""

from conftest import run_once

from repro.harness import run_experiment

PAPER_TABLE2 = {
    "model1": {"blocks": 4, "timesteps": 10, "tokens": 64, "features": 384},
    "model2": {"blocks": 4, "timesteps": 8, "tokens": 64, "features": 384},
    "model3": {"blocks": 8, "timesteps": 4, "tokens": 196, "features": 128},
    "model4": {"blocks": 2, "timesteps": 20, "tokens": 64, "features": 128},
    "model5": {"blocks": 4, "timesteps": 8, "tokens": 256, "features": 384},
}


def test_table2_model_zoo(benchmark, record_result):
    zoo = run_once(benchmark, lambda: run_experiment("table2"))
    for model, expected in PAPER_TABLE2.items():
        for key, value in expected.items():
            assert zoo[model][key] == value, (model, key)
    record_result("table2", {"paper": PAPER_TABLE2, "measured": zoo})
