"""Fig. 15 — stratification threshold θ_s sweep (Model 3).

Paper shape: near-balanced splits minimize EDP (≈2.49× better than PTB at
equal area); heavy imbalance degrades EDP by up to 1.65×; energy moves less
than latency across the sweep.
"""

import numpy as np
from conftest import run_once

from repro.harness import fig15


def test_fig15_stratification_sweep(benchmark, record_result):
    sweep = run_once(benchmark, lambda: fig15.stratification_sweep("model3"))

    edps = [p.edp for p in sweep.points]
    fractions = [p.dense_fraction_target for p in sweep.points]

    # The optimum is interior (a U-shape), not at either extreme split.
    best_index = int(np.argmin(edps))
    assert 0 < best_index < len(edps) - 1, fractions[best_index]

    # Balanced policy lands near the swept optimum and beats PTB on EDP.
    assert sweep.balanced.edp <= min(edps) * 1.25
    assert sweep.edp_gain_vs_ptb > 1.5      # paper: ≈2.49×

    # Imbalance penalty is material (paper: up to 1.65×).
    assert sweep.worst_imbalance_penalty > 1.15

    # Latency varies more than energy across the sweep (Sec. 6.5.1).
    latencies = np.array([p.latency_s for p in sweep.points])
    energies = np.array([p.energy_mj for p in sweep.points])
    assert latencies.max() / latencies.min() > energies.max() / energies.min()

    record_result(
        "fig15",
        {
            "paper": {"edp_gain_vs_ptb": 2.49, "worst_imbalance_penalty": 1.65},
            "measured": {
                "edp_gain_vs_ptb": sweep.edp_gain_vs_ptb,
                "worst_imbalance_penalty": sweep.worst_imbalance_penalty,
                "points": [
                    {
                        "dense_fraction": p.dense_fraction_target,
                        "latency_ms": p.latency_s * 1e3,
                        "energy_mj": p.energy_mj,
                        "edp": p.edp,
                    }
                    for p in sweep.points
                ],
            },
        },
    )
