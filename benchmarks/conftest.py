"""Shared helpers for the reproduction benchmarks.

Every bench runs its experiment once (``benchmark.pedantic`` with a single
round — the underlying simulations are deterministic), asserts the paper's
*shape* criteria, and dumps a JSON artifact with paper-vs-measured values to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.runtime import ArtifactStore

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_store() -> ArtifactStore:
    RESULTS_DIR.mkdir(exist_ok=True)
    return ArtifactStore(RESULTS_DIR)


@pytest.fixture
def record_result(results_store):
    """Write one experiment's paper-vs-measured artifact."""

    def _write(experiment_id: str, payload: dict) -> None:
        results_store.write(experiment_id, payload)

    return _write


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
