"""Shared helpers for the reproduction benchmarks.

Every bench runs its experiment once (``benchmark.pedantic`` with a single
round — the underlying simulations are deterministic), asserts the paper's
*shape* criteria, and dumps a JSON artifact with paper-vs-measured values to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write one experiment's paper-vs-measured artifact."""

    def _write(experiment_id: str, payload: dict) -> None:
        path = results_dir / f"{experiment_id}.json"
        path.write_text(json.dumps(payload, indent=2, default=float, sort_keys=True))

    return _write


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
