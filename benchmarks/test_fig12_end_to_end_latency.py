"""Fig. 12 — end-to-end normalized latency across the five models.

Paper anchors (speedup over PTB): Model1 4.68/6.37/6.71, Model2
3.95/4.90/5.14, Model3 5.17/6.34/7.73, Model4 3.30/3.81/4.06 for
Bishop / +BSA / +BSA+ECP; GPU speedups land in the ~70-475× range.
Model5 (1.43/1.92/4.00) is a known deviation — see EXPERIMENTS.md.
"""

from conftest import run_once

from repro.harness import endtoend

PAPER_SPEEDUPS = {
    "model1": {"bishop": 4.68, "bishop_bsa": 6.37, "bishop_bsa_ecp": 6.71},
    "model2": {"bishop": 3.95, "bishop_bsa": 4.90, "bishop_bsa_ecp": 5.14},
    "model3": {"bishop": 5.17, "bishop_bsa": 6.34, "bishop_bsa_ecp": 7.73},
    "model4": {"bishop": 3.30, "bishop_bsa": 3.81, "bishop_bsa_ecp": 4.06},
    "model5": {"bishop": 1.43, "bishop_bsa": 1.92, "bishop_bsa_ecp": 4.00},
}

# Models the calibrated simulator reproduces within ±50% on every system.
IN_BAND_MODELS = ("model1", "model2", "model3", "model4")


def test_fig12_end_to_end_latency(benchmark, record_result):
    grid = run_once(benchmark, endtoend.run_grid)

    measured = {
        model: {
            system: comparison.speedup_vs(system)
            for system in ("bishop", "bishop_bsa", "bishop_bsa_ecp")
        }
        for model, comparison in grid.items()
    }

    for model in IN_BAND_MODELS:
        for system, paper_value in PAPER_SPEEDUPS[model].items():
            got = measured[model][system]
            assert 0.5 * paper_value < got < 2.0 * paper_value, (
                f"{model}/{system}: measured {got:.2f} vs paper {paper_value}"
            )

    # Shape criteria that must hold for every model, including model5:
    for model, comparison in grid.items():
        assert comparison.speedup_vs("bishop") > 1.0, model
        assert (
            measured[model]["bishop"]
            <= measured[model]["bishop_bsa"] * 1.001
            <= measured[model]["bishop_bsa_ecp"] * 1.002
        ), model
        gpu_speedup = comparison.speedup_vs("bishop_bsa_ecp", baseline="gpu")
        assert 50 < gpu_speedup < 900, (model, gpu_speedup)

    record_result(
        "fig12",
        {
            "paper_speedups_vs_ptb": PAPER_SPEEDUPS,
            "measured_speedups_vs_ptb": measured,
            "measured_latency_ms": {
                model: {
                    system: result.latency_s * 1e3
                    for system, result in comparison.results.items()
                }
                for model, comparison in grid.items()
            },
        },
    )
