"""Fig. 3 — FLOPs breakdown of spiking transformers.

Paper shape: attention + MLP dominate (66.5%-91.0% across the sweep) and the
attention share intensifies as N grows.
"""

from conftest import run_once

from repro.harness import run_experiment


def test_fig3_flops_breakdown(benchmark, record_result):
    sweep = run_once(benchmark, lambda: run_experiment("fig3"))

    shares = {k: v["attention_plus_mlp_fraction"] for k, v in sweep.items()}
    # Cumulative attention+MLP share band (paper: 0.665-0.910).
    assert all(0.5 < s < 0.95 for s in shares.values()), shares

    # Attention dominance grows with N at fixed depth.
    by_n = {
        64: sweep["N64_D384_L8"]["attention_fraction"],
        128: sweep["N128_D256_L8"]["attention_fraction"],
        196: sweep["N196_D128_L8"]["attention_fraction"],
    }
    assert by_n[64] < by_n[128] < by_n[196]

    record_result(
        "fig3",
        {
            "paper": {"attention_plus_mlp_band": [0.665, 0.910]},
            "measured": sweep,
        },
    )
