"""Fig. 14 — ECP threshold sweep: accuracy vs SSA energy-efficiency/speedup.

Paper anchors: at the chosen thresholds, CIFAR10 keeps ~72%/52% of Q/K with
2.25× SSA speedup; ImageNet-100 keeps ~11%/10% with 65.8× speedup and 38.8×
energy efficiency; DVS-Gesture keeps ~8%/5.5% with 170.7× speedup; accuracy
stays flat (sometimes improving) for moderate θ, degrading only past the
"appropriate θ_p range".
"""

from conftest import run_once

from repro.harness import fig14

PAPER_ANCHORS = {
    # model: (theta, q_keep, k_keep, min_speedup, max_speedup)
    "model1": (8, 0.718, 0.520, 1.4, 8.0),
    "model3": (6, 0.107, 0.097, 15.0, 400.0),
    "model4": (10, 0.080, 0.055, 20.0, 600.0),
}


def test_fig14_hardware_sweep(benchmark, record_result):
    sweeps = run_once(
        benchmark,
        lambda: {
            model: fig14.ecp_hardware_sweep(model)
            for model in ("model1", "model2", "model3", "model4")
        },
    )

    for model, points in sweeps.items():
        thetas = [p.theta for p in points]
        keeps = [p.q_keep_fraction for p in points]
        speedups = [p.speedup for p in points]
        # Monotone: higher θ prunes more and speeds SSA up.
        assert all(a >= b - 1e-12 for a, b in zip(keeps, keeps[1:])), model
        assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:])), model

    for model, (theta, q_keep, k_keep, lo, hi) in PAPER_ANCHORS.items():
        point = next(p for p in sweeps[model] if p.theta == theta)
        assert abs(point.q_keep_fraction - q_keep) < 0.25, (model, point.q_keep_fraction)
        assert abs(point.k_keep_fraction - k_keep) < 0.25, (model, point.k_keep_fraction)
        assert lo < point.speedup < hi, (model, point.speedup)

    record_result(
        "fig14_hardware",
        {
            "paper_anchors": {
                m: {"theta": a[0], "q_keep": a[1], "k_keep": a[2]}
                for m, a in PAPER_ANCHORS.items()
            },
            "measured": {
                model: [
                    {
                        "theta": p.theta,
                        "q_keep": p.q_keep_fraction,
                        "k_keep": p.k_keep_fraction,
                        "speedup": p.speedup,
                        "energy_efficiency": p.energy_efficiency,
                    }
                    for p in points
                ]
                for model, points in sweeps.items()
            },
        },
    )


def test_fig14_accuracy_sweep(benchmark, record_result):
    points = run_once(benchmark, lambda: fig14.ecp_accuracy_sweep())

    accuracies = {p.theta: p.accuracy for p in points}
    base = accuracies[0]
    # Plateau: moderate thresholds stay within a small band of the baseline
    # (the paper reports drops < ~1.3% and occasional improvements).
    moderate = [p for p in points if 0 < p.theta <= 2]
    assert moderate, "sweep must include moderate thresholds"
    for p in moderate:
        assert p.accuracy > base - 0.30, (p.theta, p.accuracy, base)
    # Pruning monotone in θ.
    keeps = [p.q_keep_fraction for p in points]
    assert all(a >= b - 1e-12 for a, b in zip(keeps, keeps[1:]))

    record_result(
        "fig14_accuracy",
        {
            "paper": "flat accuracy for moderate θ, degradation beyond",
            "measured": [
                {
                    "theta": p.theta,
                    "accuracy": p.accuracy,
                    "q_keep": p.q_keep_fraction,
                    "k_keep": p.k_keep_fraction,
                }
                for p in points
            ],
        },
    )
