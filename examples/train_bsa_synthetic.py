"""Bundle-Sparsity-Aware training (BSA) end to end — paper Sec. 4.1.

Trains the same tiny spiking transformer twice on a synthetic image task —
once with plain cross-entropy, once with the BSA objective
``L_tot = L_CE + λ·L_bsp`` — then compares accuracy, bundle-level sparsity
(the Fig.-5 statistics), and simulated Bishop latency/energy of the two
models' real inference workloads.

Run:  python examples/train_bsa_synthetic.py [--epochs N]
"""

import argparse

import numpy as np

from repro.algo import BundleSparsityLoss
from repro.arch import BishopAccelerator, BishopConfig
from repro.bundles import BundleSpec
from repro.model import SpikingTransformer, tiny_config
from repro.train import (
    TrainConfig,
    Trainer,
    encode_batch,
    make_image_dataset,
    model_bundle_distributions,
)

SPEC = BundleSpec(2, 2)


def train(dataset, lambda_bsp: float, epochs: int = 12):
    model = SpikingTransformer(tiny_config(num_classes=4), seed=1)
    bsa = BundleSparsityLoss(SPEC) if lambda_bsp else None
    trainer = Trainer(
        model,
        dataset,
        TrainConfig(epochs=epochs, batch_size=24, lr=3e-3,
                    lambda_bsp=lambda_bsp, seed=0),
        bsa_loss=bsa,
    )
    trainer.fit(log=True)
    return model, trainer


def sparsity_summary(model, dataset) -> tuple[float, float]:
    dists = model_bundle_distributions(model, dataset, SPEC)
    mean_active = float(np.mean([d.mean_active for d in dists.values()]))
    zero_frac = float(np.mean([d.zero_fraction for d in dists.values()]))
    return mean_active, zero_frac


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=12,
                        help="training epochs per run (smoke tests use 1)")
    args = parser.parse_args()
    dataset = make_image_dataset(
        num_classes=4, samples_per_class=24, image_size=16, seed=3
    )

    print("=== baseline (λ = 0) ===")
    base_model, base_trainer = train(dataset, lambda_bsp=0.0, epochs=args.epochs)
    print("\n=== BSA (λ = 10, saturating tag) ===")
    bsa_model, bsa_trainer = train(dataset, lambda_bsp=10.0, epochs=args.epochs)

    base_acc = base_trainer.evaluate(dataset.x_test, dataset.y_test)
    bsa_acc = bsa_trainer.evaluate(dataset.x_test, dataset.y_test)
    base_active, base_zero = sparsity_summary(base_model, dataset)
    bsa_active, bsa_zero = sparsity_summary(bsa_model, dataset)

    print("\n                   baseline    BSA")
    print(f"test accuracy      {base_acc:8.3f} {bsa_acc:8.3f}")
    print(f"active bundles/ft  {base_active:8.2f} {bsa_active:8.2f}")
    print(f"silent features    {base_zero:8.1%} {bsa_zero:8.1%}")

    # Simulate both models' real workloads on Bishop.
    accel = BishopAccelerator(BishopConfig(bundle_spec=SPEC))
    x = encode_batch(dataset.x_test[:2], "image", base_model.config.timesteps)
    base_report = accel.run_trace(base_model.trace(x))
    bsa_report = accel.run_trace(bsa_model.trace(x))
    print(f"\nBishop latency     {base_report.total_latency_s * 1e6:8.2f}"
          f" {bsa_report.total_latency_s * 1e6:8.2f}  (µs)")
    print(f"Bishop energy      {base_report.total_energy_pj / 1e6:8.3f}"
          f" {bsa_report.total_energy_pj / 1e6:8.3f}  (µJ)")


if __name__ == "__main__":
    main()
