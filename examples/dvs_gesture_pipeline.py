"""Event-stream (DVS-Gesture-style) pipeline — the paper's Model-4 modality.

Trains a tiny spiking transformer directly on synthetic dynamic-vision-sensor
event streams (no frames, no direct encoding — the time axis is native),
then traces real inference workloads and compares Bishop against PTB with the
paper's DVS operating point (θ_p = 10).

Run:  python examples/dvs_gesture_pipeline.py [--epochs N]
"""

import argparse

import numpy as np

from repro.algo import ECPConfig
from repro.arch import BishopAccelerator, BishopConfig, pipeline_schedule
from repro.baselines import PTBAccelerator
from repro.bundles import BundleSpec
from repro.model import SpikingTransformer, tiny_config
from repro.train import TrainConfig, Trainer, encode_batch, make_event_dataset

SPEC = BundleSpec(2, 2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=20,
                        help="training epochs (smoke tests use 1)")
    args = parser.parse_args()
    timesteps = 8
    dataset = make_event_dataset(
        num_classes=4, samples_per_class=40, image_size=16,
        timesteps=timesteps, events_per_step=30, seed=5,
    )
    print(f"event clips: {dataset.x_train.shape}  "
          f"(mean event density {dataset.x_train.mean():.2%})")

    config = tiny_config(
        input_kind="event", num_classes=4, timesteps=timesteps, tokenizer_depth=2
    )
    model = SpikingTransformer(config, seed=2)
    trainer = Trainer(
        model, dataset,
        TrainConfig(epochs=args.epochs, batch_size=24, lr=5e-3, seed=0),
    )
    trainer.fit(log=True)
    accuracy = trainer.evaluate(dataset.x_test, dataset.y_test)
    print(f"\ntest accuracy: {accuracy:.3f}")

    # Trace a real inference and accelerate it.
    clips = encode_batch(dataset.x_test[:2], "event", timesteps)
    trace = model.trace(clips)
    bishop = BishopAccelerator(BishopConfig(bundle_spec=SPEC))
    report = bishop.run_trace(trace)
    report_ecp = bishop.run_trace(trace, ecp=ECPConfig(10, 10, SPEC))
    ptb = PTBAccelerator().run_trace(trace)

    print(f"\nlatency: bishop {report.total_latency_s * 1e6:.2f} µs"
          f"  +ECP {report_ecp.total_latency_s * 1e6:.2f} µs"
          f"  ptb {ptb.total_latency_s * 1e6:.2f} µs")
    print(f"speedup vs PTB: {ptb.total_latency_s / report_ecp.total_latency_s:.2f}x")

    schedule = pipeline_schedule(report_ecp)
    print(f"double-buffered pipeline: {schedule.serial_latency_s * 1e6:.2f} µs serial"
          f" -> {schedule.pipelined_latency_s * 1e6:.2f} µs"
          f" ({schedule.savings_fraction:.1%} hidden)")


if __name__ == "__main__":
    main()
