"""Quickstart: build a spiking transformer, trace it, run it on Bishop.

This walks the library's core loop in under a minute:

1. build a laptop-scale spiking transformer (same topology as Table 2),
2. run one batch of inference and capture the accelerator-facing workload,
3. simulate the workload on Bishop, on the PTB baseline, and on an edge GPU,
4. print the per-phase latency/energy comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch import BishopAccelerator, BishopConfig
from repro.baselines import EdgeGPU, PTBAccelerator
from repro.bundles import BundleSpec
from repro.model import SpikingTransformer, tiny_config
from repro.snn import direct_encode


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A tiny spiking transformer: 2 encoder blocks, T=4, N=16, D=32.
    config = tiny_config(num_classes=4)
    model = SpikingTransformer(config, seed=0)
    print(f"model: {config.name}  blocks={config.num_blocks}  T={config.timesteps}"
          f"  N={config.num_tokens}  D={config.embed_dim}")

    # 2. One inference over random images; trace records every layer's
    #    binary spike workload for the accelerator.
    images = rng.random((2, 3, config.image_size, config.image_size))
    encoded = direct_encode(images, config.timesteps)
    logits = model(encoded)
    print(f"logits: {np.round(logits.data[0], 3)}")

    trace = model.trace(encoded)
    print(f"traced {len(trace.records)} layers, "
          f"avg spike density {trace.average_spike_density():.1%}, "
          f"{trace.total_macs() / 1e6:.1f} M dense-equivalent MACs")

    # 3. Simulate the three systems.
    spec = BundleSpec(2, 2)
    bishop = BishopAccelerator(BishopConfig(bundle_spec=spec)).run_trace(trace)
    ptb = PTBAccelerator().run_trace(trace)
    gpu = EdgeGPU().run_trace(trace)

    # 4. Report.
    print("\n          latency (µs)   energy (µJ)")
    for name, report in (("bishop", bishop), ("ptb", ptb), ("gpu", gpu)):
        print(f"{name:>8}  {report.total_latency_s * 1e6:12.2f}"
              f"  {report.total_energy_pj / 1e6:12.3f}")
    print(f"\nBishop vs PTB: {ptb.total_latency_s / bishop.total_latency_s:.2f}x faster,"
          f" {ptb.total_energy_pj / bishop.total_energy_pj:.2f}x less energy")
    print(f"Bishop vs GPU: {gpu.total_latency_s / bishop.total_latency_s:.0f}x faster")

    print("\nper-phase latency share on Bishop:")
    for phase in ("P1", "ATN", "P2", "MLP"):
        share = bishop.phase_latency(phase) / bishop.total_latency_s
        print(f"  {phase:<4} {share:6.1%}")


if __name__ == "__main__":
    main()
