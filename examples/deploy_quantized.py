"""Deployment flow: train → 8-bit quantize → checkpoint → pipelined inference.

Bishop's datapath stores 8-bit weights (Sec. 2.3/6.1), so deployment means
quantizing the trained float weights to the accelerator's format, saving the
artifact, and scheduling inference with double-buffered layer pipelining.

Run:  python examples/deploy_quantized.py [--epochs N]
"""

import argparse
import tempfile
from pathlib import Path

from repro.arch import BishopAccelerator, BishopConfig, pipeline_schedule
from repro.bundles import BundleSpec
from repro.model import SpikingTransformer, load_model, save_model, tiny_config
from repro.snn import quantize_model
from repro.train import TrainConfig, Trainer, encode_batch, make_image_dataset

SPEC = BundleSpec(2, 2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=10,
                        help="training epochs (smoke tests use 1)")
    args = parser.parse_args()
    dataset = make_image_dataset(num_classes=4, samples_per_class=30, image_size=16, seed=3)
    model = SpikingTransformer(tiny_config(num_classes=4), seed=1)
    trainer = Trainer(
        model, dataset, TrainConfig(epochs=args.epochs, batch_size=24, lr=3e-3, seed=0)
    )
    trainer.fit()
    float_accuracy = trainer.evaluate(dataset.x_test, dataset.y_test)

    report = quantize_model(model, bits=8)
    int8_accuracy = trainer.evaluate(dataset.x_test, dataset.y_test)
    print(f"accuracy: float {float_accuracy:.3f} -> int8 {int8_accuracy:.3f}")
    print(f"quantized {report.num_quantized}/{report.num_parameters} tensors, "
          f"mean |err| {report.mean_abs_error:.2e}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bishop_int8.npz"
        save_model(model, path)
        print(f"checkpoint: {path.name} ({path.stat().st_size / 1024:.1f} KiB)")
        deployed = load_model(path)

    x = encode_batch(dataset.x_test[:2], "image", deployed.config.timesteps)
    trace = deployed.trace(x)
    run = BishopAccelerator(BishopConfig(bundle_spec=SPEC)).run_trace(trace)
    schedule = pipeline_schedule(run)
    print(f"\nBishop inference: {run.total_latency_s * 1e6:.2f} µs serial, "
          f"{schedule.pipelined_latency_s * 1e6:.2f} µs double-buffered "
          f"({schedule.savings_fraction:.1%} of DRAM time hidden), "
          f"{run.total_energy_pj / 1e6:.3f} µJ")


if __name__ == "__main__":
    main()
