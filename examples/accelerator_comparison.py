"""Full evaluation grid — paper Figs. 12-13 and the Sec.-6.2 headline.

Runs all five Table-2 workloads through the five systems (edge GPU, PTB,
Bishop, Bishop+BSA, Bishop+BSA+ECP) and prints latency/energy tables plus
the headline averages.

Run:  python examples/accelerator_comparison.py    (takes ~1-2 minutes)
"""

from repro.harness.endtoend import headline_summary, run_grid

SYSTEMS = ("gpu", "ptb", "bishop", "bishop_bsa", "bishop_bsa_ecp")


def main() -> None:
    grid = run_grid()

    print("latency (ms):")
    header = "            " + "".join(f"{s:>16}" for s in SYSTEMS)
    print(header)
    for model, comparison in grid.items():
        row = "".join(
            f"{comparison.results[s].latency_s * 1e3:16.3f}" for s in SYSTEMS
        )
        print(f"{model:<12}{row}")

    print("\nenergy (mJ):")
    print(header)
    for model, comparison in grid.items():
        row = "".join(
            f"{comparison.results[s].energy_mj:16.4f}" for s in SYSTEMS
        )
        print(f"{model:<12}{row}")

    print("\nspeedup over PTB:")
    for model, comparison in grid.items():
        print(
            f"  {model}: bishop {comparison.speedup_vs('bishop'):5.2f}x"
            f"  +BSA {comparison.speedup_vs('bishop_bsa'):5.2f}x"
            f"  +BSA+ECP {comparison.speedup_vs('bishop_bsa_ecp'):5.2f}x"
            f"   (vs GPU {comparison.speedup_vs('bishop_bsa_ecp', baseline='gpu'):6.1f}x)"
        )

    summary = headline_summary(grid)
    print(
        f"\nheadline (paper: 5.91x speedup, 6.11x energy, ~299x vs GPU):"
        f"\n  mean speedup vs PTB: {summary['mean_speedup_vs_ptb']:.2f}x"
        f"\n  mean energy gain vs PTB: {summary['mean_energy_gain_vs_ptb']:.2f}x"
        f"\n  mean speedup vs GPU: {summary['mean_speedup_vs_gpu']:.0f}x"
    )


if __name__ == "__main__":
    main()
