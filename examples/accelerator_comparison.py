"""Full evaluation grid — paper Figs. 12-13 and the Sec.-6.2 headline.

Runs all five Table-2 workloads through the five systems (edge GPU, PTB,
Bishop, Bishop+BSA, Bishop+BSA+ECP) via the parallel cached runtime and
prints latency/energy tables plus the headline averages.  The first run
takes ~1-2 minutes; re-runs replay from the on-disk cache in seconds.

Run:  python examples/accelerator_comparison.py [--jobs N] [--force]
"""

import argparse

from repro.runtime import ExperimentRunner

SYSTEMS = ("gpu", "ptb", "bishop", "bishop_bsa", "bishop_bsa_ecp")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=3)
    parser.add_argument("--force", action="store_true")
    parser.add_argument("--artifacts", default="artifacts")
    parser.add_argument(
        "--models", default=None, metavar="m1,m2",
        help="restrict to a model subset (smoke tests use one model)",
    )
    args = parser.parse_args()

    overrides = {}
    if args.models:
        overrides["models"] = args.models
    runner = ExperimentRunner(
        artifacts_root=args.artifacts, jobs=args.jobs, force=args.force
    )
    summary = runner.run_many(
        [("fig12", overrides), ("fig13", overrides), ("sec6.2-summary", overrides)]
    )
    for outcome in summary.outcomes:
        if not outcome.ok:
            raise SystemExit(outcome.error)
    fig12, fig13, headline = (o.result for o in summary.outcomes)
    print(
        f"cache: {summary.hits} hits / {summary.misses} runs"
        f" in {summary.wall_time_s:.1f}s with {summary.jobs} job(s)\n"
    )

    header = "            " + "".join(f"{s:>16}" for s in SYSTEMS)
    print("latency (ms):")
    print(header)
    for model, entry in fig12.items():
        row = "".join(f"{entry['latency_ms'][s]:16.3f}" for s in SYSTEMS)
        print(f"{model:<12}{row}")

    print("\nenergy (mJ):")
    print(header)
    for model, entry in fig13.items():
        row = "".join(f"{entry['energy_mj'][s]:16.4f}" for s in SYSTEMS)
        print(f"{model:<12}{row}")

    print("\nspeedup over PTB:")
    for model, entry in fig12.items():
        speedup = entry["speedup_vs_ptb"]
        gpu_speedup = (
            entry["latency_ms"]["gpu"] / entry["latency_ms"]["bishop_bsa_ecp"]
        )
        print(
            f"  {model}: bishop {speedup['bishop']:5.2f}x"
            f"  +BSA {speedup['bishop_bsa']:5.2f}x"
            f"  +BSA+ECP {speedup['bishop_bsa_ecp']:5.2f}x"
            f"   (vs GPU {gpu_speedup:6.1f}x)"
        )

    print(
        f"\nheadline (paper: 5.91x speedup, 6.11x energy, ~299x vs GPU):"
        f"\n  mean speedup vs PTB: {headline['mean_speedup_vs_ptb']:.2f}x"
        f"\n  mean energy gain vs PTB: {headline['mean_energy_gain_vs_ptb']:.2f}x"
        f"\n  mean speedup vs GPU: {headline['mean_speedup_vs_gpu']:.0f}x"
    )


if __name__ == "__main__":
    main()
