"""Error-Constrained TT-Bundle Pruning (ECP) — paper Sec. 5.1, Figs. 7/8/14.

Demonstrates on the ImageNet-100-scale model (Table 2's Model 3):

1. the certified error bound — for binary Q/K every pruned attention score
   is strictly below θ_p (verified against the real score tensors);
2. the compounding effect — pruned Q rows × pruned K rows multiply into a
   much smaller attention-map computation;
3. the hardware payoff — attention-core speedup/energy across a θ_p sweep.

Run:  python examples/ecp_attention_pruning.py
"""

import numpy as np

from repro.algo import ECPConfig, ecp_prune_qk
from repro.arch import BishopConfig, simulate_attention_core
from repro.arch.attention_core import merge_attention_heads
from repro.bundles import BundleSpec
from repro.harness.synthetic import PROFILES, synthetic_trace
from repro.model import model_config


def main() -> None:
    spec = BundleSpec(2, 4)
    config = model_config("model3")
    profile = PROFILES["model3"].bsa_variant()
    trace = synthetic_trace(config, profile, spec, seed=0)
    record = trace.layers(kind="attention")[-1]

    q = merge_attention_heads(record.q)
    k = merge_attention_heads(record.k)
    print(f"model3 attention layer: T={q.shape[0]} N={q.shape[1]} D={q.shape[2]}")
    print(f"Q density {q.mean():.2%}, K density {k.mean():.2%}\n")

    print(" θ_p   Q kept   K kept   S compute   max |ΔS|  bound   speedup")
    arch = BishopConfig(bundle_spec=spec)
    base = simulate_attention_core(record.q, record.k, record.v, arch)
    base_cycles = base.cycles
    for theta in (0, 2, 4, 6, 8, 12):
        if theta == 0:
            q_pruned, k_pruned = q, k
            q_keep = k_keep = 1.0
            s_frac, max_err, bound = 1.0, 0.0, 0.0
            result = base
        else:
            ecp = ECPConfig(theta_q=theta, theta_k=theta, spec=spec)
            q_pruned, k_pruned, report = ecp_prune_qk(q, k, ecp)
            q_keep = report.q_token_keep_fraction
            k_keep = report.k_token_keep_fraction
            s_frac = report.score_compute_fraction
            before = np.einsum("tnd,tmd->tnm", q, k)
            after = np.einsum("tnd,tmd->tnm", q_pruned, k_pruned)
            max_err = float(np.abs(before - after).max())
            bound = report.error_bound
            assert max_err < bound, "certified bound violated!"
            result = simulate_attention_core(record.q, record.k, record.v, arch, ecp=ecp)
        speedup = base_cycles / max(result.cycles, 1e-9)
        print(
            f"{theta:4d}  {q_keep:7.1%}  {k_keep:7.1%}  {s_frac:10.2%}"
            f"  {max_err:8.1f}  {bound:5.0f}  {speedup:7.2f}x"
        )

    print(
        "\nEvery pruned score is certified < θ_p — the binary-spike property"
        "\nthat ANN attention lacks (Sec. 5.1)."
    )


if __name__ == "__main__":
    main()
