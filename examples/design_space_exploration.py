"""Design-space exploration — Sec. 6.5 generalized to a joint Pareto search.

The paper sweeps two architectural knobs by hand (θ_s in Fig. 15, the TTB
bundle volume in Fig. 16).  The ``repro.dse`` subsystem searches the
*joint* chip space — core geometries, sparse TTB units, bundle volume,
psum registers, GLB sizes, DRAM bandwidth, θ_s — with a multi-objective
strategy, every candidate compiled through the pass pipeline and measured
on the event engine.  Candidates evaluate as ``dse_point`` experiments
through the parallel content-addressed runtime (``repro.runtime``), so
re-runs replay from the cache and a bigger ``--budget`` only evaluates
the new points.

Run:  python examples/design_space_exploration.py [--model m] [--budget N]
          [--strategy random|grid|evolutionary] [--jobs N] [--seed N]
          [--export-fleet FILE]

Equivalent CLI:  python -m repro dse model3 --strategy random --budget 64
"""

import argparse

from repro.dse import (
    DSEConfig,
    export_fleet_kinds,
    format_frontier_report,
    parse_objectives,
    run_dse,
)
from repro.runtime import ExperimentRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="model3")
    parser.add_argument("--strategy", default="random",
                        choices=("grid", "random", "evolutionary"))
    parser.add_argument("--budget", type=int, default=48)
    parser.add_argument("--objectives", default="latency_ms+energy_mj+area_mm2")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--force", action="store_true")
    parser.add_argument("--artifacts", default="artifacts")
    parser.add_argument("--export-fleet", default=None, metavar="FILE")
    args = parser.parse_args()

    objectives = parse_objectives(args.objectives)
    runner = ExperimentRunner(
        artifacts_root=args.artifacts, jobs=args.jobs, force=args.force
    )
    report = run_dse(
        DSEConfig(
            model=args.model,
            strategy=args.strategy,
            budget=args.budget,
            objectives=objectives,
            seed=args.seed,
        ),
        runner=runner,
    )

    print(
        f"== DSE: {args.model}, {args.strategy} search, budget {args.budget},"
        f" objectives {'+'.join(objectives)} =="
    )
    print(
        f"evaluated {report['evaluated']} candidate chips"
        f" ({report['cache_hits']} served from the result cache)"
        f" out of a {report['space']['size']:,}-point space\n"
    )

    for line in format_frontier_report(report):
        print(line)
    for objective in objectives:
        best = report["best"][objective]
        print(f"best {objective}: {best['value']:.4f}")

    if args.export_fleet:
        kinds = export_fleet_kinds(report, args.export_fleet)
        print(
            f"\nexported {len(kinds)} frontier chip kind(s) to"
            f" {args.export_fleet}; simulate a fleet of the rank-0 design:\n"
            f"  python -m repro cluster --kinds-file {args.export_fleet}"
            f" --fleet {next(iter(kinds))}:2 --mix {args.model}"
        )


if __name__ == "__main__":
    main()
