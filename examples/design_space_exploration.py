"""Design-space exploration — paper Sec. 6.5 (Figs. 15-16).

Sweeps the two architectural hyperparameters the paper calls out on the
ImageNet-100 workload (Model 3):

* the stratification threshold θ_s, via targeted dense-fraction splits
  (latency is minimized near balance; EDP traces a U-shape);
* the TTB bundle volume (BS_t × BS_n) (near-optimal at volume 4-8; large
  volumes shift memory energy from weights to spike activations).

Run:  python examples/design_space_exploration.py
"""

from repro.harness.fig15 import stratification_sweep
from repro.harness.fig16 import bundle_volume_sweep


def main() -> None:
    print("== Fig. 15: stratification threshold sweep (Model 3) ==")
    sweep = stratification_sweep("model3")
    print(" dense-frac   latency(ms)   energy(mJ)        EDP")
    for point in sweep.points:
        print(
            f"  {point.dense_fraction_target:9.2f}  {point.latency_s * 1e3:11.3f}"
            f"  {point.energy_mj:11.4f}  {point.edp:10.3e}"
        )
    print(
        f"  balanced θ  {sweep.balanced.latency_s * 1e3:11.3f}"
        f"  {sweep.balanced.energy_mj:11.4f}  {sweep.balanced.edp:10.3e}"
    )
    print(f"EDP gain vs PTB at balance: {sweep.edp_gain_vs_ptb:.2f}x (paper ~2.49x)")
    print(f"worst imbalance penalty:    {sweep.worst_imbalance_penalty:.2f}x (paper up to 1.65x)")

    print("\n== Fig. 16: TTB bundle-volume sweep (Model 3) ==")
    points = bundle_volume_sweep("model3")
    print(" (BSt,BSn)  vol  latency(ms)  energy(mJ)  weight-mem%  act-mem%")
    for p in sorted(points, key=lambda p: p.volume):
        print(
            f"   ({p.bs_t},{p.bs_n:2d})  {p.volume:3d}  {p.total_latency_s * 1e3:10.3f}"
            f"  {p.total_energy_mj:10.4f}  {p.weight_memory_share:10.1%}"
            f"  {p.activation_memory_share:8.1%}"
        )
    best = min(points, key=lambda p: p.total_latency_s)
    print(f"\nbest volume: {best.bs_t}x{best.bs_n} = {best.volume} "
          "(paper: near-optimal at 4-8)")


if __name__ == "__main__":
    main()
