"""Design-space exploration — paper Sec. 6.5 (Figs. 15-16).

Sweeps the two architectural hyperparameters the paper calls out, through
the parallel cached runtime (``repro.runtime``) so each (experiment,
model) point is computed once and replayed from cache on re-runs:

* the stratification threshold θ_s, via targeted dense-fraction splits
  (latency is minimized near balance; EDP traces a U-shape);
* the TTB bundle volume (BS_t × BS_n) (near-optimal at volume 4-8; large
  volumes shift memory energy from weights to spike activations).

Run:  python examples/design_space_exploration.py [--models m1,m2] [--jobs N]

Equivalent CLI:  python -m repro sweep fig15 --param model=model3,model4
"""

import argparse

from repro.runtime import ExperimentRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", default="model3")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--force", action="store_true")
    parser.add_argument("--artifacts", default="artifacts")
    args = parser.parse_args()
    models = [m.strip() for m in args.models.split(",") if m.strip()]

    runner = ExperimentRunner(
        artifacts_root=args.artifacts, jobs=args.jobs, force=args.force
    )
    fig15 = runner.sweep("fig15", {"model": models})
    fig16 = runner.sweep("fig16", {"model": models})

    for outcome in fig15.outcomes:
        if not outcome.ok:
            raise SystemExit(outcome.error)
        sweep = outcome.result
        model = outcome.params["model"]
        print(f"== Fig. 15: stratification threshold sweep ({model}) ==")
        print(" dense-frac   latency(ms)   energy(mJ)        EDP")
        for point in sweep["points"]:
            print(
                f"  {point['dense_fraction_target']:9.2f}"
                f"  {point['latency_s'] * 1e3:11.3f}"
                f"  {point['energy_mj']:11.4f}  {point['edp']:10.3e}"
            )
        balanced = sweep["balanced"]
        print(
            f"  balanced θ  {balanced['latency_s'] * 1e3:11.3f}"
            f"  {balanced['energy_mj']:11.4f}  {balanced['edp']:10.3e}"
        )
        print(
            f"EDP gain vs PTB at balance: {sweep['edp_gain_vs_ptb']:.2f}x"
            " (paper ~2.49x)"
        )
        print(
            f"worst imbalance penalty:    {sweep['worst_imbalance_penalty']:.2f}x"
            " (paper up to 1.65x)\n"
        )

    for outcome in fig16.outcomes:
        if not outcome.ok:
            raise SystemExit(outcome.error)
        sweep = outcome.result
        model = outcome.params["model"]
        print(f"== Fig. 16: TTB bundle-volume sweep ({model}) ==")
        print(" (BSt,BSn)  vol  latency(ms)  energy(mJ)  weight-mem%  act-mem%")
        for p in sorted(sweep["points"], key=lambda p: p["bs_t"] * p["bs_n"]):
            print(
                f"   ({p['bs_t']},{p['bs_n']:2.0f})  {p['bs_t'] * p['bs_n']:3.0f}"
                f"  {p['total_latency_s'] * 1e3:10.3f}"
                f"  {p['total_energy_mj']:10.4f}"
                f"  {p['weight_memory_share']:10.1%}"
                f"  {p['activation_memory_share']:8.1%}"
            )
        best = sweep["best_volume"]
        print(
            f"\nbest volume: {best['bs_t']:.0f}x{best['bs_n']:.0f}"
            f" = {best['volume']:.0f} (paper: near-optimal at 4-8)\n"
        )

    print(
        f"runtime: fig15 {fig15.hits}+{fig15.misses} hit+run,"
        f" fig16 {fig16.hits}+{fig16.misses} hit+run"
        f" (artifacts under {args.artifacts}/)"
    )


if __name__ == "__main__":
    main()
