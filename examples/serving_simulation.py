"""Serving a request stream on one Bishop chip — the event engine at work.

Sweeps the offered load on a Poisson stream (latency/throughput curve),
contrasts it with a bursty stream at the same mean rate, and shows the
batching trade-off under backlog.  Everything runs on the discrete-event
engine (docs/ARCHITECTURE.md): the dense/sparse/attention cores, the
spike generator, and the DRAM channel are contended resources.

Run:  PYTHONPATH=src python examples/serving_simulation.py [--model ID]
"""

import argparse

from repro.serve import (
    SchedulerConfig,
    bursty_arrivals,
    poisson_arrivals,
    request_profile,
    simulate_serving,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="model4")
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    profile = request_profile(args.model)
    single_ms = profile.single_latency_s * 1e3
    capacity = 1.0 / profile.single_latency_s
    print(
        f"{args.model}: single-request latency {single_ms:.3f} ms"
        f" -> one chip serves ~{capacity:,.0f} req/s\n"
    )

    print("load sweep (Poisson arrivals, FIFO, 2 in flight):")
    print(f"{'rho':>5} {'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'thr rps':>9} {'dense util':>11}")
    for rho in (0.2, 0.5, 0.7, 0.9, 1.1):
        stream = poisson_arrivals(args.requests, rho * capacity, args.model, args.seed)
        report = simulate_serving(stream, SchedulerConfig(max_inflight=2))
        p = report.latency_percentiles_ms
        print(
            f"{rho:>5.1f} {p['p50']:>9.3f} {p['p95']:>9.3f} {p['p99']:>9.3f}"
            f" {report.throughput_rps:>9.0f} {report.utilization['dense_core']:>11.2f}"
        )

    rho = 0.7
    bursty = simulate_serving(
        bursty_arrivals(args.requests, rho * capacity, args.model, args.seed),
        SchedulerConfig(max_inflight=2),
    )
    print(
        f"\nbursty stream at rho={rho}: p95"
        f" {bursty.latency_percentiles_ms['p95']:.3f} ms"
        " (same mean rate, heavier tail than Poisson)"
    )

    print("\nbatching under backlog (rho=2.0):")
    print(f"{'batch':>6} {'thr rps':>9} {'p95 ms':>9} {'mJ/req':>8}")
    overload = poisson_arrivals(args.requests, 2.0 * capacity, args.model, args.seed)
    for max_batch in (1, 2, 4, 8):
        report = simulate_serving(
            overload, SchedulerConfig(max_batch=max_batch, max_inflight=2)
        )
        print(
            f"{max_batch:>6} {report.throughput_rps:>9.0f}"
            f" {report.latency_percentiles_ms['p95']:>9.2f}"
            f" {report.energy_per_request_mj:>8.4f}"
        )


if __name__ == "__main__":
    main()
