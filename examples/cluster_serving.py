"""Serving a request stream on a fleet of Bishop chips — the cluster layer.

Walks the three cluster stories on one Poisson workload:

1. **Scaling** — the same saturating stream on 1/2/4-chip homogeneous
   fleets (throughput scales, tails collapse);
2. **Routing** — a mixed-sparsity mix on a dense-heavy + sparse-heavy
   fleet under round-robin vs least-work vs sparsity-aware affinity;
3. **Elasticity** — admission control shedding under overload, then the
   reactive autoscaler growing the fleet instead.

Run:  PYTHONPATH=src python examples/cluster_serving.py [--requests N]
"""

import argparse

from repro.cluster import (
    AdmissionConfig,
    AutoscaleConfig,
    ClusterSimulation,
    fleet_capacity_rps,
    homogeneous_fleet,
    parse_fleet,
)
from repro.serve import (
    SchedulerConfig,
    parse_model_mix,
    poisson_arrivals,
    request_profile,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    scheduler = SchedulerConfig(max_inflight=2)

    # -- 1. scaling ---------------------------------------------------------
    model = "model4"
    capacity = 1.0 / request_profile(model).single_latency_s
    saturating = poisson_arrivals(args.requests, 5.0 * capacity, model, args.seed)
    print(f"scaling: {model} at 5x one chip's capacity ({capacity:,.0f} rps)")
    print(f"{'chips':>6} {'thr rps':>9} {'p50 ms':>8} {'p99 ms':>8}")
    base = None
    for size in (1, 2, 4):
        report = ClusterSimulation(
            homogeneous_fleet(size), scheduler, seed=args.seed
        ).run(saturating)
        base = base or report.throughput_rps
        p = report.latency_percentiles_ms
        print(
            f"{size:>6} {report.throughput_rps:>9,.0f} {p['p50']:>8.2f}"
            f" {p['p99']:>8.2f}   (x{report.throughput_rps / base:.2f})"
        )

    # -- 2. routing on a heterogeneous fleet --------------------------------
    mix = parse_model_mix("model2:0.5+model4:0.5")
    fleet = parse_fleet("dense_heavy:2+sparse_heavy:2")
    rate = 0.85 * fleet_capacity_rps(fleet, mix, seed=args.seed)
    stream = poisson_arrivals(args.requests, rate, mix, args.seed)
    print("\nrouting: model2+model4 on dense_heavy:2+sparse_heavy:2 (rho 0.85)")
    print(f"{'policy':>12} {'p50 ms':>8} {'p99 ms':>8} {'thr rps':>9}")
    for policy in ("round_robin", "least_work", "sparsity"):
        report = ClusterSimulation(
            fleet, scheduler, policy=policy, seed=args.seed
        ).run(stream)
        p = report.latency_percentiles_ms
        print(
            f"{policy:>12} {p['p50']:>8.3f} {p['p99']:>8.3f}"
            f" {report.throughput_rps:>9,.0f}"
        )

    # -- 3. elasticity: shed vs scale ---------------------------------------
    overload = poisson_arrivals(args.requests, 3.0 * capacity, model, args.seed)
    shed = ClusterSimulation(
        homogeneous_fleet(1),
        scheduler,
        admission=AdmissionConfig(queue_capacity=8),
        seed=args.seed,
    ).run(overload)
    autoscale = AutoscaleConfig(
        interval_s=20 * request_profile(model).single_latency_s, max_chips=4
    )
    scaled = ClusterSimulation(
        homogeneous_fleet(1), scheduler, autoscale=autoscale, seed=args.seed
    ).run(overload)
    print(f"\nelasticity at 3x overload ({args.requests} requests):")
    print(
        f"  bounded queue (8):  served {shed.served}, shed {shed.shed},"
        f" p99 {shed.latency_percentiles_ms['p99']:.2f} ms"
    )
    grown = len(scaled.chips)
    print(
        f"  autoscaler (max 4): served {scaled.served}, shed {scaled.shed},"
        f" p99 {scaled.latency_percentiles_ms['p99']:.2f} ms"
        f" on {grown} chips"
    )
    for event in scaled.scaling_events:
        print(
            f"    t={event.t_s * 1e3:7.2f} ms {event.action:<5} {event.chip}"
            f" (pressure {event.pressure:.2f})"
        )


if __name__ == "__main__":
    main()
