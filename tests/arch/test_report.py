"""Report container tests."""

import pytest

from repro.arch import EnergyBreakdown, InferenceReport, LayerReport, TrafficLedger


def layer(block=0, phase="P1", latency=1e-4, energy=100.0):
    breakdown = EnergyBreakdown(compute_pj=energy)
    return LayerReport(
        block=block, kind=phase.lower(), phase=phase,
        cycles=10.0, latency_s=latency, energy=breakdown,
        traffic=TrafficLedger(),
    )


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(compute_pj=1.0, memory_pj=2.0, spike_gen_pj=3.0, static_pj=4.0)
        assert e.total_pj == 10.0
        assert e.total_mj == pytest.approx(10e-9)

    def test_add_merges_kinds(self):
        a = EnergyBreakdown(compute_pj=1.0, memory_by_kind_pj={"weight": 5.0})
        b = EnergyBreakdown(compute_pj=2.0, memory_by_kind_pj={"weight": 1.0, "score": 2.0})
        a.add(b)
        assert a.compute_pj == 3.0
        assert a.memory_by_kind_pj == {"weight": 6.0, "score": 2.0}


class TestInferenceReport:
    def test_totals(self):
        report = InferenceReport("bishop", "m", layers=[layer(), layer(latency=2e-4)])
        assert report.total_latency_s == pytest.approx(3e-4)
        assert report.total_energy_pj == 200.0
        assert report.edp == pytest.approx(200.0 * 3e-4)

    def test_phase_slicing(self):
        report = InferenceReport(
            "bishop", "m",
            layers=[layer(phase="P1"), layer(phase="ATN", energy=50.0), layer(phase="ATN")],
        )
        assert report.phase_latency("ATN") == pytest.approx(2e-4)
        assert report.attention_energy_pj() == 150.0
        assert report.phase_energy_pj("P1") == 100.0

    def test_by_phase_aggregates_same_cell(self):
        report = InferenceReport(
            "bishop", "m",
            layers=[layer(block=1, phase="P1"), layer(block=1, phase="P1")],
        )
        cells = report.by_phase()
        assert len(cells) == 1
        assert cells[(1, "P1")].latency_s == pytest.approx(2e-4)
        assert cells[(1, "P1")].energy.total_pj == 200.0

    def test_layer_edp(self):
        l = layer()
        assert l.edp == pytest.approx(100.0 * 1e-4)
