"""Sparse core (SIGMA-like) model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import BishopConfig, EnergyModel, simulate_sparse_core
from repro.bundles import BundleSpec


def config(**kwargs):
    return BishopConfig(bundle_spec=BundleSpec(2, 4), **kwargs)


class TestCycles:
    def test_empty_cases(self):
        assert simulate_sparse_core(np.zeros((4, 8, 0)), 8, config()).cycles == 0
        assert simulate_sparse_core(np.zeros((4, 8, 4)), 0, config()).cycles == 0
        assert simulate_sparse_core(np.zeros((4, 8, 4)), 8, config()).cycles == 0

    def test_single_wave_formula(self):
        cfg = config()
        spikes = np.zeros((4, 8, 4))
        spikes[0, 0, 0] = 1.0            # one active pair -> one wave
        result = simulate_sparse_core(spikes, 16, cfg)
        assert result.cycles == pytest.approx(1 * 16 * 1 * cfg.sparse_overhead)

    def test_waves_scale_with_active_pairs(self, rng):
        cfg = config()
        spikes = np.zeros((8, 64, 129))
        # 129 features × 1 active bundle each = 129 pairs -> 2 waves of 128.
        spikes[0, 0, :] = 1.0
        result = simulate_sparse_core(spikes, 8, cfg)
        assert result.cycles == pytest.approx(2 * 8 * 1 * cfg.sparse_overhead)
        assert result.active_pairs == 129

    def test_time_proportional_to_active_waves(self):
        """Above the 128-unit granularity, time tracks active pairs 1:1."""
        cfg = config()
        few = np.zeros((8, 64, 128))      # grid: 4×16 = 64 bundle slots
        few[0, :8, :16] = 1.0             # 2 slots × 16 feats = 32 pairs → 1 wave
        many = np.ones((8, 64, 128))      # 64 × 128 = 8192 pairs → 64 waves
        a = simulate_sparse_core(few, 16, cfg)
        b = simulate_sparse_core(many, 16, cfg)
        assert b.cycles == pytest.approx(64 * a.cycles)


class TestEnergyAndTraffic:
    def test_ops_and_energy(self):
        cfg = config()
        model = EnergyModel()
        spikes = np.zeros((4, 8, 4))
        spikes[0, 0, 0] = 1.0
        result = simulate_sparse_core(spikes, 16, cfg)
        assert result.sparse_ops == cfg.bundle_spec.volume * 16
        assert result.compute_energy_pj(model) == pytest.approx(
            result.sparse_ops * model.e_sparse_op_pj
        )

    def test_weight_gather_per_pair(self):
        cfg = config()
        spikes = np.zeros((4, 8, 4))
        spikes[0, 0, 0] = 1.0
        spikes[2, 4, 1] = 1.0
        result = simulate_sparse_core(spikes, 16, cfg)
        assert result.traffic.bytes(kind="weight") == 2 * 16 * cfg.weight_bits / 8

    def test_silent_features_cost_nothing(self):
        cfg = config()
        spikes = np.zeros((4, 8, 100))
        result = simulate_sparse_core(spikes, 64, cfg)
        assert result.traffic.bytes() == 0.0
        assert result.cycles == 0.0

    def test_utilization_bounds(self, rng):
        spikes = (rng.random((8, 16, 32)) < 0.1).astype(np.float64)
        result = simulate_sparse_core(spikes, 32, config())
        assert 0.0 < result.utilization <= 1.0


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), density=st.floats(0.0, 0.5))
def test_property_cycles_monotone_in_activity(seed, density):
    """Adding spikes can only add active pairs, never remove cycles."""
    gen = np.random.default_rng(seed)
    base = (gen.random((6, 8, 16)) < density).astype(np.float64)
    more = np.maximum(base, (gen.random((6, 8, 16)) < 0.1).astype(np.float64))
    cfg = config()
    assert (
        simulate_sparse_core(more, 8, cfg).cycles
        >= simulate_sparse_core(base, 8, cfg).cycles
    )
