"""Engine-vs-analytical regression over the Table-2 model zoo.

For every zoo model, single-request engine latency and energy must agree
with the legacy closed-form InferenceReport within 1%.  The tolerance is
deliberately loose relative to the observed agreement (~1e-15): it
documents where event-level modelling may legitimately diverge — under
*contention* (multiple requests, see `repro.serve`) the engine queues on
shared cores, which the closed-form sums cannot express.  A single
uncontended request has no such queueing, so any drift beyond tolerance
means one of the two models changed semantics.
"""

import pytest

from repro.arch import BishopAccelerator, BishopConfig
from repro.bundles import BundleSpec
from repro.harness.synthetic import PROFILES, synthetic_trace
from repro.model import MODEL_ZOO, model_config

TOLERANCE = 0.01


@pytest.mark.parametrize("model", sorted(MODEL_ZOO))
def test_engine_matches_closed_form(model):
    spec = BundleSpec(2, 4)
    # Fixed split ratio instead of the balanced-θ search: the agreement
    # being tested is schedule-level, and this keeps the zoo sweep fast.
    config = BishopConfig(bundle_spec=spec, stratify_dense_fraction=0.5)
    trace = synthetic_trace(model_config(model), PROFILES[model], spec, seed=0)
    report = BishopAccelerator(config).run_trace(trace)

    run = report.engine_run
    assert run is not None
    assert run.makespan_s == pytest.approx(report.total_latency_s, rel=TOLERANCE)
    assert run.energy_pj == pytest.approx(report.total_energy_pj, rel=TOLERANCE)
    # the engine never beats the per-layer critical path
    assert run.makespan_s >= max(l.latency_s for l in report.layers) - 1e-15
