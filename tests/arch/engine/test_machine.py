"""Bishop machine on the engine: task-graph semantics and timing extraction."""

import numpy as np
import pytest

from repro.arch import (
    BishopAccelerator,
    BishopConfig,
    EnergyModel,
    layer_timings,
    simulate_inference,
)
from repro.arch.engine.machine import MAX_QUANTA, _quanta
from repro.bundles import BundleSpec
from repro.harness.synthetic import PROFILES, synthetic_trace
from repro.model import model_config


@pytest.fixture(scope="module")
def report():
    spec = BundleSpec(2, 4)
    trace = synthetic_trace(model_config("model4"), PROFILES["model4"], spec, seed=0)
    return BishopAccelerator(BishopConfig(bundle_spec=spec)).run_trace(trace)


class TestLayerTimings:
    def test_compute_matches_notes(self, report):
        config = BishopConfig(bundle_spec=BundleSpec(2, 4))
        for timing, layer in zip(layer_timings(report, config), report.layers):
            assert timing.compute_s == pytest.approx(layer.notes["compute_time_s"])
            assert timing.dram_s() == pytest.approx(layer.notes["dram_time_s"])

    def test_attention_layers_have_no_core_split(self, report):
        config = BishopConfig(bundle_spec=BundleSpec(2, 4))
        for timing in layer_timings(report, config):
            if timing.phase == "ATN":
                assert timing.dense_s == 0.0 and timing.sparse_s == 0.0
                assert timing.attention_s > 0.0
            else:
                assert timing.attention_s == 0.0

    def test_dynamic_energy_excludes_static(self, report):
        config = BishopConfig(bundle_spec=BundleSpec(2, 4))
        timings = layer_timings(report, config)
        dynamic = sum(t.dynamic_pj for t in timings)
        static = sum(l.energy.static_pj for l in report.layers)
        assert dynamic + static == pytest.approx(report.total_energy_pj)

    def test_tile_counts_recorded(self, report):
        config = BishopConfig(bundle_spec=BundleSpec(2, 4))
        timings = layer_timings(report, config)
        assert any(t.dense_tiles > 1 for t in timings)
        assert any(t.attention_tiles >= 1 for t in timings if t.phase == "ATN")

    def test_batch_scaling(self, report):
        config = BishopConfig(bundle_spec=BundleSpec(2, 4))
        timing = layer_timings(report, config)[0]
        assert timing.dram_s(4) == pytest.approx(
            timing.weight_dram_s + 4 * timing.activation_dram_s
        )
        # weights stream once per batch: energy grows sub-linearly
        assert timing.batch_dynamic_pj(4) < 4 * timing.batch_dynamic_pj(1)
        assert timing.batch_dynamic_pj(1) == pytest.approx(timing.dynamic_pj)


class TestQuanta:
    def test_capped_in_kernel_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "kernel")
        assert _quanta(1) == 1
        assert _quanta(3) == 3
        assert _quanta(10_000) == MAX_QUANTA

    def test_fast_mode_coalesces_to_one_event_run_per_task(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert _quanta(1) == 1
        assert _quanta(3) == 1
        assert _quanta(10_000) == 1


class TestSimulateInference:
    def test_matches_analytical_oracle(self, report):
        config = BishopConfig(bundle_spec=BundleSpec(2, 4))
        run = simulate_inference(report, config, EnergyModel())
        assert run.makespan_s == pytest.approx(report.total_latency_s, rel=1e-9)
        assert run.energy_pj == pytest.approx(report.total_energy_pj, rel=1e-9)

    def test_attached_by_run_trace(self, report):
        assert report.engine_run is not None
        assert report.event_latency_s == pytest.approx(report.total_latency_s)

    def test_timeline_covers_all_resources(self, report):
        resources = {entry.resource for entry in report.engine_run.timeline}
        assert {"dense_core", "sparse_core", "attention_core", "spike_gen", "dram"} <= resources

    def test_utilization_bounded(self, report):
        for name, value in report.engine_run.utilization().items():
            assert 0.0 <= value <= 1.0 + 1e-9, name

    def test_cores_never_overlap_themselves(self, report):
        by_resource = {}
        for entry in report.engine_run.timeline:
            by_resource.setdefault(entry.resource, []).append(entry)
        for entries in by_resource.values():
            entries.sort(key=lambda e: e.start_s)
            for first, second in zip(entries, entries[1:]):
                assert second.start_s >= first.end_s - 1e-12

    def test_simulate_events_flag_skips_engine(self):
        spec = BundleSpec(2, 4)
        trace = synthetic_trace(
            model_config("model4"), PROFILES["model4"], spec, seed=0
        )
        config = BishopConfig(bundle_spec=spec)
        report = BishopAccelerator(config).run_trace(trace, simulate_events=False)
        assert report.engine_run is None
        assert report.event_latency_s == report.total_latency_s


class TestContention:
    def test_two_requests_share_one_chip(self, report):
        """Two concurrent requests finish later than one, earlier than 2x serial."""
        from repro.arch.engine import BishopMachine, Engine, inference_process

        config = BishopConfig(bundle_spec=BundleSpec(2, 4))
        timings = layer_timings(report, config)
        single = report.total_latency_s

        engine = Engine()
        machine = BishopMachine(engine)
        engine.spawn(inference_process(engine, machine, timings, "r0"))
        engine.spawn(inference_process(engine, machine, timings, "r1"))
        makespan = engine.run()
        assert makespan > single * 1.05          # contention costs something
        assert makespan < 2 * single + 1e-12     # never worse than serial
