"""Discrete-event kernel semantics: clock, resources, joins, gates."""

import pytest

from repro.arch.engine import (
    Acquire,
    Engine,
    Hold,
    Join,
    Release,
    TimelineEntry,
    WaitFor,
    use,
)


class TestClockAndHold:
    def test_hold_advances_clock(self):
        engine = Engine()

        def proc():
            yield Hold(2.5)
            yield Hold(1.5)

        engine.spawn(proc())
        assert engine.run() == pytest.approx(4.0)

    def test_parallel_processes_overlap(self):
        engine = Engine()
        for _ in range(3):
            engine.spawn(iter([Hold(5.0)]))
        assert engine.run() == pytest.approx(5.0)

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            Hold(-1.0)

    @pytest.mark.parametrize(
        "duration", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_hold_rejected(self, duration):
        # NaN compares False to everything, so `duration < 0` alone would
        # accept it and corrupt the heap's time ordering.
        with pytest.raises(ValueError, match="non-finite"):
            Hold(duration)

    @pytest.mark.parametrize(
        "delay", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_schedule_rejected(self, delay):
        with pytest.raises(ValueError, match="non-finite"):
            Engine().schedule(delay, lambda: None)

    def test_run_until_stops_early(self):
        engine = Engine()
        engine.spawn(iter([Hold(10.0)]))
        assert engine.run(until=3.0) == pytest.approx(3.0)
        # the remaining event still fires on the next run
        assert engine.run() == pytest.approx(10.0)

    def test_run_until_advances_empty_heap(self):
        # The clock must land on `until` whether events remain or not —
        # incremental window-stepped draining relies on a consistent clock.
        engine = Engine()
        assert engine.run(until=4.0) == 4.0
        assert engine.now == 4.0

    def test_run_until_after_drain_advances(self):
        engine = Engine()
        engine.spawn(iter([Hold(1.0)]))
        assert engine.run(until=5.0) == 5.0

    def test_run_until_never_moves_clock_backwards(self):
        engine = Engine()
        engine.spawn(iter([Hold(3.0)]))
        engine.run()
        assert engine.run(until=1.0) == 3.0

    def test_empty_engine_runs_to_zero(self):
        assert Engine().run() == 0.0


class TestResources:
    def test_contention_serializes(self):
        engine = Engine()
        resource = engine.resource("core")
        finishes = []

        def proc(name):
            yield Acquire(resource)
            yield Hold(1.0)
            yield Release(resource)
            finishes.append((name, engine.now))

        engine.spawn(proc("a"))
        engine.spawn(proc("b"))
        assert engine.run() == pytest.approx(2.0)
        assert [name for name, _ in finishes] == ["a", "b"]  # FIFO grant order

    def test_capacity_allows_parallelism(self):
        engine = Engine()
        resource = engine.resource("pool", capacity=2)

        def proc():
            yield Acquire(resource)
            yield Hold(1.0)
            yield Release(resource)

        for _ in range(4):
            engine.spawn(proc())
        assert engine.run() == pytest.approx(2.0)

    def test_busy_and_wait_stats(self):
        engine = Engine()
        resource = engine.resource("core")

        def proc():
            yield Acquire(resource)
            yield Hold(2.0)
            yield Release(resource)

        engine.spawn(proc())
        engine.spawn(proc())
        engine.run()
        assert resource.stats.busy_s == pytest.approx(4.0)
        assert resource.stats.wait_s == pytest.approx(2.0)  # second waited
        assert resource.stats.acquisitions == 2
        assert resource.stats.utilization(engine.now) == pytest.approx(1.0)

    def test_release_of_idle_resource_raises(self):
        engine = Engine()
        resource = engine.resource("core")
        engine.spawn(iter([Release(resource)]))
        with pytest.raises(RuntimeError, match="idle resource"):
            engine.run()

    def test_duplicate_resource_name_rejected(self):
        engine = Engine()
        engine.resource("core")
        with pytest.raises(ValueError, match="duplicate"):
            engine.resource("core")


class TestJoinAndGate:
    def test_join_waits_for_child(self):
        engine = Engine()
        order = []

        def child():
            yield Hold(3.0)
            order.append("child")

        def parent():
            task = engine.spawn(child())
            yield Join(task)
            order.append("parent")

        engine.spawn(parent())
        assert engine.run() == pytest.approx(3.0)
        assert order == ["child", "parent"]

    def test_join_on_finished_process_returns_immediately(self):
        engine = Engine()
        done = []

        def child():
            yield Hold(1.0)

        def parent(task):
            yield Hold(5.0)
            yield Join(task)   # child finished long ago
            done.append(engine.now)

        task = engine.spawn(child())
        engine.spawn(parent(task))
        engine.run()
        assert done == [pytest.approx(5.0)]

    def test_gate_broadcast(self):
        engine = Engine()
        woken = []
        gate = engine.gate()

        def waiter(name):
            yield WaitFor(gate)
            woken.append((name, engine.now))

        def signaller():
            yield Hold(2.0)
            gate.signal()

        engine.spawn(waiter("a"))
        engine.spawn(waiter("b"))
        engine.spawn(signaller())
        engine.run()
        assert sorted(n for n, _ in woken) == ["a", "b"]
        assert all(t == pytest.approx(2.0) for _, t in woken)

    def test_unknown_command_raises(self):
        engine = Engine()
        engine.spawn(iter(["not a command"]))
        with pytest.raises(TypeError, match="expected a Command"):
            engine.run()


class TestUseHelper:
    def test_records_timeline(self):
        engine = Engine()
        resource = engine.resource("core")
        timeline = []
        engine.spawn(use(engine, resource, 4.0, timeline, "task", chunks=4))
        engine.run()
        assert len(timeline) == 4
        assert timeline[0].start_s == 0.0
        assert timeline[-1].end_s == pytest.approx(4.0)
        assert all(e.duration_s == pytest.approx(1.0) for e in timeline)
        assert {e.resource for e in timeline} == {"core"}

    def test_chunks_let_competitor_interleave(self):
        engine = Engine()
        resource = engine.resource("core")
        timeline = []
        engine.spawn(use(engine, resource, 4.0, timeline, "chunked", chunks=4))

        def latecomer():
            yield Hold(0.5)
            yield from use(engine, resource, 1.0, timeline, "late", chunks=1)

        engine.spawn(latecomer())
        engine.run()
        late = next(e for e in timeline if e.label == "late")
        # slots in after the first chunk, not after the whole 4s task
        assert late.start_s == pytest.approx(1.0)

    def test_captured_stats_survive_further_running(self):
        from repro.arch.engine import EngineRun

        engine = Engine()
        resource = engine.resource("core")
        engine.spawn(use(engine, resource, 2.0, label="first"))
        engine.run(until=2.0)
        snapshot = EngineRun.capture(engine)
        engine.spawn(use(engine, resource, 3.0, label="second"))
        engine.run()
        assert snapshot.busy_s("core") == pytest.approx(2.0)
        assert resource.stats.busy_s == pytest.approx(5.0)

    def test_mid_hold_snapshot_counts_elapsed_occupancy(self):
        from repro.arch.engine import EngineRun

        engine = Engine()
        resource = engine.resource("core")
        engine.spawn(use(engine, resource, 2.0, label="task"))
        engine.run(until=1.0)   # snapshot in the middle of the hold
        snapshot = EngineRun.capture(engine)
        assert snapshot.busy_s("core") == pytest.approx(1.0)
        assert snapshot.utilization()["core"] == pytest.approx(1.0)
        engine.run()
        assert resource.stats.busy_s == pytest.approx(2.0)

    def test_zero_duration_records_zero_width_entry(self):
        # Zero-cost work must stay visible in the timeline (the occupancy
        # report matches the compiled stage list) without ever touching
        # the resource.
        engine = Engine()
        resource = engine.resource("core")
        timeline = []
        engine.spawn(use(engine, resource, 0.0, timeline, "noop"))
        engine.run()
        assert timeline == [TimelineEntry("core", "noop", 0.0, 0.0)]
        assert timeline[0].duration_s == 0.0
        assert resource.stats.acquisitions == 0
        assert resource.stats.busy_s == 0.0

    def test_zero_duration_entry_lands_at_current_time(self):
        engine = Engine()
        resource = engine.resource("core")
        timeline = []

        def proc():
            yield Hold(2.0)
            yield from use(engine, resource, 0.0, timeline, "noop")

        engine.spawn(proc())
        engine.run()
        assert timeline == [TimelineEntry("core", "noop", 2.0, 2.0)]

    def test_zero_duration_without_timeline_is_silent(self):
        engine = Engine()
        resource = engine.resource("core")
        engine.spawn(use(engine, resource, 0.0))
        assert engine.run() == 0.0
        assert resource.stats.acquisitions == 0
