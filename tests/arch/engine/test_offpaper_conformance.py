"""Engine-vs-closed-form conformance on *off-paper* chip configurations.

``test_zoo_regression`` pins the agreement at the Table-2 zoo on the
paper's Sec.-6.1 chip; this suite extends the same 1% contract across a
seeded random sample of the DSE design space — the configurations the
explorer actually visits (odd core geometries, tiny GLBs, starved DRAM,
off-default bundle volumes).  A single uncontended request has no
queueing, so closed-form and event-level models must agree everywhere in
the space, not just at the paper point; drift beyond tolerance means one
of the two models changed semantics for some configuration class.
"""

import numpy as np
import pytest

from repro.arch import BishopAccelerator
from repro.dse import default_space
from repro.harness.synthetic import DensityProfile, synthetic_trace
from repro.model import SpikingTransformerConfig

TOLERANCE = 0.01
NUM_SAMPLES = 10
SAMPLE_SEED = 20260726

# A small-but-complete workload (two blocks: projections, attention, MLP,
# plus cross-layer scheduling) so the whole sample stays cheap.
MODEL = SpikingTransformerConfig(
    name="offpaper-conformance",
    num_blocks=2,
    timesteps=6,
    num_tokens=24,
    embed_dim=48,
    num_heads=4,
    input_kind="sequence",
)
PROFILE = DensityProfile(
    mean_density=0.18, zero_feature_fraction=0.08, within_bundle=0.45
)


def _sample_points():
    space = default_space()
    rng = np.random.default_rng(SAMPLE_SEED)
    return [space.sample(rng) for _ in range(NUM_SAMPLES)]


@pytest.mark.parametrize(
    "point", _sample_points(),
    ids=[f"sample{i}" for i in range(NUM_SAMPLES)],
)
def test_engine_matches_closed_form_off_paper(point):
    space = default_space()
    config = space.to_config(point)
    trace = synthetic_trace(MODEL, PROFILE, config.bundle_spec, seed=11)
    report = BishopAccelerator(config).run_trace(trace)

    run = report.engine_run
    assert run is not None
    assert run.makespan_s == pytest.approx(report.total_latency_s, rel=TOLERANCE)
    assert run.energy_pj == pytest.approx(report.total_energy_pj, rel=TOLERANCE)
    # The engine never beats the slowest single layer's critical path.
    assert run.makespan_s >= max(l.latency_s for l in report.layers) - 1e-15
